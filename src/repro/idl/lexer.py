"""Hand-written lexer for OMG IDL.

The lexer is a straightforward character scanner.  Preprocessor lines are
handled here rather than in a separate pass: ``#pragma`` and ``#include``
lines become dedicated tokens for the parser, while include-guard lines
(``#ifndef``/``#define``/``#endif``/``#if``/``#else``) are skipped, which
is how the OmniBroker front-end the paper built on treats them for
already-preprocessed input.
"""

from repro.idl.errors import IdlSyntaxError, SourceLocation
from repro.idl.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "v": "\v",
    "b": "\b",
    "r": "\r",
    "f": "\f",
    "a": "\a",
    "\\": "\\",
    "?": "?",
    "'": "'",
    '"': '"',
    "0": "\0",
}

_SKIPPED_DIRECTIVES = frozenset(
    {"ifndef", "ifdef", "define", "endif", "if", "else", "elif", "undef", "line"}
)


class Lexer:
    """Tokenizes one IDL source string."""

    def __init__(self, source, filename="<string>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1
        self._at_line_start = True

    # -- low-level cursor helpers -------------------------------------

    def _location(self):
        return SourceLocation(self._filename, self._line, self._column)

    def _peek(self, offset=0):
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            ch = self._source[self._pos]
            self._pos += 1
            if ch == "\n":
                self._line += 1
                self._column = 1
                self._at_line_start = True
            else:
                self._column += 1
                if not ch.isspace():
                    self._at_line_start = False

    def _error(self, message, location=None):
        raise IdlSyntaxError(message, location or self._location())

    # -- skipping -------------------------------------------------------

    def _skip_whitespace_and_comments(self):
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n\v\f":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        self._error("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- literals ---------------------------------------------------------

    def _lex_number(self):
        start = self._location()
        begin = self._pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            if not self._peek().isalnum():
                self._error("malformed hexadecimal literal", start)
            while self._peek().isalnum():
                self._advance()
            text = self._source[begin : self._pos]
            try:
                return Token(TokenKind.INTEGER, text, int(text, 16), start)
            except ValueError:
                self._error(f"malformed hexadecimal literal {text!r}", start)

        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == "." and not self._peek(1).isalpha():
            # Trailing dot as in "1." is a valid float literal.
            is_float = True
            self._advance()
        if self._peek() and self._peek() in "eE" and (
            self._peek(1).isdigit() or (self._peek(1) and self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()

        text = self._source[begin : self._pos]
        if self._peek() and self._peek() in "dD":
            # Fixed-point literal such as "1.5d".
            self._advance()
            return Token(TokenKind.FIXED, text + "d", text, start)
        if is_float:
            return Token(TokenKind.FLOAT, text, float(text), start)
        # Leading 0 means octal in IDL (as in C).
        base = 8 if len(text) > 1 and text.startswith("0") else 10
        try:
            return Token(TokenKind.INTEGER, text, int(text, base), start)
        except ValueError:
            self._error(f"malformed integer literal {text!r}", start)

    def _lex_escape(self, start):
        self._advance()  # the backslash
        ch = self._peek()
        if ch == "":
            self._error("unterminated escape sequence", start)
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF" and len(digits) < 2:
                digits += self._peek()
                self._advance()
            if not digits:
                self._error("malformed \\x escape", start)
            return chr(int(digits, 16))
        if ch in "01234567":
            digits = ""
            while self._peek() and self._peek() in "01234567" and len(digits) < 3:
                digits += self._peek()
                self._advance()
            return chr(int(digits, 8))
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        self._error(f"unknown escape sequence \\{ch}", start)

    def _lex_char(self, wide=False):
        start = self._location()
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._lex_escape(start)
        elif self._peek() in ("", "\n"):
            self._error("unterminated character literal", start)
        else:
            value = self._peek()
            self._advance()
        if self._peek() != "'":
            self._error("unterminated character literal", start)
        self._advance()
        kind = TokenKind.WCHAR if wide else TokenKind.CHAR
        return Token(kind, value, value, start)

    def _lex_string(self, wide=False):
        start = self._location()
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if ch in ("", "\n"):
                self._error("unterminated string literal", start)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._lex_escape(start))
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        kind = TokenKind.WSTRING if wide else TokenKind.STRING
        return Token(kind, value, value, start)

    def _lex_identifier(self):
        start = self._location()
        begin = self._pos
        escaped = False
        if self._peek() == "_":
            # OMG IDL escaped identifier: `_name` denotes the identifier
            # `name` even when it collides with a keyword.
            escaped = True
            self._advance()
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[begin : self._pos]
        name = text[1:] if escaped else text
        if not name:
            self._error("lone underscore is not a valid identifier", start)
        if not escaped and name in KEYWORDS:
            return Token(TokenKind.KEYWORD, name, name, start)
        return Token(TokenKind.IDENTIFIER, name, name, start)

    # -- preprocessor ---------------------------------------------------

    def _lex_hash_line(self):
        """Handle a ``#...`` line; return a token or None if skipped."""
        start = self._location()
        self._advance()  # '#'
        while self._peek() in " \t":
            self._advance()
        begin = self._pos
        while self._peek().isalpha():
            self._advance()
        directive = self._source[begin : self._pos]
        rest_begin = self._pos
        while self._pos < len(self._source) and self._peek() != "\n":
            self._advance()
        rest = self._source[rest_begin : self._pos].strip()
        if directive == "pragma":
            return Token(TokenKind.PRAGMA, rest, rest, start)
        if directive == "include":
            if len(rest) < 2 or rest[0] not in "\"<":
                self._error(f"malformed #include {rest!r}", start)
            closer = '"' if rest[0] == '"' else ">"
            end = rest.find(closer, 1)
            if end < 0:
                self._error(f"malformed #include {rest!r}", start)
            return Token(TokenKind.INCLUDE_DIRECTIVE, rest, rest[1:end], start)
        if directive in _SKIPPED_DIRECTIVES:
            return None
        self._error(f"unsupported preprocessor directive #{directive}", start)

    # -- main loop --------------------------------------------------------

    def next_token(self):
        """Return the next token, or an EOF token at end of input."""
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._source):
                return Token(TokenKind.EOF, "", None, self._location())
            ch = self._peek()
            if ch == "#":
                if not self._at_line_start:
                    self._error("'#' is only valid at the start of a line")
                token = self._lex_hash_line()
                if token is not None:
                    return token
                continue
            break

        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch == "'":
            return self._lex_char()
        if ch == '"':
            return self._lex_string()
        if ch == "L" and self._peek(1) == "'":
            self._advance()
            return self._lex_char(wide=True)
        if ch == "L" and self._peek(1) == '"':
            self._advance()
            return self._lex_string(wide=True)
        if ch.isalpha() or ch == "_":
            return self._lex_identifier()

        location = self._location()
        for text, kind in MULTI_CHAR_OPERATORS:
            if self._source.startswith(text, self._pos):
                self._advance(len(text))
                return Token(kind, text, text, location)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(SINGLE_CHAR_OPERATORS[ch], ch, ch, location)
        self._error(f"unexpected character {ch!r}")

    def tokens(self):
        """Yield every token in the source, ending with EOF."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(source, filename="<string>"):
    """Tokenize *source* into a list of tokens ending with EOF."""
    return list(Lexer(source, filename=filename).tokens())

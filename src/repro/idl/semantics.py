"""Semantic analysis: name resolution, repository IDs, validity checks.

Analysis binds every :class:`~repro.idl.types.NamedType` and
:class:`~repro.idl.ast.NameRef` to its declaration, resolves interface
inheritance, evaluates constant expressions (including default parameter
values), and assigns CORBA repository IDs of the familiar
``IDL:Heidi/A:1.0`` form, honouring ``#pragma prefix``, ``#pragma
version`` and ``#pragma ID``.

Every check reports through a *reporter* with the minimal protocol
``error(code, message, location)``.  The default reporter raises
:class:`~repro.idl.errors.IdlSemanticError` on the first problem — the
historical fail-fast behaviour of :func:`analyze` — while
:class:`repro.lint.diagnostics.DiagnosticReporter` collects every
problem in one run for ``python -m repro.lint``.
"""

from repro.idl import ast
from repro.idl.errors import IdlSemanticError
from repro.idl.types import (
    INTEGER_RANGES,
    ArrayType,
    NamedType,
    PrimitiveType,
    SequenceType,
    StringType,
)


class _RaisingReporter:
    """The fail-fast default: the first error aborts analysis."""

    def error(self, code, message, location=None):
        raise IdlSemanticError(message, location)


class Scope:
    """A lexical scope mapping simple names to declarations."""

    def __init__(self, declaration, parent=None, reporter=None):
        self.declaration = declaration
        self.parent = parent
        self.names = {}
        self.reporter = reporter if reporter is not None else _RaisingReporter()
        #: Scopes of inherited interfaces (searched after local names).
        self.inherited = []

    def define(self, name, declaration, location=None):
        existing = self.names.get(name)
        if existing is not None:
            # Redefining a forward declaration with its full interface (or
            # repeating a forward declaration) is legal.
            if isinstance(existing, ast.Forward):
                self.names[name] = declaration
                return
            if isinstance(declaration, ast.Forward):
                return
            self.reporter.error(
                "IDL001",
                f"redefinition of {name!r} in scope "
                f"{self.declaration.scoped_name() or '<file>'}",
                location or declaration.location,
            )
            return
        self.names[name] = declaration

    def lookup_local(self, name):
        decl = self.names.get(name)
        if decl is not None:
            return decl
        for base_scope in self.inherited:
            decl = base_scope.lookup_local(name)
            if decl is not None:
                return decl
        return None

    def lookup(self, name):
        scope = self
        while scope is not None:
            decl = scope.lookup_local(name)
            if decl is not None:
                return decl
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Runs all semantic passes over a Specification in place."""

    def __init__(self, spec, reporter=None):
        self._spec = spec
        self._reporter = reporter if reporter is not None else _RaisingReporter()
        self._root_scope = Scope(spec, reporter=self._reporter)
        self._scopes = {id(spec): self._root_scope}
        self._pragma_versions = getattr(spec, "pragma_versions", {})
        self._pragma_ids = getattr(spec, "pragma_ids", {})

    def run(self):
        self._collect(self._spec, self._root_scope)
        self._resolve_inheritance()
        self._resolve_types(self._spec, self._root_scope)
        self._assign_repository_ids(self._spec, prefix=self._spec.prefix, path=())
        self._check_operations()
        return self._spec

    def _error(self, code, message, location=None):
        self._reporter.error(code, message, location)

    def _try_evaluate(self, expr, location=None):
        """Evaluate a constant expression, reporting failures.

        Returns ``(ok, value)``; in fail-fast mode a failure raises.
        """
        try:
            return True, evaluate_const(expr)
        except IdlSemanticError as exc:
            self._error("IDL006", exc.message, exc.location or location)
            return False, None

    # -- pass 1: build scopes -------------------------------------------------

    def _collect(self, node, scope):
        for child in self._children_of(node):
            child._decl_order = self._next_order = getattr(
                self, "_next_order", 0
            ) + 1
            if isinstance(child, ast.Include):
                if child.spec is not None:
                    # Included declarations join the including file's scope.
                    self._collect(child.spec, scope)
                continue
            if child.name:
                scope.define(child.name, child, child.location)
            if isinstance(child, ast.EnumDecl):
                # Enumerators live in the enclosing scope per the IDL spec.
                for enumerator in child.enumerators:
                    scope.define(enumerator, child, child.location)
            if isinstance(child, (ast.Module, ast.InterfaceDecl)):
                child_scope = Scope(child, parent=scope, reporter=self._reporter)
                self._scopes[id(child)] = child_scope
                self._collect(child, child_scope)

    @staticmethod
    def _children_of(node):
        if isinstance(node, (ast.Specification, ast.Module)):
            return node.declarations
        if isinstance(node, ast.InterfaceDecl):
            return node.body
        return ()

    # -- pass 2: inheritance ---------------------------------------------------

    def _resolve_inheritance(self):
        for node in ast.walk(self._spec):
            if not isinstance(node, ast.InterfaceDecl):
                continue
            scope = self._scopes[id(node)]
            node.resolved_bases = []
            for base_name in node.bases:
                base = self._lookup_scoped(base_name, scope.parent, node.location)
                if base is None:
                    continue
                if isinstance(base, ast.Forward):
                    if base.definition is None:
                        base.definition = self._find_definition(base)
                    base = base.definition or base
                if not isinstance(base, ast.InterfaceDecl):
                    self._error(
                        "IDL003",
                        f"{base_name!r} is not an interface and cannot be inherited",
                        node.location,
                    )
                    continue
                if base is node or node in base.all_bases():
                    self._error(
                        "IDL003",
                        f"inheritance cycle through {node.scoped_name()!r}",
                        node.location,
                    )
                    continue
                node.resolved_bases.append(base)
                base_scope = self._scopes.get(id(base))
                if base_scope is not None:
                    scope.inherited.append(base_scope)
            self._check_duplicate_inherited_members(node)

    def _find_definition(self, forward):
        target = forward.scoped_name()
        for node in ast.walk(self._spec):
            if isinstance(node, ast.InterfaceDecl) and node.scoped_name() == target:
                return node
        return None

    def _check_duplicate_inherited_members(self, interface):
        seen = {}
        for member in interface.all_operations() + interface.all_attributes():
            owner = member.parent
            previous = seen.get(member.name)
            if previous is not None and previous is not owner:
                self._error(
                    "IDL003",
                    f"interface {interface.scoped_name()!r} inherits member "
                    f"{member.name!r} from both {previous.scoped_name()!r} and "
                    f"{owner.scoped_name()!r}",
                    interface.location,
                )
            seen[member.name] = owner

    # -- pass 3: type and constant resolution ----------------------------------

    def _resolve_types(self, node, scope):
        for child in self._children_of(node):
            if isinstance(child, ast.Include):
                if child.spec is not None:
                    self._resolve_types(child.spec, scope)
                continue
            child_scope = self._scopes.get(id(child), scope)
            if isinstance(child, (ast.Module, ast.InterfaceDecl)):
                self._resolve_types(child, child_scope)
            if isinstance(child, ast.TypedefDecl):
                self._bind_type(child.aliased_type, scope, child.location)
            elif isinstance(child, ast.Attribute):
                self._bind_type(child.idl_type, child_scope, child.location)
            elif isinstance(child, ast.Operation):
                self._resolve_operation(child, child_scope)
            elif isinstance(child, (ast.StructDecl, ast.ExceptionDecl)):
                for member in child.members:
                    self._bind_type(member.idl_type, scope, member.location)
            elif isinstance(child, ast.UnionDecl):
                self._bind_type(child.discriminator, scope, child.location)
                for case in child.cases:
                    self._bind_type(case.idl_type, scope, case.location)
                    for label in case.labels:
                        if label is not None:
                            self._bind_expr(label, scope)
            elif isinstance(child, ast.ConstDecl):
                self._bind_type(child.idl_type, scope, child.location)
                self._bind_expr(child.value, scope,
                                after=getattr(child, "_decl_order", None))
                ok, child.evaluated = self._try_evaluate(
                    child.value, child.location
                )
                if ok:
                    self._check_const_range(child)

    def _resolve_operation(self, op, scope):
        self._bind_type(op.return_type, scope, op.location)
        for param in op.parameters:
            self._bind_type(param.idl_type, scope, param.location)
            if param.default is not None:
                self._bind_expr(param.default, scope)
        op.resolved_raises = []
        for raised in op.raises:
            decl = self._lookup_scoped(raised, scope, op.location)
            if decl is None:
                continue
            if not isinstance(decl, ast.ExceptionDecl):
                self._error(
                    "IDL004",
                    f"raises clause names {raised!r}, which is not an exception",
                    op.location,
                )
                continue
            op.resolved_raises.append(decl)

    def _bind_type(self, idl_type, scope, location):
        if isinstance(idl_type, NamedType):
            # A NamedType carries its own source location; the enclosing
            # declaration's location is only the fallback, so diagnostics
            # anchor to the exact type reference.
            where = getattr(idl_type, "location", None) or location
            decl = self._lookup_scoped(idl_type.scoped_name, scope, where)
            if isinstance(decl, ast.Forward) and decl.definition is None:
                decl.definition = self._find_definition(decl)
            idl_type.declaration = decl
        elif isinstance(idl_type, SequenceType):
            self._bind_type(idl_type.element, scope, location)
            self._resolve_bound(idl_type, scope, location)
        elif isinstance(idl_type, StringType):
            self._resolve_bound(idl_type, scope, location)
        elif isinstance(idl_type, ArrayType):
            self._bind_type(idl_type.element, scope, location)

    def _resolve_bound(self, idl_type, scope, location):
        """Evaluate a named-constant bound deferred by the parser."""
        expr = getattr(idl_type, "bound_expr", None)
        if expr is None:
            return
        self._bind_expr(expr, scope)
        ok, value = self._try_evaluate(expr, location)
        if not ok:
            return
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            self._error(
                "IDL006",
                f"bound must be a non-negative integer constant, got {value!r}",
                location,
            )
            return
        object.__setattr__(idl_type, "bound", value)

    def _bind_expr(self, expr, scope, after=None):
        if isinstance(expr, ast.NameRef):
            expr.declaration = self._lookup_scoped(expr.scoped_name, scope, expr.location)
            if (after is not None
                    and isinstance(expr.declaration, ast.ConstDecl)
                    and getattr(expr.declaration, "_decl_order", 0) >= after):
                self._error(
                    "IDL006",
                    f"constant {expr.scoped_name!r} referenced before its "
                    "declaration",
                    expr.location,
                )
        elif isinstance(expr, ast.UnaryExpr):
            self._bind_expr(expr.operand, scope)
        elif isinstance(expr, ast.BinaryExpr):
            self._bind_expr(expr.left, scope)
            self._bind_expr(expr.right, scope)

    def _check_const_range(self, const):
        idl_type = const.idl_type
        if isinstance(idl_type, PrimitiveType) and idl_type.kind in INTEGER_RANGES:
            low, high = INTEGER_RANGES[idl_type.kind]
            if not isinstance(const.evaluated, int) or isinstance(const.evaluated, bool):
                self._error(
                    "IDL006",
                    f"constant {const.name!r} must be an integer", const.location
                )
                return
            if not low <= const.evaluated <= high:
                self._error(
                    "IDL006",
                    f"constant {const.name!r} value {const.evaluated} out of range "
                    f"for {idl_type.idl_name()}",
                    const.location,
                )

    # -- scoped-name lookup -------------------------------------------------------

    def _lookup_scoped(self, scoped_name, scope, location):
        """Resolve a scoped name, or report IDL002 and return None."""
        parts = scoped_name.split("::")
        if parts and parts[0] == "":
            # Leading :: — absolute lookup from file scope.
            scope = self._root_scope
            parts = parts[1:]
        decl = None
        if scope is not None:
            decl = scope.lookup(parts[0])
        if decl is None:
            self._error("IDL002", f"undefined name {parts[0]!r}", location)
            return None
        for part in parts[1:]:
            # Enum scoped like Heidi::Start resolves through the module; an
            # EnumDecl also answers for its enumerators.
            if isinstance(decl, ast.EnumDecl) and part in decl.enumerators:
                return decl
            inner_scope = self._scopes.get(id(decl))
            if inner_scope is None:
                self._error(
                    "IDL002",
                    f"{decl.name!r} does not name a scope (while resolving "
                    f"{scoped_name!r})",
                    location,
                )
                return None
            decl = inner_scope.lookup_local(part)
            if decl is None:
                self._error(
                    "IDL002",
                    f"{part!r} not found while resolving {scoped_name!r}", location
                )
                return None
        return decl

    # -- repository IDs --------------------------------------------------------------

    def _assign_repository_ids(self, node, prefix, path):
        node_prefix = getattr(node, "prefix", "") or prefix
        for child in self._children_of(node):
            if isinstance(child, ast.Include):
                if child.spec is not None:
                    self._assign_repository_ids(child.spec, node_prefix, path)
                continue
            if not child.name:
                continue
            child_path = path + (child.name,)
            child.repository_id = self._repository_id_for(child, node_prefix, child_path)
            if isinstance(child, (ast.Module, ast.InterfaceDecl)):
                self._assign_repository_ids(child, node_prefix, child_path)
            if isinstance(child, ast.Operation):
                for param in child.parameters:
                    param.repository_id = ""
            if isinstance(child, ast.InterfaceDecl):
                for member in child.body:
                    if member.name:
                        member_path = child_path + (member.name,)
                        member.repository_id = self._repository_id_for(
                            member, node_prefix, member_path
                        )

    def _repository_id_for(self, decl, prefix, path):
        scoped = "::".join(path)
        explicit = self._pragma_ids.get(scoped) or self._pragma_ids.get(decl.name)
        if explicit:
            return explicit
        version = (
            self._pragma_versions.get(scoped)
            or self._pragma_versions.get(decl.name)
            or "1.0"
        )
        body = "/".join(path)
        if prefix:
            body = f"{prefix}/{body}"
        return f"IDL:{body}:{version}"

    # -- pass 4: operation-level checks -----------------------------------------------

    def _check_operations(self):
        for node in ast.walk(self._spec):
            if isinstance(node, ast.Operation):
                self._check_operation(node)

    def _check_operation(self, op):
        if op.is_oneway:
            if op.return_type.idl_name() != "void":
                self._error(
                    "IDL005",
                    f"oneway operation {op.name!r} must return void", op.location
                )
            for param in op.parameters:
                if param.direction not in ("in", "incopy"):
                    self._error(
                        "IDL005",
                        f"oneway operation {op.name!r} may not have "
                        f"{param.direction!r} parameters",
                        param.location or op.location,
                    )
        # Default parameters must be trailing, exactly as in C++.
        seen_default = False
        for param in op.parameters:
            if param.default is not None:
                seen_default = True
                ok, value = self._try_evaluate(param.default, param.location)
                param.default_evaluated = value if ok else None
            elif seen_default:
                self._error(
                    "IDL007",
                    f"parameter {param.name!r} of {op.name!r} follows a defaulted "
                    "parameter but has no default",
                    param.location,
                )
        names = [p.name for p in op.parameters]
        if len(names) != len(set(names)):
            self._error(
                "IDL007",
                f"duplicate parameter names in operation {op.name!r}", op.location
            )


def evaluate_const(expr):
    """Evaluate a bound constant expression to a Python value."""
    if isinstance(expr, ast.Literal):
        if expr.kind == "fixed":
            return float(expr.value)
        return expr.value
    if isinstance(expr, ast.NameRef):
        decl = expr.declaration
        if isinstance(decl, ast.ConstDecl):
            if decl.evaluated is None:
                decl.evaluated = evaluate_const(decl.value)
            return decl.evaluated
        if isinstance(decl, ast.EnumDecl):
            simple = expr.scoped_name.split("::")[-1]
            if simple in decl.enumerators:
                return simple  # enumerators evaluate to their own name
        if decl is None:
            # Unbound reference (e.g. evaluated before analysis): treat the
            # trailing identifier as an enumerator-style symbol.
            return expr.scoped_name.split("::")[-1]
        raise IdlSemanticError(
            f"{expr.scoped_name!r} is not usable in a constant expression",
            expr.location,
        )
    if isinstance(expr, ast.UnaryExpr):
        value = evaluate_const(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return +value
        if expr.op == "~":
            return ~value
        raise IdlSemanticError(f"unknown unary operator {expr.op!r}", expr.location)
    if isinstance(expr, ast.BinaryExpr):
        left = evaluate_const(expr.left)
        right = evaluate_const(expr.right)
        try:
            return _BINARY_OPS[expr.op](left, right)
        except KeyError:
            raise IdlSemanticError(
                f"unknown binary operator {expr.op!r}", expr.location
            ) from None
        except ZeroDivisionError:
            raise IdlSemanticError("division by zero in constant expression",
                                   expr.location) from None
    raise IdlSemanticError(f"cannot evaluate {expr!r}", getattr(expr, "location", None))


def _int_div(left, right):
    if isinstance(left, int) and isinstance(right, int):
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


_BINARY_OPS = {
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "&": lambda a, b: a & b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _int_div,
    "%": lambda a, b: a % b,
}


def analyze(spec, reporter=None):
    """Run semantic analysis over *spec* in place and return it.

    Without a *reporter* the first problem raises
    :class:`~repro.idl.errors.IdlSemanticError` (fail-fast); with one —
    e.g. :class:`repro.lint.diagnostics.DiagnosticReporter` — every
    problem is collected and analysis continues as far as it can.
    """
    return SemanticAnalyzer(spec, reporter=reporter).run()

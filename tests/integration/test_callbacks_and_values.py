"""Object passing end-to-end: references, callbacks and incopy values.

Exercises the paper's §3.1 semantics: a reference parameter makes the
receiver talk back to the *original* object (a skeleton is created for
it only then); an ``incopy`` serializable travels as a true copy and
"no skeleton is ever created" for it.
"""

import time

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

IDL = """\
module Cb {
  interface Listener {
    void notify(in string event);
  };
  interface Emitter {
    void subscribe(in Listener who);
    void emit(in string event);
    void absorb(incopy Listener who);
  };
};
"""


@pytest.fixture(scope="module")
def ns():
    return generate_module(parse(IDL, filename="Cb.idl"))


class EmitterImpl:
    _hd_type_id_ = "IDL:Cb/Emitter:1.0"

    def __init__(self):
        self.listeners = []
        self.absorbed = []

    def subscribe(self, who):
        self.listeners.append(who)

    def emit(self, event):
        for listener in self.listeners:
            listener.notify(event)

    def absorb(self, who):
        self.absorbed.append(who)


class ListenerImpl:
    _hd_type_id_ = "IDL:Cb/Listener:1.0"

    def __init__(self):
        self.events = []

    def notify(self, event):
        self.events.append(event)


class CopyableListener(ListenerImpl):
    """A listener that can travel by value."""

    def _hd_type_id(self):
        return "IDL:Cb/CopyableListener:1.0"

    def _hd_marshal(self, call, orb):
        call.put_ulong(len(self.events))
        for event in self.events:
            call.put_string(event)

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        copy = cls()
        for _ in range(call.get_ulong()):
            copy.events.append(call.get_string())
        return copy


GLOBAL_TYPES.register_value("IDL:Cb/CopyableListener:1.0", CopyableListener)


@pytest.fixture
def pair(ns):
    server = Orb(transport="tcp", protocol="text").start()
    client = Orb(transport="tcp", protocol="text").start()  # serves callbacks
    yield server, client
    client.stop()
    server.stop()


def wait_for(predicate, timeout=5):
    deadline = time.time() + timeout
    while not predicate() and time.time() < deadline:
        time.sleep(0.01)
    assert predicate()


class TestPassByReference:
    def test_callback_reaches_original_object(self, ns, pair):
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        listener_impl = ListenerImpl()
        emitter.subscribe(listener_impl)
        emitter.emit("started")
        wait_for(lambda: listener_impl.events == ["started"])

    def test_reference_parameter_creates_skeleton_lazily(self, ns, pair):
        """'The skeleton for a particular object is only created when a
        reference to it is being passed'."""
        server, client = pair
        emitter = client.resolve(server.register(EmitterImpl()).stringify())
        listener_impl = ListenerImpl()
        created_before = client.stats["skeleton_created"]
        emitter.subscribe(listener_impl)   # reference crosses the wire
        emitter.emit("ping")               # server dials back
        wait_for(lambda: listener_impl.events == ["ping"])
        assert client.stats["skeleton_created"] == created_before + 1

    def test_server_receives_typed_stub(self, ns, pair):
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        emitter.subscribe(ListenerImpl())
        wait_for(lambda: emitter_impl.listeners)
        stub = emitter_impl.listeners[0]
        assert type(stub).__name__ == "Cb_Listener_stub"
        assert stub._hd_ref.type_id == "IDL:Cb/Listener:1.0"

    def test_round_tripped_reference_is_same_object(self, ns, pair):
        """Passing the same impl twice yields equal references."""
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        listener_impl = ListenerImpl()
        emitter.subscribe(listener_impl)
        emitter.subscribe(listener_impl)
        wait_for(lambda: len(emitter_impl.listeners) == 2)
        assert emitter_impl.listeners[0] == emitter_impl.listeners[1]


class TestPassByValue:
    def test_incopy_delivers_a_copy(self, ns, pair):
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        original = CopyableListener()
        original.events.append("history")
        emitter.absorb(original)
        wait_for(lambda: emitter_impl.absorbed)
        copy = emitter_impl.absorbed[0]
        assert isinstance(copy, CopyableListener)
        assert copy.events == ["history"]
        assert copy is not original

    def test_no_skeleton_created_for_by_value_object(self, ns, pair):
        """'if the implementation object is Serializable and is being
        passed-by-value, then no skeleton is ever created'."""
        server, client = pair
        emitter = client.resolve(server.register(EmitterImpl()).stringify())
        created_before = client.stats["skeleton_created"]
        emitter.absorb(CopyableListener())
        assert client.stats["skeleton_created"] == created_before

    def test_copy_mutation_does_not_affect_original(self, ns, pair):
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        original = CopyableListener()
        emitter.absorb(original)
        wait_for(lambda: emitter_impl.absorbed)
        emitter_impl.absorbed[0].events.append("server-side")
        assert original.events == []

    def test_plain_listener_incopy_degrades_to_reference(self, ns, pair):
        """A non-serializable incopy parameter still arrives — by
        reference (the 'if possible' clause)."""
        server, client = pair
        emitter_impl = EmitterImpl()
        emitter = client.resolve(server.register(emitter_impl).stringify())
        emitter.absorb(ListenerImpl())  # not serializable
        wait_for(lambda: emitter_impl.absorbed)
        stub = emitter_impl.absorbed[0]
        assert type(stub).__name__ == "Cb_Listener_stub"

"""Stress: many objects, many clients, mixed protocols, sustained load.

Not a benchmark — a correctness check that nothing corrupts, leaks
replies across connections, or wedges under concurrency.
"""

import threading

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.serialize import TypeRegistry

TYPE_ID = "IDL:Stress/Cell:1.0"


class Cell_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def put(self, value):
        call = self._new_call("put")
        call.put_long(value)
        self._invoke(call)

    def get(self):
        return self._invoke(self._new_call("get")).get_long()

    def tag(self):
        return self._invoke(self._new_call("tag")).get_string()


class Cell_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("put", "_op_put"), ("get", "_op_get"),
                       ("tag", "_op_tag"))

    def _op_put(self, call, reply):
        self.impl.put(call.get_long())

    def _op_get(self, call, reply):
        reply.put_long(self.impl.get())

    def _op_tag(self, call, reply):
        reply.put_string(self.impl.tag())


class CellImpl:
    def __init__(self, tag):
        self._tag = tag
        self._value = 0
        self._lock = threading.Lock()

    def put(self, value):
        with self._lock:
            self._value = value

    def get(self):
        with self._lock:
            return self._value

    def tag(self):
        return self._tag


@pytest.fixture
def types():
    registry = TypeRegistry()
    registry.register_interface(TYPE_ID, stub_class=Cell_stub,
                                skeleton_class=Cell_skel)
    return registry


class TestManyObjects:
    def test_hundred_objects_dispatch_to_the_right_impl(self, types):
        server = Orb(transport="inproc", protocol="text", types=types).start()
        client = Orb(transport="inproc", protocol="text", types=types)
        try:
            refs = [
                server.register(CellImpl(f"cell-{i}"), type_id=TYPE_ID)
                for i in range(100)
            ]
            for index, ref in enumerate(refs):
                stub = client.resolve(ref.stringify())
                assert stub.tag() == f"cell-{index}"
            assert server.stats["skeleton_created"] == 100
        finally:
            client.stop()
            server.stop()


class TestConcurrency:
    @pytest.mark.parametrize("protocol", ["text", "giop"])
    def test_many_threads_many_cells_no_cross_talk(self, types, protocol):
        server = Orb(transport="tcp", protocol=protocol, types=types).start()
        refs = [
            server.register(CellImpl(f"c{i}"), type_id=TYPE_ID)
            for i in range(8)
        ]
        errors = []

        def worker(worker_id):
            client = Orb(transport="tcp", protocol=protocol, types=types)
            try:
                stubs = [client.resolve(r.stringify()) for r in refs]
                for round_no in range(12):
                    cell = stubs[(worker_id + round_no) % len(stubs)]
                    expected_tag = f"c{(worker_id + round_no) % len(stubs)}"
                    if cell.tag() != expected_tag:
                        errors.append(("tag", worker_id, round_no))
                    cell.put(worker_id * 1000 + round_no)
                    got = cell.get()
                    # Someone else may have overwritten it, but the value
                    # must be *some* worker's well-formed write.
                    if not (0 <= got < 8000):
                        errors.append(("value", got))
            except Exception as exc:  # pragma: no cover
                errors.append(("exc", worker_id, repr(exc)))
            finally:
                client.stop()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        server.stop()
        assert not errors, errors[:5]

    def test_shared_client_orb_across_threads(self, types):
        """One client ORB, one connection pool, many threads."""
        server = Orb(transport="tcp", protocol="text", types=types).start()
        ref = server.register(CellImpl("shared"), type_id=TYPE_ID)
        client = Orb(transport="tcp", protocol="text", types=types)
        stub = client.resolve(ref.stringify())
        errors = []

        def worker():
            try:
                for _ in range(25):
                    if stub.tag() != "shared":
                        errors.append("cross-talk")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        client.stop()
        server.stop()
        assert not errors, errors[:5]

    def test_register_while_serving(self, types):
        """Registration concurrent with live traffic is safe."""
        server = Orb(transport="inproc", protocol="text", types=types).start()
        first = server.register(CellImpl("first"), type_id=TYPE_ID)
        client = Orb(transport="inproc", protocol="text", types=types)
        stub = client.resolve(first.stringify())
        stop = threading.Event()
        errors = []

        def traffic():
            while not stop.is_set():
                if stub.tag() != "first":
                    errors.append("cross-talk")

        thread = threading.Thread(target=traffic)
        thread.start()
        try:
            new_refs = [
                server.register(CellImpl(f"n{i}"), type_id=TYPE_ID)
                for i in range(50)
            ]
            for index, ref in enumerate(new_refs):
                assert client.resolve(ref.stringify()).tag() == f"n{index}"
        finally:
            stop.set()
            thread.join(timeout=30)
            client.stop()
            server.stop()
        assert not errors

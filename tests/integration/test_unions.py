"""IDL unions end-to-end over both protocols."""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

IDL = """\
module V {
  enum Kind { Num, Txt, Flag };
  union Payload switch (Kind) {
    case V::Num: long n;
    case V::Txt: string t;
    default: boolean b;
  };
  union Coded switch (long) {
    case 1: case 2: string s;
    case 3: double d;
  };
  union ByChar switch (char) {
    case 'a': long x;
    case 'b': string y;
  };
  struct Wrapper { Payload inner; long tag; };
  interface Box {
    Payload swap(in Payload p);
    Coded pick(in Coded c);
    ByChar chars(in ByChar c);
    Wrapper wrap(in Payload p, in long tag);
  };
};
"""


@pytest.fixture(scope="module")
def ns():
    return generate_module(parse(IDL, filename="V.idl"))


class BoxImpl:
    _hd_type_id_ = "IDL:V/Box:1.0"

    def __init__(self, ns):
        self.ns = ns

    def swap(self, p):
        Kind = self.ns["V_Kind"]
        Payload = self.ns["V_Payload"]
        if p.discriminator == Kind.Num:
            return Payload(Kind.Txt, str(p.value))
        return Payload(Kind.Num, 42)

    def pick(self, c):
        return c

    def chars(self, c):
        return c

    def wrap(self, p, tag):
        return self.ns["V_Wrapper"](inner=p, tag=tag)


@pytest.fixture(params=["text", "giop"])
def live(request, ns):
    server = Orb(transport="inproc", protocol=request.param).start()
    client = Orb(transport="inproc", protocol=request.param)
    box = client.resolve(server.register(BoxImpl(ns)).stringify())
    yield ns, box
    client.stop()
    server.stop()


class TestEnumDiscriminatedUnion:
    def test_case_branch(self, live):
        ns, box = live
        Kind, Payload = ns["V_Kind"], ns["V_Payload"]
        assert box.swap(Payload(Kind.Num, 7)) == Payload(Kind.Txt, "7")

    def test_default_branch(self, live):
        ns, box = live
        Kind, Payload = ns["V_Kind"], ns["V_Payload"]
        assert box.swap(Payload(Kind.Flag, True)) == Payload(Kind.Num, 42)


class TestLongDiscriminatedUnion:
    def test_multi_label_case(self, live):
        ns, box = live
        Coded = ns["V_Coded"]
        assert box.pick(Coded(1, "one")) == Coded(1, "one")
        assert box.pick(Coded(2, "two")) == Coded(2, "two")

    def test_second_case(self, live):
        ns, box = live
        Coded = ns["V_Coded"]
        assert box.pick(Coded(3, 1.5)) == Coded(3, 1.5)

    def test_implicit_default_carries_no_body(self, live):
        """A discriminator outside every label marshals no value —
        the CORBA implicit-default rule."""
        ns, box = live
        Coded = ns["V_Coded"]
        assert box.pick(Coded(9, None)) == Coded(9, None)


class TestCharDiscriminatedUnion:
    def test_char_labels(self, live):
        ns, box = live
        ByChar = ns["V_ByChar"]
        assert box.chars(ByChar("a", 5)) == ByChar("a", 5)
        assert box.chars(ByChar("b", "bee")) == ByChar("b", "bee")


class TestUnionInsideStruct:
    def test_union_member(self, live):
        ns, box = live
        Kind, Payload = ns["V_Kind"], ns["V_Payload"]
        wrapper = box.wrap(Payload(Kind.Txt, "hi"), 9)
        assert wrapper.tag == 9
        assert wrapper.inner == Payload(Kind.Txt, "hi")

"""Inheritance over the wire: recursive dispatch up generated hierarchies."""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

IDL = """\
module Shape {
  interface Drawable { string draw(); };
  interface Sizable { long area(); };
  interface Named { readonly attribute string label; };
  interface Rect : Drawable, Sizable { void resize(in long w, in long h); };
  interface NamedRect : Rect, Named { string describe(); };
};
"""


@pytest.fixture(scope="module")
def ns():
    return generate_module(parse(IDL, filename="Shape.idl"))


class NamedRectImpl:
    _hd_type_id_ = "IDL:Shape/NamedRect:1.0"

    def __init__(self):
        self.w, self.h = 2, 3

    def draw(self):
        return "▭"

    def area(self):
        return self.w * self.h

    def resize(self, w, h):
        self.w, self.h = w, h

    def get_label(self):
        return "rect-1"

    def describe(self):
        return f"{self.get_label()} {self.w}x{self.h}"


@pytest.fixture(params=["linear", "nested", "hash"])
def stub(request, ns):
    server = Orb(transport="inproc", protocol="text",
                 dispatch_strategy=request.param).start()
    client = Orb(transport="inproc", protocol="text")
    ref = server.register(NamedRectImpl())
    yield client.resolve(ref.stringify())
    client.stop()
    server.stop()


class TestDeepDispatch:
    def test_own_operation(self, stub):
        assert stub.describe() == "rect-1 2x3"

    def test_one_level_up(self, stub):
        stub.resize(4, 5)
        assert stub.describe() == "rect-1 4x5"

    def test_two_levels_up_first_chain(self, stub):
        assert stub.draw() == "▭"

    def test_two_levels_up_second_chain(self, stub):
        assert stub.area() == 6

    def test_attribute_via_secondary_parent(self, stub):
        assert stub.get_label() == "rect-1"

    def test_stub_class_mirrors_hierarchy(self, ns):
        NamedRect_stub = ns["Shape_NamedRect_stub"]
        bases = [cls.__name__ for cls in NamedRect_stub.__mro__]
        assert "Shape_Rect_stub" in bases
        assert "Shape_Named_stub" in bases
        assert "HdStub" in bases

    def test_skeleton_parent_order_matches_idl(self, ns):
        NamedRect_skel = ns["Shape_NamedRect_skel"]
        names = [cls.__name__ for cls in NamedRect_skel._hd_parent_skels_]
        assert names == ["Shape_Rect_skel", "Shape_Named_skel"]

    def test_dynamic_type_check_across_hierarchy(self, stub):
        assert stub._is_a("IDL:Shape/NamedRect:1.0")
        assert stub._is_a("IDL:Shape/Rect:1.0")
        assert stub._is_a("IDL:Shape/Drawable:1.0")
        assert stub._is_a("IDL:Shape/Named:1.0")
        assert not stub._is_a("IDL:Other:1.0")


class TestNarrowing:
    def test_base_typed_reference_still_dispatches_derived(self, ns):
        """A reference typed as the base interface reaches the same
        implementation; dispatch happens by object id."""
        server = Orb(transport="inproc", protocol="text").start()
        client = Orb(transport="inproc", protocol="text")
        try:
            ref = server.register(NamedRectImpl())
            base_ref = ref.with_type("IDL:Shape/Drawable:1.0")
            drawable = client.resolve(base_ref.stringify())
            assert type(drawable).__name__ == "Shape_Drawable_stub"
            assert drawable.draw() == "▭"
        finally:
            client.stop()
            server.stop()

"""Smoke-run every shipped example as a subprocess.

Examples are documentation that must not rot: each runs end to end and
prints its success marker.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = [
    ("quickstart.py", "quickstart OK"),
    ("heidi_media_control.py", "media control demo OK"),
    ("custom_mapping.py", "custom mapping demo OK"),
    ("iiop_interop.py", "iiop interop demo OK"),
    ("telnet_debug.py", "telnet demo OK"),
    ("dynamic_client.py", "dynamic client demo OK"),
    ("tcl_gui_bridge.py", "tcl bridge demo OK"),
]


@pytest.mark.parametrize("script,marker", EXAMPLES,
                         ids=[e[0] for e in EXAMPLES])
def test_example_runs_to_completion(script, marker):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stderr
    assert marker in result.stdout, result.stdout[-2000:]


def test_every_example_file_is_covered():
    present = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    covered = {script for script, _ in EXAMPLES}
    assert present == covered, present ^ covered

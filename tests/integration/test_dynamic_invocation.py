"""Dynamic invocation (IR-driven, stub-free) against a live server."""

import pytest

from repro.est import InterfaceRepository
from repro.heidirmi import Orb
from repro.heidirmi.dii import DynamicCaller
from repro.heidirmi.errors import HeidiRmiError
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

IDL = """\
module Dyn {
  enum Mode { Fast, Slow };
  struct Pair { long a; long b; };
  exception Nope { string why; };
  interface Base { string id(); };
  interface Service : Base {
    long add(in long x, in long y = 100);
    Mode flip(in Mode m);
    Pair swap(in Pair p);
    long total(in sequence<long> xs);
    string fail() raises (Nope);
    oneway void nudge(in string note);
    readonly attribute long version;
    attribute string label;
  };
};
"""


@pytest.fixture(scope="module")
def ns():
    return generate_module(parse(IDL, filename="Dyn.idl"))


@pytest.fixture(scope="module")
def repository():
    repo = InterfaceRepository()
    repo.add(parse(IDL, filename="Dyn.idl"))
    return repo


class ServiceImpl:
    _hd_type_id_ = "IDL:Dyn/Service:1.0"

    def __init__(self, ns):
        self.ns = ns
        self.label = "svc"
        self.notes = []

    def id(self):
        return "service-1"

    def add(self, x, y):
        return x + y

    def flip(self, m):
        Mode = self.ns["Dyn_Mode"]
        return Mode.Slow if m == Mode.Fast else Mode.Fast

    def swap(self, p):
        return self.ns["Dyn_Pair"](a=p.b, b=p.a)

    def total(self, xs):
        return sum(xs)

    def fail(self):
        raise self.ns["Dyn_Nope"](why="because")

    def nudge(self, note):
        self.notes.append(note)

    def get_version(self):
        return 3

    def get_label(self):
        return self.label

    def set_label(self, value):
        self.label = value


@pytest.fixture
def live(ns, repository):
    server = Orb(transport="inproc", protocol="text").start()
    client = Orb(transport="inproc", protocol="text")
    impl = ServiceImpl(ns)
    ref = server.register(impl)
    caller = DynamicCaller(client, repository)
    yield caller, ref, impl
    client.stop()
    server.stop()


class TestDynamicInvocation:
    def test_plain_operation(self, live):
        caller, ref, _ = live
        assert caller.invoke(ref, "add", 2, 3) == 5

    def test_default_parameter_applied(self, live):
        """The IR carries the default, so the DII honours it too."""
        caller, ref, _ = live
        assert caller.invoke(ref, "add", 2) == 102

    def test_missing_required_argument_rejected(self, live):
        caller, ref, _ = live
        with pytest.raises(HeidiRmiError, match="missing argument"):
            caller.invoke(ref, "add")

    def test_too_many_arguments_rejected(self, live):
        caller, ref, _ = live
        with pytest.raises(HeidiRmiError, match="at most"):
            caller.invoke(ref, "add", 1, 2, 3)

    def test_enum_by_index_and_by_name(self, live, ns):
        caller, ref, _ = live
        Mode = ns["Dyn_Mode"]
        assert caller.invoke(ref, "flip", Mode.Fast) == Mode.Slow
        assert caller.invoke(ref, "flip", "Slow") == Mode.Fast

    def test_struct_as_dict(self, live):
        """Without generated classes, structs travel as plain dicts."""
        caller, ref, _ = live
        assert caller.invoke(ref, "swap", {"a": 1, "b": 2}) == {"a": 2, "b": 1}

    def test_struct_as_generated_object(self, live, ns):
        caller, ref, _ = live
        Pair = ns["Dyn_Pair"]
        assert caller.invoke(ref, "swap", Pair(a=5, b=6)) == {"a": 6, "b": 5}

    def test_sequence(self, live):
        caller, ref, _ = live
        assert caller.invoke(ref, "total", [1, 2, 3, 4]) == 10

    def test_inherited_operation(self, live):
        caller, ref, _ = live
        assert caller.invoke(ref, "id") == "service-1"

    def test_user_exception_propagates(self, live, ns):
        caller, ref, _ = live
        with pytest.raises(ns["Dyn_Nope"], match="because"):
            caller.invoke(ref, "fail")

    def test_oneway(self, live):
        import time

        caller, ref, impl = live
        assert caller.invoke(ref, "nudge", "hello") is None
        deadline = time.time() + 5
        while not impl.notes and time.time() < deadline:
            time.sleep(0.01)
        assert impl.notes == ["hello"]

    def test_attributes(self, live):
        caller, ref, impl = live
        assert caller.invoke(ref, "_get_version") == 3
        caller.invoke(ref, "_set_label", "renamed")
        assert impl.label == "renamed"
        assert caller.invoke(ref, "_get_label") == "renamed"

    def test_unknown_operation_rejected(self, live):
        caller, ref, _ = live
        with pytest.raises(HeidiRmiError, match="not found"):
            caller.invoke(ref, "explode")

    def test_operations_listing(self, live):
        caller, ref, _ = live
        names = caller.operations("IDL:Dyn/Service:1.0")
        assert "add" in names and "id" in names
        assert "_get_version" in names
        assert "_set_label" in names
        assert "_set_version" not in names  # readonly

    def test_dynamic_agrees_with_generated_stub(self, live, ns):
        """DII and the generated stub produce identical answers."""
        caller, ref, _ = live
        stub = caller.orb.resolve(ref.stringify())
        assert caller.invoke(ref, "add", 7, 8) == stub.add(7, 8)
        assert caller.invoke(ref, "total", [9, 1]) == stub.total([9, 1])

"""Failure injection: the ORB must degrade gracefully, never wedge.

The regression that motivated this file: a server worker thread once
died mid-reply (non-ASCII payload) without closing its channel, leaving
the client blocked forever.  Every scenario here asserts the failing
path surfaces as an exception or an error reply — never a hang — and
that the server keeps serving other clients afterwards.
"""

import threading
import time

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import CommunicationError, RemoteError
from repro.heidirmi.serialize import TypeRegistry
from repro.heidirmi.transport import get_transport

TYPE_ID = "IDL:Fault/Victim:1.0"


class Victim_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def work(self, text):
        call = self._new_call("work")
        call.put_string(text)
        return self._invoke(call).get_string()

    def misbehave(self, mode):
        call = self._new_call("misbehave")
        call.put_string(mode)
        return self._invoke(call)


class Victim_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("work", "_op_work"), ("misbehave", "_op_misbehave"))

    def _op_work(self, call, reply):
        reply.put_string(self.impl.work(call.get_string()))

    def _op_misbehave(self, call, reply):
        mode = call.get_string()
        if mode == "raise":
            raise ValueError("implementation bug")
        if mode == "bad-reply":
            reply.put_long("not-an-int")  # marshal error while replying
        if mode == "unicode":
            reply.put_string("▭ non-ascii result")


class VictimImpl:
    def work(self, text):
        return text[::-1]


@pytest.fixture
def live():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Victim_stub,
                             skeleton_class=Victim_skel)
    server = Orb(transport="tcp", protocol="text", types=types).start()
    client = Orb(transport="tcp", protocol="text", types=types)
    ref = server.register(VictimImpl(), type_id=TYPE_ID)
    yield server, client, client.resolve(ref.stringify())
    client.stop()
    server.stop()


class TestServerSideFaults:
    def test_implementation_exception_is_error_reply(self, live):
        _, _, stub = live
        with pytest.raises(RemoteError, match="implementation bug"):
            stub.misbehave("raise")
        assert stub.work("ab") == "ba"  # connection survived

    def test_reply_marshal_failure_is_error_reply_not_hang(self, live):
        """A reply the marshaller rejects must come back as ERR, and the
        connection must stay usable."""
        _, _, stub = live
        with pytest.raises(RemoteError):
            stub.misbehave("bad-reply")
        assert stub.work("cd") == "dc"

    def test_non_ascii_reply_survives(self, live):
        """Regression for the silent-worker-death bug."""
        _, _, stub = live
        reply = stub.misbehave("unicode")
        assert reply.get_string() == "▭ non-ascii result"

    def test_half_request_then_disconnect(self, live):
        """A peer that sends half a line and vanishes must not disturb
        other clients."""
        server, _, stub = live
        channel = get_transport("tcp").connect(*server.address)
        channel.send(b"CALL @tcp:h:1#1#IDL:Fault/Vic")  # no newline
        channel.close()
        time.sleep(0.05)
        assert stub.work("ok") == "ko"

    def test_flood_of_garbage_lines(self, live):
        server, _, stub = live
        channel = get_transport("tcp").connect(*server.address)
        try:
            for _ in range(50):
                channel.send(b"complete nonsense\n")
            for _ in range(50):
                assert channel.recv_line().startswith(b"RET ERR")
        finally:
            channel.close()
        assert stub.work("still") == "llits"


class TestGiopFaults:
    @pytest.fixture
    def giop_live(self):
        types = TypeRegistry()
        types.register_interface(TYPE_ID, stub_class=Victim_stub,
                                 skeleton_class=Victim_skel)
        server = Orb(transport="tcp", protocol="giop", types=types).start()
        client = Orb(transport="tcp", protocol="giop", types=types)
        ref = server.register(VictimImpl(), type_id=TYPE_ID)
        yield server, client, client.resolve(ref.stringify())
        client.stop()
        server.stop()

    def test_garbage_bytes_do_not_crash_giop_server(self, giop_live):
        server, _, stub = giop_live
        channel = get_transport("tcp").connect(*server.address)
        channel.send(b"\x00\x01GARBAGE-NOT-GIOP-AT-ALL" + bytes(32))
        channel.close()
        time.sleep(0.05)
        assert stub.work("ok") == "ko"

    def test_truncated_giop_message(self, giop_live):
        server, _, stub = giop_live
        channel = get_transport("tcp").connect(*server.address)
        channel.send(b"GIOP\x01\x00\x01\x00\xff\xff\x00\x00")  # huge size
        channel.close()
        time.sleep(0.05)
        assert stub.work("fine") == "enif"


class TestClientSideFaults:
    def test_call_to_dead_server_raises(self):
        types = TypeRegistry()
        types.register_interface(TYPE_ID, stub_class=Victim_stub,
                                 skeleton_class=Victim_skel)
        server = Orb(transport="tcp", protocol="text", types=types).start()
        ref = server.register(VictimImpl(), type_id=TYPE_ID)
        client = Orb(transport="tcp", protocol="text", types=types)
        stub = client.resolve(ref.stringify())
        assert stub.work("up") == "pu"
        server.stop()
        time.sleep(0.05)
        with pytest.raises((CommunicationError, RemoteError)):
            stub.work("down")
        client.stop()

    def test_failed_connection_not_returned_to_cache(self):
        types = TypeRegistry()
        types.register_interface(TYPE_ID, stub_class=Victim_stub,
                                 skeleton_class=Victim_skel)
        server = Orb(transport="tcp", protocol="text", types=types).start()
        ref = server.register(VictimImpl(), type_id=TYPE_ID)
        client = Orb(transport="tcp", protocol="text", types=types)
        stub = client.resolve(ref.stringify())
        stub.work("warm")
        server.stop()
        time.sleep(0.05)
        with pytest.raises((CommunicationError, RemoteError)):
            stub.work("x")
        assert client.connections.idle_count == 0
        client.stop()

    def test_concurrent_clients_with_one_failing(self):
        """One client injecting faults must not slow the good client."""
        types = TypeRegistry()
        types.register_interface(TYPE_ID, stub_class=Victim_stub,
                                 skeleton_class=Victim_skel)
        server = Orb(transport="tcp", protocol="text", types=types).start()
        ref = server.register(VictimImpl(), type_id=TYPE_ID)
        stop = threading.Event()

        def chaos():
            while not stop.is_set():
                try:
                    channel = get_transport("tcp").connect(*server.address)
                    channel.send(b"junk junk junk\n")
                    channel.close()
                except CommunicationError:
                    pass
                time.sleep(0.001)

        chaos_thread = threading.Thread(target=chaos, daemon=True)
        chaos_thread.start()
        client = Orb(transport="tcp", protocol="text", types=types)
        try:
            stub = client.resolve(ref.stringify())
            for index in range(50):
                assert stub.work(str(index)) == str(index)[::-1]
        finally:
            stop.set()
            chaos_thread.join(timeout=5)
            client.stop()
            server.stop()

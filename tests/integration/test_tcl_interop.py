"""Cross-language interop: generated Tcl stubs/skeletons under tclsh
talking to the Python HeidiRMI runtime, in both directions.

This is the paper's §4.2 scenario live: "the integration of an existing
tcl management GUI application with a CORBA-based distributed system".
"""

import shutil
import subprocess
import threading

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.idl import parse
from repro.mappings import get_pack

tclsh = shutil.which("tclsh")
pytestmark = pytest.mark.skipif(tclsh is None, reason="tclsh not installed")

CONSOLE_IDL = """\
interface Console {
  void print(in string text);
  long add(in long a, in long b);
  string banner();
};
"""

TYPE_ID = "IDL:Console:1.0"


@pytest.fixture(scope="module")
def tcl_files(tmp_path_factory):
    """Generate the Tcl mapping for Console into a temp directory."""
    directory = tmp_path_factory.mktemp("tclgen")
    spec = parse(CONSOLE_IDL, filename="Console.idl")
    get_pack("tcl_orb").generate(spec).write_to(str(directory))
    return directory


def run_tcl(script, timeout=30):
    result = subprocess.run(
        [tclsh], input=script, capture_output=True, text=True, timeout=timeout
    )
    return result


class Console_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (
        ("print", "_op_print"),
        ("add", "_op_add"),
        ("banner", "_op_banner"),
    )

    def _op_print(self, call, reply):
        self.impl.print_(call.get_string())

    def _op_add(self, call, reply):
        reply.put_long(self.impl.add(call.get_long(), call.get_long()))

    def _op_banner(self, call, reply):
        reply.put_string(self.impl.banner())


class Console_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def print_(self, text):
        call = self._new_call("print")
        call.put_string(text)
        self._invoke(call)

    def add(self, a, b):
        call = self._new_call("add")
        call.put_long(a)
        call.put_long(b)
        return self._invoke(call).get_long()

    def banner(self):
        return self._invoke(self._new_call("banner")).get_string()


GLOBAL_TYPES.register_interface(
    TYPE_ID, stub_class=Console_stub, skeleton_class=Console_skel
)


class ConsoleImpl:
    def __init__(self):
        self.lines = []

    def print_(self, text):
        self.lines.append(text)

    def add(self, a, b):
        return a + b

    def banner(self):
        return "python console v1"


class TestTclClientToPythonServer:
    def test_tcl_stub_calls_python_impl(self, tcl_files):
        server = Orb(transport="tcp", protocol="text").start()
        impl = ConsoleImpl()
        ref = server.register(impl, type_id=TYPE_ID)
        script = f"""
source "{tcl_files}/orb.tcl"
source "{tcl_files}/Console.tcl"
set ref "{ref.stringify()}"
set conn [ConnectorCache::forConnectorOf $ref]
set stub [ConsoleStub #auto $ref $conn]
$stub print "hello from tcl"
$stub print "line two"
puts "SUM=[$stub add 19 23]"
puts "BANNER=[$stub banner]"
"""
        result = run_tcl(script)
        server.stop()
        assert "SUM=42" in result.stdout, result.stderr
        assert "BANNER=python console v1" in result.stdout
        assert impl.lines == ["hello from tcl", "line two"]

    def test_createstub_helper_uses_type_information(self, tcl_files):
        """The type id in the reference picks the right stub class."""
        server = Orb(transport="tcp", protocol="text").start()
        ref = server.register(ConsoleImpl(), type_id=TYPE_ID)
        script = f"""
source "{tcl_files}/orb.tcl"
source "{tcl_files}/Console.tcl"
set stub [createStub "{ref.stringify()}"]
puts "CLASS=[$stub info class]"
puts "SUM=[$stub add 1 2]"
"""
        result = run_tcl(script)
        server.stop()
        assert "CLASS=::ConsoleStub" in result.stdout, result.stderr
        assert "SUM=3" in result.stdout


class TestPythonClientToTclServer:
    def test_python_stub_calls_tcl_impl(self, tcl_files, tmp_path):
        """The Tcl BOA serves the bootstrap port; Python is the client."""
        port_file = tmp_path / "port.txt"
        script = f"""
source "{tcl_files}/orb.tcl"
source "{tcl_files}/Console.tcl"

# A legacy Tcl implementation object (plain proc-based dispatch).
namespace eval impl {{
    variable printed {{}}
    proc print {{text}} {{ variable printed; lappend printed $text }}
    proc add {{a b}} {{ return [expr {{$a + $b}}] }}
    proc banner {{}} {{ return "tcl console v1" }}
}}
proc implObj {{method args}} {{ return [impl::$method {{*}}$args] }}

set port [BOA::listen 0]
set ref [BOA::register implObj "{TYPE_ID}"]
set f [open "{port_file}" w]
puts $f $ref
close $f
vwait forever
"""
        process = subprocess.Popen(
            [tclsh], stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            process.stdin.write(script)
            process.stdin.flush()
            process.stdin.close()
            import time

            deadline = time.time() + 15
            while not port_file.exists() and time.time() < deadline:
                if process.poll() is not None:
                    raise AssertionError(process.stderr.read())
                time.sleep(0.05)
            ref_text = ""
            while not ref_text and time.time() < deadline:
                ref_text = port_file.read_text().strip()
                time.sleep(0.02)
            assert ref_text.startswith("@tcp:"), ref_text

            client = Orb(transport="tcp", protocol="text")
            stub = client.resolve(ref_text)
            assert stub.add(20, 22) == 42
            assert stub.banner() == "tcl console v1"
            stub.print_("python was here")
            client.stop()
        finally:
            process.kill()
            process.wait(timeout=10)

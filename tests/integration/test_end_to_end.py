"""End-to-end: IDL → generated Python → live remote calls.

Runs the full feature matrix over both transports and both protocols —
exactly the "customize the ORB protocol under unchanged stubs" claim.
"""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

SERVICE_IDL = """\
module Media {
  enum Mode { Play, Pause, Stop };
  typedef sequence<string> Titles;
  struct Clip { string title; double seconds; };
  exception NoSuchClip { string title; long code; };
  interface Player {
    Mode toggle(in Mode m = Media::Play);
    long enqueue(in Titles batch);
    Clip describe(in string title) raises (NoSuchClip);
    double seek(in double position, in boolean relative = FALSE);
    oneway void hint(in string text);
    void stats(out long played, out long queued);
    readonly attribute long queue_length;
    attribute string name;
  };
};
"""


@pytest.fixture(scope="module")
def generated():
    spec = parse(SERVICE_IDL, filename="Media.idl")
    return generate_module(spec)


class PlayerImpl:
    _hd_type_id_ = "IDL:Media/Player:1.0"

    def __init__(self, ns):
        self.ns = ns
        self.queue = []
        self.played = 0
        self.hints = []
        self.name = "deck-1"

    def toggle(self, m):
        Mode = self.ns["Media_Mode"]
        return Mode.Pause if m == Mode.Play else Mode.Play

    def enqueue(self, batch):
        self.queue.extend(batch)
        return len(self.queue)

    def describe(self, title):
        if title not in self.queue:
            raise self.ns["Media_NoSuchClip"](title=title, code=404)
        return self.ns["Media_Clip"](title=title, seconds=12.5)

    def seek(self, position, relative):
        return position + 1.0 if relative else position

    def hint(self, text):
        self.hints.append(text)

    def stats(self):
        return (self.played, len(self.queue))

    def get_queue_length(self):
        return len(self.queue)

    def get_name(self):
        return self.name

    def set_name(self, value):
        self.name = value


MATRIX = [
    ("tcp", "text"),
    ("tcp", "giop"),
    ("inproc", "text"),
    ("inproc", "giop"),
]


@pytest.fixture(params=MATRIX, ids=["-".join(m) for m in MATRIX])
def live(request, generated):
    transport, protocol = request.param
    server = Orb(transport=transport, protocol=protocol).start()
    client = Orb(transport=transport, protocol=protocol)
    impl = PlayerImpl(generated)
    ref = server.register(impl)
    stub = client.resolve(ref.stringify())
    yield generated, impl, stub
    client.stop()
    server.stop()


class TestFullMatrix:
    def test_enum_roundtrip_with_default(self, live):
        ns, impl, stub = live
        Mode = ns["Media_Mode"]
        assert stub.toggle() == Mode.Pause          # default Play applied
        assert stub.toggle(Mode.Pause) == Mode.Play

    def test_sequence_parameter(self, live):
        ns, impl, stub = live
        assert stub.enqueue(["a", "b", "c"]) == 3
        assert impl.queue == ["a", "b", "c"]

    def test_empty_sequence(self, live):
        ns, impl, stub = live
        assert stub.enqueue([]) == 0

    def test_struct_return(self, live):
        ns, impl, stub = live
        stub.enqueue(["movie"])
        clip = stub.describe("movie")
        assert clip == ns["Media_Clip"](title="movie", seconds=12.5)

    def test_user_exception_propagates(self, live):
        ns, impl, stub = live
        with pytest.raises(ns["Media_NoSuchClip"]) as excinfo:
            stub.describe("nope")
        assert excinfo.value.title == "nope"
        assert excinfo.value.code == 404

    def test_double_and_default_bool(self, live):
        ns, impl, stub = live
        assert stub.seek(10.0) == 10.0
        assert stub.seek(10.0, True) == 11.0

    def test_oneway_call(self, live):
        import time

        ns, impl, stub = live
        stub.hint("prefetch")
        deadline = time.time() + 5
        while not impl.hints and time.time() < deadline:
            time.sleep(0.01)
        assert impl.hints == ["prefetch"]

    def test_out_parameters_return_tuple(self, live):
        ns, impl, stub = live
        stub.enqueue(["x"])
        played, queued = stub.stats()
        assert played == 0
        assert queued == len(impl.queue)

    def test_readonly_attribute(self, live):
        ns, impl, stub = live
        count = stub.get_queue_length()
        assert count == len(impl.queue)
        assert not hasattr(stub, "set_queue_length")

    def test_writable_attribute(self, live):
        ns, impl, stub = live
        stub.set_name("deck-2")
        assert stub.get_name() == "deck-2"
        assert impl.name == "deck-2"

    def test_many_sequential_calls_reuse_connection(self, live):
        ns, impl, stub = live
        client = stub._hd_orb
        stub.seek(0.0)  # opens the one and only connection
        before = client.connections.stats["opened"]
        for index in range(20):
            stub.seek(float(index))
        after = client.connections.stats["opened"]
        assert after == before  # all calls on the cached connection
        assert client.connections.stats["hits"] >= 20


class TestConcurrentClients:
    def test_parallel_clients(self, generated):
        import threading

        server = Orb(transport="tcp", protocol="text").start()
        impl = PlayerImpl(generated)
        ref = server.register(impl)
        errors = []

        def worker():
            client = Orb(transport="tcp", protocol="text")
            try:
                stub = client.resolve(ref.stringify())
                for index in range(10):
                    assert stub.seek(float(index)) == float(index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                client.stop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        server.stop()
        assert not errors

"""The paper's telnet anecdote, reproduced.

"Utilizing such a text-based protocol permitted a 'human' client to
telnet into the bootstrap port of a Heidi application and type in simple
HeidiRMI requests to debug the system."  Here the human is a raw socket
sending hand-typed lines.
"""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module
from repro.heidirmi.transport import get_transport

IDL = """\
interface Deck {
  string play(in string title);
  long add(in long a, in long b = 10);
};
"""


class DeckImpl:
    _hd_type_id_ = "IDL:Deck:1.0"

    def play(self, title):
        return f"playing {title}"

    def add(self, a, b):
        return a + b


@pytest.fixture(scope="module")
def server():
    generate_module(parse(IDL, filename="Deck.idl"))
    orb = Orb(transport="tcp", protocol="text").start()
    ref = orb.register(DeckImpl())
    yield orb, ref
    orb.stop()


@pytest.fixture
def telnet(server):
    """A raw 'human' connection to the bootstrap port."""
    orb, ref = server
    channel = get_transport("tcp").connect(*orb.address)
    yield channel, ref
    channel.close()


class TestHumanAtTheBootstrapPort:
    def test_typed_request_gets_readable_reply(self, telnet):
        channel, ref = telnet
        channel.send(f"CALL {ref.stringify()} play casablanca\n".encode())
        assert channel.recv_line() == b"RET OK playing%20casablanca"

    def test_typed_request_with_numbers(self, telnet):
        channel, ref = telnet
        channel.send(f"CALL {ref.stringify()} add 2 3\n".encode())
        assert channel.recv_line() == b"RET OK 5"

    def test_gibberish_gets_helpful_error_and_keeps_connection(self, telnet):
        channel, ref = telnet
        channel.send(b"help me please\n")
        error_line = channel.recv_line()
        assert error_line.startswith(b"RET ERR Protocol")
        # The connection survived — a corrected request still works.
        channel.send(f"CALL {ref.stringify()} add 1 1\n".encode())
        assert channel.recv_line() == b"RET OK 2"

    def test_unknown_operation_reported(self, telnet):
        channel, ref = telnet
        channel.send(f"CALL {ref.stringify()} selfdestruct\n".encode())
        assert channel.recv_line().startswith(b"RET ERR MethodNotFound")

    def test_wrong_object_id_reported(self, telnet):
        channel, ref = telnet
        bad = ref.stringify().replace("#1#", "#99#")
        channel.send(f"CALL {bad} play x\n".encode())
        assert channel.recv_line().startswith(b"RET ERR ObjectNotFound")

    def test_bad_argument_reported_without_crash(self, telnet):
        channel, ref = telnet
        channel.send(f"CALL {ref.stringify()} add banana\n".encode())
        assert channel.recv_line().startswith(b"RET ERR")

    def test_whole_exchange_is_ascii(self, telnet):
        channel, ref = telnet
        channel.send(f"CALL {ref.stringify()} play x\n".encode())
        line = channel.recv_line()
        line.decode("ascii")  # raises if not

"""Smoke test for the benchmark harness.

Runs ``benchmarks/run_bench.py`` with tiny parameters so a broken
harness fails the fast suite without paying for a real measurement.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def test_run_bench_smoke(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "benchmarks", "run_bench.py"),
            "--clients", "1", "2",
            "--calls", "5",
            "--trials", "1",
            "--window", "4",
            "--out", str(out),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr

    document = json.loads(out.read_text())
    assert document["benchmark"] == "rpc_throughput"
    # 5 configurations x 2 client counts.
    assert len(document["results"]) == 10
    for result in document["results"]:
        assert result["calls_per_sec"] > 0
        assert result["mode"] in ("exclusive", "multiplexed")
        assert result["call_style"] in ("blocking", "pipelined")
    claim = document["claim"]
    assert claim["clients"] == 2
    assert claim["multiplexed_text2_calls_per_sec"] is not None
    assert claim["exclusive_text_calls_per_sec"] is not None

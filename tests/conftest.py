"""Shared fixtures: the paper's example IDL, parsed specs, live ORBs."""

import os

import pytest

from repro.idl import parse
from repro.est import build_est

#: CI re-runs whole suites over another transport by exporting
#: ``REPRO_TRANSPORT`` (e.g. ``aio``): every Orb and connection built
#: through ``get_transport`` resolves the alias, so the unchanged
#: blocking stack runs over the asyncio transport end to end.
_TRANSPORT_OVERRIDE = os.environ.get("REPRO_TRANSPORT")

#: Files that exercise transport *internals* (socket pairs, the inproc
#: listener registry) or bind symbolic inproc-only hostnames — rerouting
#: those would test the override, not the product, so they keep their
#: native transports.
_OVERRIDE_EXEMPT = ("test_transport.py", "test_connection.py",
                    "test_call.py")


@pytest.fixture(autouse=True)
def _transport_override(request):
    if (
        _TRANSPORT_OVERRIDE is None
        or os.path.basename(str(request.node.fspath)) in _OVERRIDE_EXEMPT
    ):
        yield
        return
    from repro.heidirmi.transport import set_transport_alias

    set_transport_alias("tcp", _TRANSPORT_OVERRIDE)
    set_transport_alias("inproc", _TRANSPORT_OVERRIDE)
    try:
        yield
    finally:
        set_transport_alias("tcp", None)
        set_transport_alias("inproc", None)

#: The IDL of the paper's Fig. 3, completed with a body for S so the
#: whole file is self-contained.
PAPER_IDL = """\
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
  interface S { };
};
"""

#: A register of ephemeral in-proc port numbers handed out to tests.
_NEXT_INPROC_PORT = [20000]


@pytest.fixture
def paper_idl():
    return PAPER_IDL


@pytest.fixture
def paper_spec():
    return parse(PAPER_IDL, filename="A.idl")


@pytest.fixture
def paper_est(paper_spec):
    return build_est(paper_spec)


@pytest.fixture
def orb_pair():
    """A started (server, client) ORB pair over TCP/text; auto-stopped."""
    from repro.heidirmi import Orb

    server = Orb(transport="tcp", protocol="text").start()
    client = Orb(transport="tcp", protocol="text")
    yield server, client
    client.stop()
    server.stop()


def make_orb_pair(transport="tcp", protocol="text", **kwargs):
    """Helper for tests that need specific transport/protocol combos."""
    from repro.heidirmi import Orb

    server = Orb(transport=transport, protocol=protocol, **kwargs).start()
    client = Orb(transport=transport, protocol=protocol, **kwargs)
    return server, client

"""Shared fixtures: the paper's example IDL, parsed specs, live ORBs."""

import pytest

from repro.idl import parse
from repro.est import build_est

#: The IDL of the paper's Fig. 3, completed with a body for S so the
#: whole file is self-contained.
PAPER_IDL = """\
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
  interface S { };
};
"""

#: A register of ephemeral in-proc port numbers handed out to tests.
_NEXT_INPROC_PORT = [20000]


@pytest.fixture
def paper_idl():
    return PAPER_IDL


@pytest.fixture
def paper_spec():
    return parse(PAPER_IDL, filename="A.idl")


@pytest.fixture
def paper_est(paper_spec):
    return build_est(paper_spec)


@pytest.fixture
def orb_pair():
    """A started (server, client) ORB pair over TCP/text; auto-stopped."""
    from repro.heidirmi import Orb

    server = Orb(transport="tcp", protocol="text").start()
    client = Orb(transport="tcp", protocol="text")
    yield server, client
    client.stop()
    server.stop()


def make_orb_pair(transport="tcp", protocol="text", **kwargs):
    """Helper for tests that need specific transport/protocol combos."""
    from repro.heidirmi import Orb

    server = Orb(transport=transport, protocol=protocol, **kwargs).start()
    client = Orb(transport=transport, protocol=protocol, **kwargs)
    return server, client

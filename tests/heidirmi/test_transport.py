"""Tests for the TCP and in-process transports."""

import threading

import pytest

from repro.heidirmi.errors import CommunicationError
from repro.heidirmi.transport import get_transport, register_transport


@pytest.fixture(params=["tcp", "inproc"])
def transport(request):
    return get_transport(request.param)


class TestEchoAcrossTransports:
    def test_line_echo(self, transport):
        listener = transport.listen("127.0.0.1", 0)
        received = []

        def server():
            channel = listener.accept()
            received.append(channel.recv_line())
            channel.send(b"pong\n")
            channel.close()

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        host, port = listener.address
        client = transport.connect(host, port)
        client.send(b"ping\n")
        assert client.recv_line() == b"pong"
        thread.join(timeout=5)
        assert received == [b"ping"]
        client.close()
        listener.close()

    def test_exact_reads(self, transport):
        listener = transport.listen("127.0.0.1", 0)

        def server():
            channel = listener.accept()
            channel.send(b"ab")
            channel.send(b"cdef")
            channel.close()

        threading.Thread(target=server, daemon=True).start()
        client = transport.connect(*listener.address)
        assert client.recv_exact(3) == b"abc"
        assert client.recv_exact(3) == b"def"
        client.close()
        listener.close()

    def test_mixed_line_and_exact_reads(self, transport):
        listener = transport.listen("127.0.0.1", 0)

        def server():
            channel = listener.accept()
            channel.send(b"header\nBINARY01")
            channel.close()

        threading.Thread(target=server, daemon=True).start()
        client = transport.connect(*listener.address)
        assert client.recv_line() == b"header"
        assert client.recv_exact(8) == b"BINARY01"
        client.close()
        listener.close()

    def test_peer_close_raises(self, transport):
        listener = transport.listen("127.0.0.1", 0)

        def server():
            listener.accept().close()

        threading.Thread(target=server, daemon=True).start()
        client = transport.connect(*listener.address)
        with pytest.raises(CommunicationError):
            client.recv_line()
        listener.close()

    def test_send_after_close_raises(self, transport):
        listener = transport.listen("127.0.0.1", 0)
        threading.Thread(target=lambda: listener.accept(), daemon=True).start()
        client = transport.connect(*listener.address)
        client.close()
        with pytest.raises(CommunicationError):
            client.send(b"x")
        listener.close()

    def test_connect_to_nothing_raises(self, transport):
        if transport.name == "tcp":
            with pytest.raises(CommunicationError):
                transport.connect("127.0.0.1", 1)  # privileged, surely closed
        else:
            with pytest.raises(CommunicationError):
                transport.connect("nowhere", 12345)


class TestEphemeralPorts:
    def test_port_zero_allocates(self, transport):
        listener = transport.listen("127.0.0.1", 0)
        assert listener.address[1] > 0
        listener.close()

    def test_two_listeners_get_distinct_ports(self, transport):
        a = transport.listen("127.0.0.1", 0)
        b = transport.listen("127.0.0.1", 0)
        assert a.address != b.address
        a.close()
        b.close()


class TestInProcSpecifics:
    def test_rebinding_same_port_rejected(self):
        transport = get_transport("inproc")
        listener = transport.listen("local", 777)
        try:
            with pytest.raises(CommunicationError):
                transport.listen("local", 777)
        finally:
            listener.close()

    def test_port_released_on_close(self):
        transport = get_transport("inproc")
        transport.listen("local", 778).close()
        listener = transport.listen("local", 778)
        listener.close()


class TestRegistry:
    def test_unknown_transport_raises(self):
        with pytest.raises(CommunicationError):
            get_transport("carrier-pigeon")

    def test_custom_transport_registration(self):
        class FakeTransport:
            name = "fake"

        register_transport("fake_tmp", FakeTransport)
        try:
            assert isinstance(get_transport("fake_tmp"), FakeTransport)
        finally:
            from repro.heidirmi import transport as module

            module._TRANSPORTS.pop("fake_tmp", None)

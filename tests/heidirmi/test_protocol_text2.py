"""Tests for the ``text2`` protocol: request-id framing and correlation.

text2 reuses every token rule of the classic text protocol but leads
two-way messages with a request id, which is what makes pipelining and
connection multiplexing possible.  The classic protocol must remain
byte-identical — its goldens are re-asserted here next to the text2
ones.
"""

import socket

import pytest

from repro.heidirmi.call import Call, Reply, STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.protocol import (
    Text2Protocol,
    TextProtocol,
    get_protocol,
    register_protocol,
)
from repro.heidirmi.transport import Channel

TARGET = "@inproc:h:1#7#IDL:T:1.0"


@pytest.fixture
def pipe():
    left, right = socket.socketpair()
    a, b = Channel(left, peer="a"), Channel(right, peer="b")
    yield a, b
    a.close()
    b.close()


def make_call(protocol, operation="op", oneway=False, request_id=None):
    call = Call(TARGET, operation, marshaller=protocol.new_marshaller(),
                oneway=oneway, request_id=request_id)
    call.put_long(42)
    return call


class TestRegistry:
    def test_text2_is_registered(self):
        assert isinstance(get_protocol("text2"), Text2Protocol)

    def test_text2_supports_multiplexing(self):
        assert get_protocol("text2").supports_multiplexing
        assert get_protocol("giop").supports_multiplexing
        assert not get_protocol("text").supports_multiplexing

    def test_text_has_no_request_ids(self):
        with pytest.raises(ProtocolError, match="request ids"):
            get_protocol("text").next_request_id()

    def test_register_hook_still_works(self):
        register_protocol("text2-alias", Text2Protocol)
        assert isinstance(get_protocol("text2-alias"), Text2Protocol)


class TestLegacyGoldens:
    """The classic protocol's bytes must not change (telnet claim)."""

    def test_request_line_unchanged(self, pipe):
        a, b = pipe
        TextProtocol().send_request(a, make_call(TextProtocol()))
        assert b.recv_line() == f"CALL {TARGET} op 42".encode()

    def test_oneway_line_unchanged(self, pipe):
        a, b = pipe
        TextProtocol().send_request(a, make_call(TextProtocol(), oneway=True))
        assert b.recv_line() == f"ONEWAY {TARGET} op 42".encode()

    def test_reply_line_unchanged(self, pipe):
        a, b = pipe
        protocol = TextProtocol()
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
        reply.put_string("done")
        protocol.send_reply(a, reply)
        assert b.recv_line() == b"RET OK done"


class TestText2Wire:
    def test_call_line_leads_with_id(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        protocol.send_request(a, make_call(protocol, request_id=9))
        assert b.recv_line() == f"CALL2 9 {TARGET} op 42".encode()

    def test_id_allocated_when_missing(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        call = make_call(protocol)
        protocol.send_request(a, call)
        assert call.request_id == 1
        assert b.recv_line().startswith(b"CALL2 1 ")

    def test_ids_are_unique_per_protocol(self):
        protocol = Text2Protocol()
        ids = {protocol.next_request_id() for _ in range(100)}
        assert len(ids) == 100

    def test_oneway_carries_no_id(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        protocol.send_request(a, make_call(protocol, oneway=True))
        assert b.recv_line() == f"ONEWAY2 {TARGET} op 42".encode()

    def test_request_round_trip(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        protocol.send_request(a, make_call(protocol, request_id=33))
        received = protocol.recv_request(b)
        assert received.request_id == 33
        assert received.target == TARGET
        assert received.operation == "op"
        assert not received.oneway
        assert received.get_long() == 42

    def test_oneway_round_trip(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        protocol.send_request(a, make_call(protocol, oneway=True))
        received = protocol.recv_request(b)
        assert received.oneway
        assert received.request_id is None

    def test_reply_echoes_id(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller(),
                      request_id=17)
        reply.put_long(5)
        protocol.send_reply(a, reply)
        received = protocol.recv_reply(b)
        assert received.request_id == 17
        assert received.get_long() == 5

    def test_exception_reply_round_trip(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        reply = Reply(status=STATUS_EXCEPTION, repo_id="IDL:E:1.0",
                      marshaller=protocol.new_marshaller(), request_id=3)
        protocol.send_reply(a, reply)
        received = protocol.recv_reply(b)
        assert received.request_id == 3
        assert received.is_exception
        assert received.repo_id == "IDL:E:1.0"

    def test_error_reply_round_trip(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        reply = Reply(status=STATUS_ERROR, repo_id="Protocol",
                      marshaller=protocol.new_marshaller(), request_id=4)
        reply.put_string("boom")
        protocol.send_reply(a, reply)
        received = protocol.recv_reply(b)
        assert received.is_error
        assert received.get_string() == "boom"

    def test_unassigned_reply_id_frames_as_zero(self, pipe):
        a, b = pipe
        protocol = Text2Protocol()
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
        protocol.send_reply(a, reply)
        assert b.recv_line() == b"RET2 0 OK"


class TestText2Errors:
    @pytest.mark.parametrize("line", [
        b"CALL2\n",                      # nothing after the verb
        b"CALL2 seven @x:h:1#1#T op\n",  # non-numeric id
        b"CALL2 -2 @x:h:1#1#T op\n",     # negative id
        b"CALL2 5 @x:h:1#1#T\n",         # missing operation
        b"NOPE 1 a b\n",                 # wrong verb
    ])
    def test_malformed_requests(self, pipe, line):
        a, b = pipe
        a.send(line)
        with pytest.raises(ProtocolError):
            Text2Protocol().recv_request(b)

    @pytest.mark.parametrize("line", [
        b"RET OK\n",           # classic reply on a text2 stream
        b"RET2 x OK\n",        # bad id
        b"RET2 1 WHAT\n",      # unknown status
        b"RET2 1 EXC\n",       # EXC without identifier
    ])
    def test_malformed_replies(self, pipe, line):
        a, b = pipe
        a.send(line)
        with pytest.raises(ProtocolError):
            Text2Protocol().recv_reply(b)

"""Tests for the text wire format, incl. marshalling round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.heidirmi.textwire import (
    TextMarshaller,
    TextUnmarshaller,
    escape_token,
    unescape_token,
)


class TestTokenEscaping:
    def test_plain_text_unchanged(self):
        assert escape_token("hello") == "hello"

    def test_space_escaped(self):
        assert escape_token("a b") == "a%20b"

    def test_newline_escaped(self):
        assert escape_token("a\nb") == "a%0Ab"

    def test_percent_escaped(self):
        assert escape_token("50%") == "50%25"

    def test_empty_string_token(self):
        assert escape_token("") == "%e"
        assert unescape_token("%e") == ""

    def test_token_never_contains_separators(self):
        for ch in (" ", "\n", "\r", "\t"):
            assert ch not in escape_token(f"a{ch}b")

    def test_bad_escape_rejected(self):
        with pytest.raises(ProtocolError):
            unescape_token("%zz")

    def test_truncated_escape_rejected(self):
        with pytest.raises(ProtocolError):
            unescape_token("abc%2")

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_escape_roundtrip(self, text):
        assert unescape_token(escape_token(text)) == text

    @given(st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_unicode_escape_roundtrip(self, text):
        """Any Unicode text survives the ASCII wire (UTF-8 + %XX)."""
        token = escape_token(text)
        assert token.isascii()
        assert unescape_token(token) == text

    def test_non_ascii_reply_regression(self):
        """Regression: a '\u25ad' return value must not kill the server
        thread (it once died in .encode('ascii') mid-reply)."""
        assert unescape_token(escape_token("\u25ad")) == "\u25ad"


def roundtrip(puts, gets):
    """Marshal with *puts*, split/join as the wire does, unmarshal."""
    marshaller = TextMarshaller()
    puts(marshaller)
    payload = marshaller.payload()
    unmarshaller = TextUnmarshaller.from_payload(payload)
    return gets(unmarshaller)


class TestPrimitives:
    def test_boolean(self):
        assert roundtrip(
            lambda m: (m.put_boolean(True), m.put_boolean(False)),
            lambda u: (u.get_boolean(), u.get_boolean()),
        ) == (True, False)

    def test_integers(self):
        def puts(m):
            m.put_octet(255)
            m.put_short(-32768)
            m.put_long(2**31 - 1)
            m.put_ulonglong(2**64 - 1)

        def gets(u):
            return (u.get_octet(), u.get_short(), u.get_long(), u.get_ulonglong())

        assert roundtrip(puts, gets) == (255, -32768, 2**31 - 1, 2**64 - 1)

    def test_integer_range_checked_on_put(self):
        with pytest.raises(MarshalError):
            TextMarshaller().put_octet(256)
        with pytest.raises(MarshalError):
            TextMarshaller().put_long(2**31)

    def test_integer_range_checked_on_get(self):
        with pytest.raises(MarshalError):
            TextUnmarshaller(["300"]).get_octet()

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(MarshalError):
            TextMarshaller().put_long(True)

    def test_double_roundtrip_exact(self):
        value = 3.141592653589793
        assert roundtrip(lambda m: m.put_double(value),
                         lambda u: u.get_double()) == value

    def test_string_with_spaces(self):
        text = "hello wide  world\nline2"
        assert roundtrip(lambda m: m.put_string(text),
                         lambda u: u.get_string()) == text

    def test_char(self):
        assert roundtrip(lambda m: m.put_char(" "),
                         lambda u: u.get_char()) == " "

    def test_enum_by_name(self):
        members = ("Start", "Stop")
        index = roundtrip(lambda m: m.put_enum("Stop", 1),
                          lambda u: u.get_enum(members))
        assert index == 1

    def test_enum_accepts_numeric_token(self):
        assert TextUnmarshaller(["1"]).get_enum(("A", "B")) == 1

    def test_enum_rejects_unknown_name(self):
        with pytest.raises(MarshalError):
            TextUnmarshaller(["Bogus"]).get_enum(("A", "B"))

    def test_objref_nil(self):
        assert roundtrip(lambda m: m.put_objref(None),
                         lambda u: u.get_objref()) is None

    def test_objref_value(self):
        ref = "@tcp:h:1#2#IDL:X:1.0"
        assert roundtrip(lambda m: m.put_objref(ref),
                         lambda u: u.get_objref()) == ref


class TestStructuring:
    def test_begin_end_roundtrip(self):
        def puts(m):
            m.begin("Point")
            m.put_long(1)
            m.put_long(2)
            m.end()

        def gets(u):
            u.begin("Point")
            values = (u.get_long(), u.get_long())
            u.end()
            return values

        assert roundtrip(puts, gets) == (1, 2)

    def test_unbalanced_begin_rejected_at_payload(self):
        m = TextMarshaller()
        m.begin("x")
        with pytest.raises(MarshalError):
            m.payload()

    def test_end_without_begin_rejected(self):
        with pytest.raises(MarshalError):
            TextMarshaller().end()

    def test_mismatched_markers_on_read(self):
        m = TextMarshaller()
        m.put_long(5)
        u = TextUnmarshaller.from_payload(m.payload())
        with pytest.raises(MarshalError):
            u.begin()

    def test_human_readable_payload(self):
        """The telnet-debugging property: the payload reads naturally."""
        m = TextMarshaller()
        m.put_string("play")
        m.put_long(3)
        m.put_boolean(True)
        assert m.payload() == b"play 3 T"


class TestExhaustion:
    def test_reading_past_end_raises(self):
        u = TextUnmarshaller([])
        with pytest.raises(MarshalError):
            u.get_long()

    def test_at_end(self):
        u = TextUnmarshaller(["1"])
        assert not u.at_end()
        u.get_long()
        assert u.at_end()


@given(st.lists(
    st.one_of(
        st.integers(-(2**31), 2**31 - 1),
        st.text(alphabet=st.characters(codec="ascii"), max_size=20),
        st.booleans(),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    max_size=12,
))
@settings(max_examples=100, deadline=None)
def test_mixed_payload_roundtrip(values):
    m = TextMarshaller()
    for value in values:
        if isinstance(value, bool):
            m.put_boolean(value)
        elif isinstance(value, int):
            m.put_long(value)
        elif isinstance(value, float):
            m.put_double(value)
        else:
            m.put_string(value)
    u = TextUnmarshaller.from_payload(m.payload())
    for value in values:
        if isinstance(value, bool):
            assert u.get_boolean() is value
        elif isinstance(value, int):
            assert u.get_long() == value
        elif isinstance(value, float):
            assert u.get_double() == value
        else:
            assert u.get_string() == value
    assert u.at_end()

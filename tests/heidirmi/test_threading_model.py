"""Tests for the serialized (non-preemptive) dispatch model.

The paper's motivation: "it would still be difficult to utilize a
general purpose ORB because of the non-preemptive computation model of
Heidi" (§3).  With ``threading_model="serialized"`` the ORB guarantees
at most one implementation upcall runs at a time, so a legacy
single-threaded code base needs no locking.
"""

import threading
import time

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import HeidiRmiError
from repro.heidirmi.serialize import TypeRegistry

TYPE_ID = "IDL:Model/Critical:1.0"


class Critical_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def enter(self, hold_ms):
        call = self._new_call("enter")
        call.put_long(hold_ms)
        return self._invoke(call).get_long()


class Critical_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("enter", "_op_enter"),)

    def _op_enter(self, call, reply):
        reply.put_long(self.impl.enter(call.get_long()))


class NonReentrantImpl:
    """Counts concurrent entries; a legacy object with no locking."""

    def __init__(self):
        self.inside = 0
        self.max_inside = 0
        self.calls = 0
        self._guard = threading.Lock()  # only to update counters safely

    def enter(self, hold_ms):
        with self._guard:
            self.inside += 1
            self.max_inside = max(self.max_inside, self.inside)
        time.sleep(hold_ms / 1000.0)
        with self._guard:
            self.inside -= 1
            self.calls += 1
        return self.calls


def hammer(ref, types, threads=6, calls_per_thread=4):
    errors = []

    def worker():
        client = Orb(transport="tcp", protocol="text", types=types)
        try:
            stub = client.resolve(ref.stringify())
            for _ in range(calls_per_thread):
                stub.enter(5)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            client.stop()

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for worker_thread in workers:
        worker_thread.start()
    for worker_thread in workers:
        worker_thread.join(timeout=60)
    assert not errors


@pytest.fixture
def types():
    registry = TypeRegistry()
    registry.register_interface(TYPE_ID, stub_class=Critical_stub,
                                skeleton_class=Critical_skel)
    return registry


class TestSerializedModel:
    def test_no_concurrent_upcalls(self, types):
        server = Orb(transport="tcp", protocol="text", types=types,
                     threading_model="serialized").start()
        impl = NonReentrantImpl()
        ref = server.register(impl, type_id=TYPE_ID)
        try:
            hammer(ref, types)
            assert impl.max_inside == 1
            assert impl.calls == 24
        finally:
            server.stop()

    def test_threaded_model_does_interleave(self, types):
        """The contrast: the default model runs upcalls concurrently
        (which is why Heidi could not just adopt a general-purpose ORB)."""
        server = Orb(transport="tcp", protocol="text", types=types,
                     threading_model="threaded").start()
        impl = NonReentrantImpl()
        ref = server.register(impl, type_id=TYPE_ID)
        try:
            hammer(ref, types)
            assert impl.max_inside > 1
        finally:
            server.stop()

    def test_unknown_model_rejected(self, types):
        with pytest.raises(HeidiRmiError, match="threading model"):
            Orb(transport="inproc", types=types, threading_model="fibers")

    def test_serialized_results_still_correct(self, types):
        server = Orb(transport="inproc", protocol="text", types=types,
                     threading_model="serialized").start()
        client = Orb(transport="inproc", protocol="text", types=types)
        try:
            stub = client.resolve(
                server.register(NonReentrantImpl(), type_id=TYPE_ID).stringify()
            )
            assert stub.enter(0) == 1
            assert stub.enter(0) == 2
        finally:
            client.stop()
            server.stop()

"""Tests for skeleton dispatch: delegation + recursive hierarchy walk."""

import pytest

from repro.heidirmi.call import Call, Reply
from repro.heidirmi.errors import MethodNotFound
from repro.heidirmi.skeleton import HdSkel
from repro.heidirmi.textwire import TextMarshaller, TextUnmarshaller


def incoming(operation, tokens=()):
    return Call("@tcp:h:1#1#IDL:X:1.0", operation,
                unmarshaller=TextUnmarshaller(list(tokens)))


def fresh_reply():
    return Reply(marshaller=TextMarshaller())


class RecordingImpl:
    def __init__(self):
        self.calls = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((name, args))
            return None

        return record


class Base_skel(HdSkel):
    _hd_type_id_ = "IDL:Base:1.0"
    _hd_operations_ = (("base_op", "_op_base"),)

    def _op_base(self, call, reply):
        self.impl.base_op()
        reply.put_string("base")


class Mixin_skel(HdSkel):
    _hd_type_id_ = "IDL:Mixin:1.0"
    _hd_operations_ = (("mix_op", "_op_mix"),)

    def _op_mix(self, call, reply):
        self.impl.mix_op()
        reply.put_string("mixin")


class Derived_skel(Base_skel, Mixin_skel):
    _hd_type_id_ = "IDL:Derived:1.0"
    _hd_operations_ = (("own_op", "_op_own"),)
    _hd_parent_skels_ = (Base_skel, Mixin_skel)

    def _op_own(self, call, reply):
        self.impl.own_op()
        reply.put_string("derived")


@pytest.fixture(params=["linear", "nested", "hash"])
def skeleton(request):
    return Derived_skel(RecordingImpl(), None, dispatch_strategy=request.param)


class TestDispatch:
    def test_own_operation(self, skeleton):
        reply = fresh_reply()
        skeleton.dispatch(incoming("own_op"), reply)
        assert skeleton.impl.calls == [("own_op", ())]

    def test_inherited_via_first_parent(self, skeleton):
        skeleton.dispatch(incoming("base_op"), fresh_reply())
        assert skeleton.impl.calls == [("base_op", ())]

    def test_inherited_via_second_parent(self, skeleton):
        """Multiple inheritance: delegation continues to each parent
        skeleton in order (paper §3.1)."""
        skeleton.dispatch(incoming("mix_op"), fresh_reply())
        assert skeleton.impl.calls == [("mix_op", ())]

    def test_unknown_operation_raises(self, skeleton):
        with pytest.raises(MethodNotFound):
            skeleton.dispatch(incoming("nope"), fresh_reply())

    def test_own_tried_before_parents(self):
        """A derived redefinition shadows the parent's entry."""

        class Shadowing_skel(Base_skel):
            _hd_type_id_ = "IDL:Shadow:1.0"
            _hd_operations_ = (("base_op", "_op_shadow"),)
            _hd_parent_skels_ = (Base_skel,)

            def _op_shadow(self, call, reply):
                self.impl.shadowed()

        skel = Shadowing_skel(RecordingImpl(), None, dispatch_strategy="hash")
        skel.dispatch(incoming("base_op"), fresh_reply())
        assert skel.impl.calls == [("shadowed", ())]

    def test_parents_tried_in_declaration_order(self):
        """When two parents both serve an op, the first wins."""

        class P1_skel(HdSkel):
            _hd_operations_ = (("shared", "_op1"),)

            def _op1(self, call, reply):
                self.impl.first()

        class P2_skel(HdSkel):
            _hd_operations_ = (("shared", "_op2"),)

            def _op2(self, call, reply):
                self.impl.second()

        class Child_skel(P1_skel, P2_skel):
            _hd_operations_ = ()
            _hd_parent_skels_ = (P1_skel, P2_skel)

        skel = Child_skel(RecordingImpl(), None, dispatch_strategy="hash")
        skel.dispatch(incoming("shared"), fresh_reply())
        assert skel.impl.calls == [("first", ())]

    def test_operations_collects_hierarchy(self, skeleton):
        assert set(skeleton.operations()) == {"own_op", "base_op", "mix_op"}


class TestDelegation:
    def test_impl_needs_no_special_base_class(self):
        """The Fig. 2 point: any object can be the implementation."""

        class PlainLegacyObject:
            def base_op(self):
                self.touched = True

        impl = PlainLegacyObject()
        skel = Base_skel(impl, None, dispatch_strategy="linear")
        skel.dispatch(incoming("base_op"), fresh_reply())
        assert impl.touched

    def test_skeleton_repr(self):
        skel = Base_skel(RecordingImpl(), None, dispatch_strategy="hash")
        assert "Base_skel" in repr(skel)
        assert "IDL:Base:1.0" in repr(skel)


class TestDispatcherCaching:
    def test_dispatcher_cached_per_class_and_strategy(self):
        d1 = Base_skel._own_dispatcher("hash")
        d2 = Base_skel._own_dispatcher("hash")
        assert d1 is d2
        d3 = Base_skel._own_dispatcher("linear")
        assert d3 is not d1

    def test_subclass_does_not_inherit_cache_entries(self):
        base = Base_skel._own_dispatcher("hash")
        derived = Derived_skel._own_dispatcher("hash")
        assert base is not derived
        assert derived.lookup("own_op") is not None
        assert base.lookup("own_op") is None

"""Tests for Call/Reply and the text protocol framing."""

import threading

import pytest

from repro.heidirmi.call import Call, Reply, STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK
from repro.heidirmi.communicator import ObjectCommunicator
from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.heidirmi.protocol import TextProtocol, get_protocol, register_protocol
from repro.heidirmi.textwire import TextMarshaller, TextUnmarshaller
from repro.heidirmi.transport import get_transport

REF = "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0"


class TestCallObject:
    def test_header_fields(self):
        call = Call(REF, "f", marshaller=TextMarshaller())
        assert call.target == REF
        assert call.operation == "f"
        assert not call.oneway
        assert call.writable and not call.readable

    def test_needs_a_side(self):
        with pytest.raises(MarshalError):
            Call(REF, "f")

    def test_begin_end_side_resolution(self):
        writer = Call(REF, "f", marshaller=TextMarshaller())
        writer.begin("s")
        writer.put_long(1)
        writer.end()
        reader = Call(REF, "f",
                      unmarshaller=TextUnmarshaller.from_payload(writer.payload()))
        reader.begin("s")
        assert reader.get_long() == 1
        reader.end()

    def test_reply_status_flags(self):
        ok = Reply(status=STATUS_OK, marshaller=TextMarshaller())
        exc = Reply(status=STATUS_EXCEPTION, repo_id="IDL:E:1.0",
                    marshaller=TextMarshaller())
        err = Reply(status=STATUS_ERROR, repo_id="Internal",
                    marshaller=TextMarshaller())
        assert ok.is_ok and not ok.is_exception
        assert exc.is_exception and not exc.is_ok
        assert err.is_error


class _LinePair:
    """A connected channel pair over the inproc transport."""

    def __init__(self):
        transport = get_transport("inproc")
        self.listener = transport.listen("call-test", 0)
        holder = {}

        def accept():
            holder["server"] = self.listener.accept()

        thread = threading.Thread(target=accept)
        thread.start()
        self.client = transport.connect(*self.listener.address)
        thread.join()
        self.server = holder["server"]

    def close(self):
        self.client.close()
        self.server.close()
        self.listener.close()


@pytest.fixture
def channels():
    pair = _LinePair()
    yield pair
    pair.close()


class TestTextProtocolFraming:
    def test_request_line_shape(self, channels):
        protocol = TextProtocol()
        call = Call(REF, "play", marshaller=protocol.new_marshaller())
        call.put_string("movie one")
        call.put_long(3)
        protocol.send_request(channels.client, call)
        line = channels.server.recv_line()
        assert line == (
            b"CALL @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0 play "
            b"movie%20one 3"
        )

    def test_request_roundtrip(self, channels):
        protocol = TextProtocol()
        call = Call(REF, "play", marshaller=protocol.new_marshaller())
        call.put_string("x")
        protocol.send_request(channels.client, call)
        received = protocol.recv_request(channels.server)
        assert received.target == REF
        assert received.operation == "play"
        assert received.get_string() == "x"

    def test_oneway_verb(self, channels):
        protocol = TextProtocol()
        call = Call(REF, "fire", marshaller=protocol.new_marshaller(), oneway=True)
        protocol.send_request(channels.client, call)
        received = protocol.recv_request(channels.server)
        assert received.oneway

    def test_ok_reply_roundtrip(self, channels):
        protocol = TextProtocol()
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
        reply.put_long(42)
        protocol.send_reply(channels.server, reply)
        received = protocol.recv_reply(channels.client)
        assert received.is_ok
        assert received.get_long() == 42

    def test_exception_reply_roundtrip(self, channels):
        protocol = TextProtocol()
        reply = Reply(status=STATUS_EXCEPTION, repo_id="IDL:Heidi/Bad:1.0",
                      marshaller=protocol.new_marshaller())
        reply.put_string("why")
        protocol.send_reply(channels.server, reply)
        received = protocol.recv_reply(channels.client)
        assert received.is_exception
        assert received.repo_id == "IDL:Heidi/Bad:1.0"
        assert received.get_string() == "why"

    def test_malformed_request_raises_protocol_error(self, channels):
        channels.client.send(b"NONSENSE\n")
        with pytest.raises(ProtocolError):
            TextProtocol().recv_request(channels.server)

    def test_malformed_reply_raises(self, channels):
        channels.server.send(b"NOT A REPLY\n")
        with pytest.raises(ProtocolError):
            TextProtocol().recv_reply(channels.client)

    def test_empty_args_request(self, channels):
        protocol = TextProtocol()
        call = Call(REF, "ping", marshaller=protocol.new_marshaller())
        protocol.send_request(channels.client, call)
        assert channels.server.recv_line().endswith(b" ping")


class TestObjectCommunicator:
    def test_invoke_and_reply(self, channels):
        protocol = TextProtocol()
        client = ObjectCommunicator(channels.client, protocol)
        server = ObjectCommunicator(channels.server, protocol)

        def serve_one():
            call = server.next_request()
            reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
            reply.put_string(call.get_string().upper())
            server.reply(reply)

        thread = threading.Thread(target=serve_one)
        thread.start()
        call = Call(REF, "up", marshaller=protocol.new_marshaller())
        call.put_string("abc")
        reply = client.invoke(call)
        thread.join()
        assert reply.get_string() == "ABC"

    def test_oneway_invoke_returns_none(self, channels):
        protocol = TextProtocol()
        client = ObjectCommunicator(channels.client, protocol)
        call = Call(REF, "fire", marshaller=protocol.new_marshaller(), oneway=True)
        assert client.invoke(call) is None

    def test_reply_error_helper(self, channels):
        protocol = TextProtocol()
        server = ObjectCommunicator(channels.server, protocol)
        server.reply_error("Protocol", "bad line")
        reply = protocol.recv_reply(channels.client)
        assert reply.is_error
        assert reply.repo_id == "Protocol"
        assert reply.get_string() == "bad line"


class TestProtocolRegistry:
    def test_text_protocol_by_name(self):
        assert get_protocol("text").name == "text"

    def test_giop_protocol_lazily_loaded(self):
        assert get_protocol("giop").name == "giop"

    def test_unknown_protocol_raises(self):
        with pytest.raises(ProtocolError):
            get_protocol("smoke-signals")

    def test_custom_protocol_registration(self):
        class FakeProtocol:
            name = "fake"

        register_protocol("fake_tmp", FakeProtocol)
        try:
            assert isinstance(get_protocol("fake_tmp"), FakeProtocol)
        finally:
            from repro.heidirmi import protocol as module

            module._PROTOCOLS.pop("fake_tmp", None)

"""Tests for stringified object references, incl. round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heidirmi import ObjectReference
from repro.heidirmi.errors import ProtocolError

PAPER_REF = "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0"


class TestPaperExample:
    def test_parse_paper_reference(self):
        ref = ObjectReference.parse(PAPER_REF)
        assert ref.protocol == "tcp"
        assert ref.host == "galaxy.nec.com"
        assert ref.port == 1234
        assert ref.object_id == "9876"
        assert ref.type_id == "IDL:Heidi/A:1.0"

    def test_stringify_paper_reference(self):
        ref = ObjectReference("tcp", "galaxy.nec.com", 1234, "9876",
                              "IDL:Heidi/A:1.0")
        assert ref.stringify() == PAPER_REF

    def test_bootstrap_tuple(self):
        ref = ObjectReference.parse(PAPER_REF)
        assert ref.bootstrap == ("tcp", "galaxy.nec.com", 1234)

    def test_with_type(self):
        ref = ObjectReference.parse(PAPER_REF).with_type("IDL:Heidi/S:1.0")
        assert ref.type_id == "IDL:Heidi/S:1.0"
        assert ref.object_id == "9876"


class TestValidation:
    @pytest.mark.parametrize("bad", [
        "",
        "tcp:host:1#1#IDL:X:1.0",         # missing @
        "@tcp:host:1#1",                   # missing type part
        "@tcp:host#1#IDL:X:1.0",           # missing port
        "@tcp:host:banana#1#IDL:X:1.0",    # non-numeric port
        "@tcp:host:0#1#IDL:X:1.0",         # port out of range
        "@tcp:host:99999#1#IDL:X:1.0",     # port out of range
        "@tcp:host:1##IDL:X:1.0",          # empty oid
        "@tcp:host:1#1#NotARepoId",        # type not IDL:
        "@:host:1#1#IDL:X:1.0",            # empty protocol
    ])
    def test_malformed_references_rejected(self, bad):
        with pytest.raises(ProtocolError):
            ObjectReference.parse(bad)

    def test_type_id_may_contain_colons_and_hashes_not(self):
        ref = ObjectReference.parse("@inproc:local:9#a-b-c#IDL:M/I:2.1")
        assert ref.object_id == "a-b-c"
        assert ref.type_id == "IDL:M/I:2.1"


class TestEqualityAndHashing:
    def test_references_are_value_objects(self):
        a = ObjectReference.parse(PAPER_REF)
        b = ObjectReference.parse(PAPER_REF)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


@given(
    protocol=st.sampled_from(["tcp", "inproc", "ssl"]),
    host=st.from_regex(r"[a-z][a-z0-9.\-]{0,20}", fullmatch=True),
    port=st.integers(1, 65535),
    oid=st.from_regex(r"[A-Za-z0-9\-_.]{1,12}", fullmatch=True),
    path=st.from_regex(r"[A-Za-z][A-Za-z0-9/]{0,16}", fullmatch=True),
    version=st.from_regex(r"[0-9]\.[0-9]", fullmatch=True),
)
@settings(max_examples=100, deadline=None)
def test_stringify_parse_roundtrip(protocol, host, port, oid, path, version):
    ref = ObjectReference(protocol, host, port, oid, f"IDL:{path}:{version}")
    assert ObjectReference.parse(ref.stringify()) == ref

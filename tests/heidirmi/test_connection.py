"""Tests for the connection cache."""

import threading

import pytest

from repro.heidirmi.connection import ConnectionCache
from repro.heidirmi.protocol import TextProtocol
from repro.heidirmi.transport import get_transport


@pytest.fixture
def echo_listener():
    """An inproc listener that echoes request lines back as replies."""
    transport = get_transport("inproc")
    listener = transport.listen("cache-test", 0)
    running = [True]

    def serve():
        while running[0]:
            try:
                channel = listener.accept()
            except Exception:
                return
            threading.Thread(
                target=_echo_channel, args=(channel,), daemon=True
            ).start()

    def _echo_channel(channel):
        try:
            while True:
                line = channel.recv_line()
                channel.send(b"RET OK " + line.split(b" ", 3)[-1] + b"\n")
        except Exception:
            channel.close()

    threading.Thread(target=serve, daemon=True).start()
    yield listener.address
    running[0] = False
    listener.close()


def make_cache(enabled=True, max_idle=8):
    return ConnectionCache(
        get_transport, TextProtocol(), enabled=enabled, max_idle=max_idle
    )


class TestReuse:
    def test_first_acquire_opens(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        assert cache.stats["opened"] == 1
        cache.release(bootstrap, communicator)
        cache.close_all()

    def test_released_connection_is_reused(self, echo_listener):
        """Paper: 'only if there is no available connection is a new
        connection opened'."""
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        first = cache.acquire(bootstrap)
        cache.release(bootstrap, first)
        second = cache.acquire(bootstrap)
        assert second is first
        assert cache.stats == {"hits": 1, "misses": 1, "opened": 1}
        cache.close_all()

    def test_concurrent_checkouts_open_separate_connections(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        a = cache.acquire(bootstrap)
        b = cache.acquire(bootstrap)
        assert a is not b
        assert cache.stats["opened"] == 2
        cache.release(bootstrap, a)
        cache.release(bootstrap, b)
        assert cache.idle_count == 2
        cache.close_all()

    def test_closed_connection_not_reused(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        communicator.close()
        replacement = cache.acquire(bootstrap)
        assert replacement is not communicator
        cache.close_all()

    def test_discard_closes(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.discard(communicator)
        assert communicator.closed


class TestDisabledCache:
    def test_every_acquire_opens(self, echo_listener):
        cache = make_cache(enabled=False)
        bootstrap = ("inproc",) + echo_listener
        for _ in range(3):
            communicator = cache.acquire(bootstrap)
            cache.release(bootstrap, communicator)
        assert cache.stats["opened"] == 3
        assert cache.idle_count == 0

    def test_release_closes_when_disabled(self, echo_listener):
        cache = make_cache(enabled=False)
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        assert communicator.closed


class TestBounds:
    def test_max_idle_enforced(self, echo_listener):
        cache = make_cache(max_idle=2)
        bootstrap = ("inproc",) + echo_listener
        communicators = [cache.acquire(bootstrap) for _ in range(4)]
        for communicator in communicators:
            cache.release(bootstrap, communicator)
        assert cache.idle_count == 2
        assert sum(1 for c in communicators if c.closed) == 2
        cache.close_all()

    def test_close_all_empties_pool(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        cache.close_all()
        assert cache.idle_count == 0
        assert communicator.closed

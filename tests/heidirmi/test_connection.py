"""Tests for the connection cache."""

import threading

import pytest

from repro.heidirmi.connection import ConnectionCache
from repro.heidirmi.protocol import TextProtocol, Text2Protocol
from repro.heidirmi.transport import get_transport
from repro.observe import Observer


@pytest.fixture
def echo_listener():
    """An inproc listener that echoes request lines back as replies."""
    transport = get_transport("inproc")
    listener = transport.listen("cache-test", 0)
    running = [True]

    def serve():
        while running[0]:
            try:
                channel = listener.accept()
            except Exception:
                return
            threading.Thread(
                target=_echo_channel, args=(channel,), daemon=True
            ).start()

    def _echo_channel(channel):
        try:
            while True:
                line = channel.recv_line()
                channel.send(b"RET OK " + line.split(b" ", 3)[-1] + b"\n")
        except Exception:
            channel.close()

    threading.Thread(target=serve, daemon=True).start()
    yield listener.address
    running[0] = False
    listener.close()


def make_cache(enabled=True, max_idle=8):
    return ConnectionCache(
        get_transport, TextProtocol(), enabled=enabled, max_idle=max_idle
    )


class TestReuse:
    def test_first_acquire_opens(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        assert cache.stats["opened"] == 1
        cache.release(bootstrap, communicator)
        cache.close_all()

    def test_released_connection_is_reused(self, echo_listener):
        """Paper: 'only if there is no available connection is a new
        connection opened'."""
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        first = cache.acquire(bootstrap)
        cache.release(bootstrap, first)
        second = cache.acquire(bootstrap)
        assert second is first
        assert cache.stats == {"hits": 1, "misses": 1, "opened": 1,
                               "evicted": 0}
        cache.close_all()

    def test_concurrent_checkouts_open_separate_connections(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        a = cache.acquire(bootstrap)
        b = cache.acquire(bootstrap)
        assert a is not b
        assert cache.stats["opened"] == 2
        cache.release(bootstrap, a)
        cache.release(bootstrap, b)
        assert cache.idle_count == 2
        cache.close_all()

    def test_closed_connection_not_reused(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        communicator.close()
        replacement = cache.acquire(bootstrap)
        assert replacement is not communicator
        cache.close_all()

    def test_discard_closes(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.discard(communicator)
        assert communicator.closed


class TestDisabledCache:
    def test_every_acquire_opens(self, echo_listener):
        cache = make_cache(enabled=False)
        bootstrap = ("inproc",) + echo_listener
        for _ in range(3):
            communicator = cache.acquire(bootstrap)
            cache.release(bootstrap, communicator)
        assert cache.stats["opened"] == 3
        assert cache.idle_count == 0

    def test_release_closes_when_disabled(self, echo_listener):
        cache = make_cache(enabled=False)
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        assert communicator.closed


class TestBounds:
    def test_max_idle_enforced(self, echo_listener):
        cache = make_cache(max_idle=2)
        bootstrap = ("inproc",) + echo_listener
        communicators = [cache.acquire(bootstrap) for _ in range(4)]
        for communicator in communicators:
            cache.release(bootstrap, communicator)
        assert cache.idle_count == 2
        assert sum(1 for c in communicators if c.closed) == 2
        cache.close_all()

    def test_close_all_empties_pool(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        cache.close_all()
        assert cache.idle_count == 0
        assert communicator.closed


def _metric_value(observer, name, **labels):
    entries = observer.metrics.snapshot().get(name, [])
    for entry in entries:
        if entry["labels"] == labels:
            return entry["value"]
    return 0


class TestEviction:
    def test_pool_overflow_counts_evictions(self, echo_listener):
        cache = make_cache(max_idle=2)
        bootstrap = ("inproc",) + echo_listener
        communicators = [cache.acquire(bootstrap) for _ in range(4)]
        for communicator in communicators:
            cache.release(bootstrap, communicator)
        assert cache.stats["evicted"] == 2
        cache.close_all()

    def test_dead_pooled_connection_counts_eviction(self, echo_listener):
        cache = make_cache()
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        cache.release(bootstrap, communicator)
        communicator.close()
        replacement = cache.acquire(bootstrap)
        assert replacement is not communicator
        assert cache.stats["evicted"] == 1
        assert cache.stats["misses"] == 2
        cache.close_all()

    def test_dead_shared_connection_counts_eviction(self, echo_listener):
        cache = ConnectionCache(
            get_transport, Text2Protocol(), mode="multiplexed"
        )
        bootstrap = ("inproc",) + echo_listener
        shared = cache.acquire(bootstrap)
        shared.close()
        replacement = cache.acquire(bootstrap)
        assert replacement is not shared
        assert cache.stats["evicted"] == 1
        cache.close_all()

    def test_shared_discard_counts_eviction(self, echo_listener):
        cache = ConnectionCache(
            get_transport, Text2Protocol(), mode="multiplexed"
        )
        bootstrap = ("inproc",) + echo_listener
        shared = cache.acquire(bootstrap)
        cache.discard(shared)
        assert cache.stats["evicted"] == 1
        cache.close_all()


class TestObserverMirroring:
    """The stats dict and the observer's registry must agree."""

    def test_exclusive_counters_match_stats(self, echo_listener):
        observer = Observer()
        cache = ConnectionCache(
            get_transport, TextProtocol(), max_idle=1, observer=observer
        )
        bootstrap = ("inproc",) + echo_listener
        a = cache.acquire(bootstrap)
        b = cache.acquire(bootstrap)
        cache.release(bootstrap, a)
        cache.release(bootstrap, b)  # overflow: max_idle=1 → evicted
        c = cache.acquire(bootstrap)
        cache.release(bootstrap, c)
        for key, metric in (("hits", "connection_cache.hits"),
                            ("misses", "connection_cache.misses"),
                            ("opened", "connection_cache.opened"),
                            ("evicted", "connection_cache.evicted")):
            assert cache.stats[key] == _metric_value(
                observer, metric, mode="exclusive"
            ), key
        assert cache.stats["evicted"] == 1
        cache.close_all()

    def test_multiplexed_counters_match_stats(self, echo_listener):
        observer = Observer()
        cache = ConnectionCache(
            get_transport, Text2Protocol(), mode="multiplexed",
            observer=observer,
        )
        bootstrap = ("inproc",) + echo_listener
        shared = cache.acquire(bootstrap)
        again = cache.acquire(bootstrap)
        assert again is shared
        shared.close()
        cache.acquire(bootstrap)  # dead shared replaced: evict + miss
        for key, metric in (("hits", "connection_cache.hits"),
                            ("misses", "connection_cache.misses"),
                            ("opened", "connection_cache.opened"),
                            ("evicted", "connection_cache.evicted")):
            assert cache.stats[key] == _metric_value(
                observer, metric, mode="multiplexed"
            ), key
        assert cache.stats == {"hits": 1, "misses": 2, "opened": 2,
                               "evicted": 1}
        cache.close_all()

    def test_observed_channels_meter_bytes(self, echo_listener):
        observer = Observer()
        cache = ConnectionCache(
            get_transport, TextProtocol(), observer=observer
        )
        bootstrap = ("inproc",) + echo_listener
        communicator = cache.acquire(bootstrap)
        communicator.channel.send(b"CALL @x op hello\n")
        communicator.channel.recv_line()
        cache.release(bootstrap, communicator)
        assert _metric_value(
            observer, "channel.bytes_sent", side="client") > 0
        assert _metric_value(
            observer, "channel.bytes_received", side="client") > 0
        cache.close_all()

"""End-to-end mutation-after-send safety over live ORBs.

The zero-copy emitter interns marshalled frames and (with
``batch_oneways``) queues encoded bytes for a later flush.  Both mean
frame material can outlive the ``invoke_async`` call that produced it
— so a caller who keeps marshalling into an already-sent call must
never corrupt what went (or will go) on the wire, nor poison the
interned frame that the *next* same-shape call borrows.

Runs over the blocking transports natively and over asyncio when CI
re-runs this directory with ``REPRO_TRANSPORT=aio``.
"""

import time

import pytest

from tests.heidirmi.test_concurrency import run_pair

PAIRS = [("text2", True), ("giop", True)]


@pytest.mark.parametrize("protocol,multiplex", PAIRS)
def test_mutation_after_invoke_async_keeps_reply_intact(protocol, multiplex):
    """On a multiplexed ORB the frame is encoded and pipelined before
    ``invoke_async`` returns; marshalling more arguments afterwards
    must not reach the wire."""
    server, client, stub, _ = run_pair("inproc", protocol, multiplex)
    try:
        call = stub._new_call("mark")
        call.put_string("token-a")
        call.put_long(0)
        future = client.invoke_async(stub._hd_ref, call)
        # The caller keeps writing into the call after the send.
        call.put_string("tampered")
        assert future.result(timeout=10).get_string() == "ack:token-a"
    finally:
        client.stop()
        server.stop()


@pytest.mark.parametrize("protocol,multiplex", PAIRS)
def test_interned_frame_unpoisoned_by_later_mutation(protocol, multiplex):
    """A fresh call with the same shape as a mutated one must still get
    a correct frame (the intern cache copied, not aliased)."""
    server, client, stub, _ = run_pair("inproc", protocol, multiplex)
    try:
        first = stub._new_call("mark")
        first.put_string("token-b")
        first.put_long(0)
        reply = client.invoke_async(stub._hd_ref, first)
        first.put_long(999)  # mutate while the first frame is cached

        second = stub._new_call("mark")
        second.put_string("token-b")
        second.put_long(0)
        assert (client.invoke_async(stub._hd_ref, second)
                .result(timeout=10).get_string() == "ack:token-b")
        assert reply.result(timeout=10).get_string() == "ack:token-b"
    finally:
        client.stop()
        server.stop()


def test_mutation_after_batched_oneway_keeps_queue_intact():
    """``batch_oneways`` queues the *encoded* frame, not the call:
    mutating the call between enqueue and flush changes nothing."""
    server, client, stub, impl = run_pair("inproc", "text2", True,
                                          batch_oneways=True)
    try:
        call = stub._new_call("log", oneway=True)
        call.put_string("queued")
        stub._invoke(call)  # buffered, not yet flushed
        call.put_string("tampered")  # mutate the queued call
        assert stub.mark("sync") == "ack:sync"  # two-way flushes the batch

        deadline = time.monotonic() + 10
        while not impl.logged and time.monotonic() < deadline:
            time.sleep(0.01)
        assert impl.logged == ["queued"]
    finally:
        client.stop()
        server.stop()

"""Tests for the ORB core: registration, caches, error replies, tracing."""

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import HeidiRmiError, RemoteError
from repro.heidirmi.serialize import TypeRegistry

TYPE_ID = "IDL:OrbTest/Echo:1.0"


class Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, text):
        call = self._new_call("echo")
        call.put_string(text)
        return self._invoke(call).get_string()

    def boom(self):
        call = self._new_call("boom")
        return self._invoke(call)


class Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"), ("boom", "_op_boom"))

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string()))

    def _op_boom(self, call, reply):
        self.impl.boom()


class EchoImpl:
    def echo(self, text):
        return text[::-1]

    def boom(self):
        raise RuntimeError("implementation exploded")


@pytest.fixture
def registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Echo_stub,
                             skeleton_class=Echo_skel)
    return types


@pytest.fixture
def pair(registry):
    server = Orb(transport="inproc", protocol="text", types=registry).start()
    client = Orb(transport="inproc", protocol="text", types=registry)
    yield server, client
    client.stop()
    server.stop()


class TestRegistration:
    def test_register_returns_reference(self, pair):
        server, _ = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        assert ref.type_id == TYPE_ID
        assert ref.port == server.port
        assert ref.protocol == "inproc"

    def test_oid_allocation_is_unique(self, pair):
        server, _ = pair
        refs = {server.register(EchoImpl(), type_id=TYPE_ID).object_id
                for _ in range(5)}
        assert len(refs) == 5

    def test_explicit_oid(self, pair):
        server, _ = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID, oid="9876")
        assert ref.object_id == "9876"

    def test_duplicate_oid_rejected(self, pair):
        server, _ = pair
        server.register(EchoImpl(), type_id=TYPE_ID, oid="dup")
        with pytest.raises(HeidiRmiError):
            server.register(EchoImpl(), type_id=TYPE_ID, oid="dup")

    def test_export_is_idempotent(self, pair):
        server, _ = pair
        impl = EchoImpl()
        ref1 = server.export(impl, type_id=TYPE_ID)
        ref2 = server.export(impl, type_id=TYPE_ID)
        assert ref1 == ref2

    def test_type_id_inference_requires_marker(self, pair):
        server, _ = pair
        with pytest.raises(HeidiRmiError, match="cannot infer"):
            server.register(object())

    def test_unregister(self, pair, registry):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        server.unregister(ref.object_id)
        stub = client.resolve(ref)
        with pytest.raises(RemoteError, match="ObjectNotFound"):
            stub.echo("x")


class TestCalls:
    def test_round_trip(self, pair):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        stub = client.resolve(ref.stringify())
        assert stub.echo("abc") == "cba"

    def test_implementation_error_becomes_remote_error(self, pair):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        stub = client.resolve(ref)
        with pytest.raises(RemoteError, match="implementation exploded"):
            stub.boom()
        # The connection survives the error: next call still works.
        assert stub.echo("ok") == "ko"

    def test_method_not_found(self, pair):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        stub = Echo_stub(ref, client)
        call = stub._new_call("no_such_op")
        with pytest.raises(RemoteError, match="MethodNotFound"):
            stub._invoke(call)


class TestStubCache:
    def test_same_reference_yields_same_stub(self, pair):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        assert client.resolve(ref) is client.resolve(ref)
        assert client.stats["stub_hits"] >= 1

    def test_cache_disabled(self, registry):
        server = Orb(transport="inproc", types=registry).start()
        client = Orb(transport="inproc", types=registry, cache_stubs=False)
        try:
            ref = server.register(EchoImpl(), type_id=TYPE_ID)
            assert client.resolve(ref) is not client.resolve(ref)
        finally:
            client.stop()
            server.stop()

    def test_unknown_type_gets_generic_stub(self, pair, registry):
        _, client = pair
        from repro.heidirmi.objref import ObjectReference

        ref = ObjectReference("inproc", "h", 1, "1", "IDL:Unknown:1.0")
        stub = client.resolve(ref)
        assert type(stub) is HdStub


class TestSkeletonCache:
    def test_skeleton_created_lazily_and_once(self, pair):
        server, client = pair
        ref = server.register(EchoImpl(), type_id=TYPE_ID)
        assert server.stats["skeleton_created"] == 0  # lazy
        stub = client.resolve(ref)
        stub.echo("a")
        stub.echo("b")
        assert server.stats["skeleton_created"] == 1
        assert server.stats["skeleton_hits"] == 1


class TestTracing:
    def test_trace_events_cover_fig4_and_fig5(self, registry):
        events = []
        server = Orb(transport="inproc", types=registry,
                     trace=lambda name, detail: events.append(name)).start()
        client = Orb(transport="inproc", types=registry,
                     trace=lambda name, detail: events.append(name))
        try:
            ref = server.register(EchoImpl(), type_id=TYPE_ID)
            client.resolve(ref).echo("x")
        finally:
            client.stop()
            server.stop()
        # Client side (Fig. 4): stub → new Call → invoke → reply.
        for expected in ("orb:stub", "call:new", "call:invoke", "call:reply"):
            assert expected in events, expected
        # Server side (Fig. 5): accept → request → skeleton → dispatch.
        for expected in ("orb:accept", "orb:request", "orb:skeleton",
                         "orb:dispatch"):
            assert expected in events, expected


class TestLifecycle:
    def test_context_manager(self, registry):
        with Orb(transport="inproc", types=registry) as orb:
            assert orb.port > 0
        # After exit the listener is gone: connecting fails.
        from repro.heidirmi.errors import CommunicationError
        from repro.heidirmi.transport import get_transport

        with pytest.raises(CommunicationError):
            get_transport("inproc").connect("127.0.0.1", orb.port)

    def test_double_start_is_noop(self, registry):
        orb = Orb(transport="inproc", types=registry).start()
        port = orb.port
        orb.start()
        assert orb.port == port
        orb.stop()

    def test_stop_idempotent(self, registry):
        orb = Orb(transport="inproc", types=registry).start()
        orb.stop()
        orb.stop()

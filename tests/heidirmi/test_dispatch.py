"""Tests for the three dispatcher strategies (paper §2 optimization)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heidirmi.dispatch import (
    HashDispatcher,
    LinearDispatcher,
    NestedDispatcher,
    available_strategies,
    make_dispatcher,
)

ENTRIES = [(f"operation_{i}", f"handler_{i}") for i in range(10)]
ALL_CLASSES = (LinearDispatcher, NestedDispatcher, HashDispatcher)


class TestEachStrategy:
    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_finds_every_entry(self, cls):
        dispatcher = cls(ENTRIES)
        for name, handler in ENTRIES:
            assert dispatcher.lookup(name) == handler

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_miss_returns_none(self, cls):
        dispatcher = cls(ENTRIES)
        assert dispatcher.lookup("nonexistent") is None
        assert dispatcher.lookup("") is None

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_empty_dispatcher(self, cls):
        assert cls([]).lookup("x") is None

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_single_entry(self, cls):
        dispatcher = cls([("only", "h")])
        assert dispatcher.lookup("only") == "h"
        assert dispatcher.lookup("onlyx") is None
        assert dispatcher.lookup("onl") is None

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_operations_listing(self, cls):
        dispatcher = cls(ENTRIES)
        assert sorted(dispatcher.operations()) == sorted(n for n, _ in ENTRIES)


class TestNestedOrdering:
    def test_lookup_independent_of_insertion_order(self):
        shuffled = list(reversed(ENTRIES))
        dispatcher = NestedDispatcher(shuffled)
        for name, handler in ENTRIES:
            assert dispatcher.lookup(name) == handler

    def test_boundary_names(self):
        dispatcher = NestedDispatcher([("m", 1), ("a", 2), ("z", 3)])
        assert dispatcher.lookup("a") == 2
        assert dispatcher.lookup("z") == 3
        assert dispatcher.lookup("0") is None
        assert dispatcher.lookup("zz") is None


class TestFactory:
    def test_strategies_available(self):
        assert available_strategies() == ["hash", "linear", "nested"]

    @pytest.mark.parametrize("strategy,cls", [
        ("linear", LinearDispatcher),
        ("nested", NestedDispatcher),
        ("hash", HashDispatcher),
    ])
    def test_factory_builds_right_class(self, strategy, cls):
        assert isinstance(make_dispatcher(strategy, ENTRIES), cls)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown dispatch strategy"):
            make_dispatcher("bogus", ENTRIES)


@given(
    names=st.lists(
        st.from_regex(r"[a-z_][a-z0-9_]{0,24}", fullmatch=True),
        min_size=0, max_size=30, unique=True,
    ),
    probe=st.from_regex(r"[a-z_][a-z0-9_]{0,24}", fullmatch=True),
)
@settings(max_examples=150, deadline=None)
def test_strategies_agree(names, probe):
    """All three dispatch strategies are observationally equivalent."""
    entries = [(name, index) for index, name in enumerate(names)]
    results = {
        cls.strategy: cls(entries).lookup(probe) for cls in ALL_CLASSES
    }
    assert len(set(results.values())) == 1, results
    for name, index in entries:
        per_strategy = {cls(entries).lookup(name) for cls in ALL_CLASSES}
        assert per_strategy == {index}

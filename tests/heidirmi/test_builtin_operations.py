"""Tests for the built-in operations every skeleton serves.

``_is_a`` is the Heidi dynamic type check performed across the wire;
``_non_existent`` is the standard liveness probe.
"""

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import RemoteError
from repro.heidirmi.serialize import TypeRegistry

BASE_ID = "IDL:Builtin/Base:1.0"
DERIVED_ID = "IDL:Builtin/Derived:1.0"


class Base_stub(HdStub):
    _hd_type_id_ = BASE_ID


class Base_skel(HdSkel):
    _hd_type_id_ = BASE_ID
    _hd_operations_ = ()


class Derived_stub(Base_stub):
    _hd_type_id_ = DERIVED_ID
    _hd_parents_ = (BASE_ID,)


class Derived_skel(Base_skel):
    _hd_type_id_ = DERIVED_ID
    _hd_operations_ = ()
    _hd_parent_skels_ = (Base_skel,)


class Impl:
    pass


@pytest.fixture
def live():
    types = TypeRegistry()
    types.register_interface(BASE_ID, stub_class=Base_stub,
                             skeleton_class=Base_skel)
    types.register_interface(DERIVED_ID, stub_class=Derived_stub,
                             skeleton_class=Derived_skel,
                             parents=(BASE_ID,))
    server = Orb(transport="inproc", protocol="text", types=types).start()
    client = Orb(transport="inproc", protocol="text", types=types)
    ref = server.register(Impl(), type_id=DERIVED_ID)
    yield server, client, client.resolve(ref.stringify())
    client.stop()
    server.stop()


class TestRemoteIsA:
    def test_own_type(self, live):
        _, _, stub = live
        assert stub._remote_is_a(DERIVED_ID) is True

    def test_base_type(self, live):
        _, _, stub = live
        assert stub._remote_is_a(BASE_ID) is True

    def test_unrelated_type(self, live):
        _, _, stub = live
        assert stub._remote_is_a("IDL:Other:1.0") is False

    def test_agrees_with_local_check(self, live):
        _, _, stub = live
        for candidate in (DERIVED_ID, BASE_ID, "IDL:Other:1.0"):
            assert stub._remote_is_a(candidate) == stub._is_a(candidate)


class TestNonExistent:
    def test_live_object_reports_false(self, live):
        _, _, stub = live
        assert stub._non_existent() is False

    def test_unregistered_object_reports_true(self, live):
        server, client, stub = live
        server.unregister(stub._hd_ref.object_id)
        assert stub._non_existent() is True


class TestBuiltinsDoNotShadowUserOperations:
    def test_user_operation_named_like_builtin_wins(self):
        """A (perverse) user operation takes precedence over built-ins."""

        class Weird_skel(HdSkel):
            _hd_type_id_ = "IDL:Weird:1.0"
            _hd_operations_ = (("_is_a", "_op_custom"),)

            def _op_custom(self, call, reply):
                call.get_string()
                reply.put_boolean(True)  # always true, unlike the builtin

        types = TypeRegistry()
        types.register_interface("IDL:Weird:1.0", stub_class=HdStub,
                                 skeleton_class=Weird_skel)
        server = Orb(transport="inproc", protocol="text", types=types).start()
        client = Orb(transport="inproc", protocol="text", types=types)
        try:
            ref = server.register(Impl(), type_id="IDL:Weird:1.0")
            stub = client.resolve(ref.stringify())
            call = stub._new_call("_is_a")
            call.put_string("IDL:Anything:1.0")
            assert stub._invoke(call).get_boolean() is True
        finally:
            client.stop()
            server.stop()

    def test_unknown_operation_still_not_found(self, live):
        _, _, stub = live
        with pytest.raises(RemoteError, match="MethodNotFound"):
            stub._invoke(stub._new_call("_frobnicate"))

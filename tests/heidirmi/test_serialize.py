"""Tests for pass-by-value (incopy), type registry and object passing."""

import pytest

from repro.heidirmi.call import Call
from repro.heidirmi.errors import MarshalError
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.serialize import (
    HdSerializable,
    TypeRegistry,
    get_object,
    is_serializable,
    put_object,
)
from repro.heidirmi.textwire import TextMarshaller, TextUnmarshaller


class Token(HdSerializable):
    """A serializable value object used across these tests."""

    TYPE_ID = "IDL:Test/Token:1.0"

    def __init__(self, label="x"):
        self.label = label

    def _hd_type_id(self):
        return self.TYPE_ID

    def _hd_marshal(self, call, orb):
        call.put_string(self.label)

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        return cls(call.get_string())


class DuckToken:
    """Serializable by duck-typing only — no HdSerializable base."""

    def _hd_type_id(self):
        return "IDL:Test/Duck:1.0"

    def _hd_marshal(self, call, orb):
        call.put_long(7)

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        call.get_long()
        return cls()


def wire_roundtrip(obj, direction, registry, orb=None):
    out = Call("@tcp:h:1#1#IDL:X:1.0", "op", marshaller=TextMarshaller())
    put_object(out, obj, orb, direction=direction)
    incoming = Call(
        "@tcp:h:1#1#IDL:X:1.0", "op",
        unmarshaller=TextUnmarshaller.from_payload(out.payload()),
    )
    return get_object(incoming, orb, registry=registry)


class TestIsSerializable:
    def test_subclass_detected(self):
        assert is_serializable(Token())

    def test_duck_typed_detected(self):
        """Heidi's dynamic type check: interface support at run time,
        no base class required (legacy-friendliness)."""
        assert is_serializable(DuckToken())

    def test_plain_object_not_serializable(self):
        assert not is_serializable(object())

    def test_partial_implementation_not_serializable(self):
        class Half:
            def _hd_marshal(self, call, orb):
                pass

        assert not is_serializable(Half())


class TestPassByValue:
    def test_incopy_serializable_travels_by_value(self):
        registry = TypeRegistry()
        registry.register_value(Token.TYPE_ID, Token)
        copy = wire_roundtrip(Token("precious"), "incopy", registry)
        assert isinstance(copy, Token)
        assert copy.label == "precious"

    def test_copy_is_independent(self):
        registry = TypeRegistry()
        registry.register_value(Token.TYPE_ID, Token)
        original = Token("a")
        copy = wire_roundtrip(original, "incopy", registry)
        assert copy is not original

    def test_none_travels_as_nil(self):
        registry = TypeRegistry()
        assert wire_roundtrip(None, "in", registry) is None
        assert wire_roundtrip(None, "incopy", registry) is None

    def test_unregistered_value_type_raises_on_receive(self):
        registry = TypeRegistry()  # Token NOT registered here
        with pytest.raises(MarshalError, match="no serializable class"):
            wire_roundtrip(Token(), "incopy", registry)

    def test_in_direction_never_copies(self):
        """Only incopy passes by value; plain `in` passes by reference,
        which without an ORB must fail for a non-reference object."""
        registry = TypeRegistry()
        registry.register_value(Token.TYPE_ID, Token)
        with pytest.raises(MarshalError, match="without an ORB"):
            wire_roundtrip(Token(), "in", registry)

    def test_incopy_non_serializable_degrades_to_reference(self):
        """'object references passed incopy are copied ... if possible' —
        not possible here, so the reference path is taken."""
        registry = TypeRegistry()
        ref = ObjectReference("tcp", "h", 1, "9", "IDL:X:1.0")
        result = wire_roundtrip(ref, "incopy", registry, orb=None)
        # Without an ORB the receiver gets the parsed reference back.
        assert result == ref


class TestTypeRegistry:
    def test_register_and_lookup(self):
        registry = TypeRegistry()
        registry.register_interface("IDL:A:1.0", stub_class=int, skeleton_class=str)
        assert registry.stub_class("IDL:A:1.0") is int
        assert registry.skeleton_class("IDL:A:1.0") is str

    def test_unknown_lookups_return_none(self):
        registry = TypeRegistry()
        assert registry.stub_class("IDL:Nope:1.0") is None
        assert registry.value_class("IDL:Nope:1.0") is None
        assert registry.parents("IDL:Nope:1.0") == ()

    def test_is_a_reflexive(self):
        registry = TypeRegistry()
        assert registry.is_a("IDL:A:1.0", "IDL:A:1.0")

    def test_is_a_transitive(self):
        registry = TypeRegistry()
        registry.register_interface("IDL:B:1.0", parents=("IDL:A:1.0",))
        registry.register_interface("IDL:C:1.0", parents=("IDL:B:1.0",))
        assert registry.is_a("IDL:C:1.0", "IDL:A:1.0")
        assert not registry.is_a("IDL:A:1.0", "IDL:C:1.0")

    def test_is_a_multiple_parents(self):
        registry = TypeRegistry()
        registry.register_interface("IDL:C:1.0",
                                    parents=("IDL:A:1.0", "IDL:B:1.0"))
        assert registry.is_a("IDL:C:1.0", "IDL:B:1.0")

    def test_is_a_handles_cycles_gracefully(self):
        registry = TypeRegistry()
        registry.register_interface("IDL:A:1.0", parents=("IDL:B:1.0",))
        registry.register_interface("IDL:B:1.0", parents=("IDL:A:1.0",))
        assert not registry.is_a("IDL:A:1.0", "IDL:C:1.0")

    def test_known_types_sorted(self):
        registry = TypeRegistry()
        registry.register_interface("IDL:B:1.0")
        registry.register_interface("IDL:A:1.0")
        assert registry.known_types() == ["IDL:A:1.0", "IDL:B:1.0"]

"""Concurrency stress tests: one shared ORB, many invoking threads.

The multiplexed client path (one channel, correlation ids, a demux
reader) and the pipelined server path (read-ahead + worker pool) must
never lose or cross-wire a reply, and oneway ordering per connection
must survive both.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.call import Reply, STATUS_OK
from repro.heidirmi.communicator import ObjectCommunicator
from repro.heidirmi.errors import CommunicationError
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.serialize import TypeRegistry

TYPE_ID = "IDL:Stress/Worker:1.0"


class Worker_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def mark(self, token, delay_ms=0):
        call = self._new_call("mark")
        call.put_string(token)
        call.put_long(delay_ms)
        return self._invoke(call).get_string()

    def mark_async(self, token, delay_ms=0):
        call = self._new_call("mark")
        call.put_string(token)
        call.put_long(delay_ms)
        return self._hd_orb.invoke_async(self._hd_ref, call)

    def log(self, token):
        call = self._new_call("log", oneway=True)
        call.put_string(token)
        self._invoke(call)


class Worker_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("mark", "_op_mark"), ("log", "_op_log"))

    def _op_mark(self, call, reply):
        reply.put_string(self.impl.mark(call.get_string(), call.get_long()))

    def _op_log(self, call, reply):
        self.impl.log(call.get_string())


class WorkerImpl:
    def __init__(self):
        self.logged = []
        self._log_lock = threading.Lock()

    def mark(self, token, delay_ms):
        if delay_ms:
            time.sleep(delay_ms / 1000.0)
        return "ack:" + token

    def log(self, token):
        with self._log_lock:
            self.logged.append(token)


def registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Worker_stub,
                             skeleton_class=Worker_skel)
    return types


def run_pair(transport, protocol, multiplex, pipeline_workers=0,
             batch_oneways=False):
    types = registry()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=multiplex, batch_oneways=batch_oneways)
    impl = WorkerImpl()
    stub = client.resolve(server.register(impl, type_id=TYPE_ID).stringify())
    return server, client, stub, impl


def hammer(stub, n_threads, calls_per_thread):
    """Each thread checks every reply carries its own token back."""
    errors = []

    def body(thread_index):
        try:
            for call_index in range(calls_per_thread):
                token = f"t{thread_index}c{call_index}"
                result = stub.mark(token)
                if result != "ack:" + token:
                    errors.append(f"cross-wired: sent {token}, got {result}")
        except Exception as exc:  # noqa: BLE001 - report into the test
            errors.append(f"thread {thread_index}: {exc!r}")

    threads = [threading.Thread(target=body, args=(index,))
               for index in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return errors


MATRIX = [
    ("inproc", "text", False, 0),
    ("inproc", "text2", False, 0),
    ("inproc", "text2", True, 0),
    ("inproc", "text2", True, 4),
    ("inproc", "giop", True, 4),
    ("tcp", "text", False, 0),
    ("tcp", "text2", True, 4),
]


@pytest.mark.parametrize("transport,protocol,multiplex,workers", MATRIX)
def test_no_lost_or_crosswired_replies(transport, protocol, multiplex, workers):
    server, client, stub, _ = run_pair(transport, protocol, multiplex,
                                       pipeline_workers=workers)
    try:
        errors = hammer(stub, n_threads=8, calls_per_thread=25)
        assert not errors, errors[:5]
    finally:
        client.stop()
        server.stop()


@pytest.mark.parametrize("multiplex,workers", [(True, 4), (True, 0)])
def test_out_of_order_completion_correlates(multiplex, workers):
    """A slow call must not steal the reply of fast calls behind it."""
    server, client, stub, _ = run_pair("inproc", "text2", multiplex,
                                       pipeline_workers=workers)
    try:
        slow = stub.mark_async("slow", delay_ms=150)
        fast = [stub.mark_async(f"fast{index}") for index in range(10)]
        for index, future in enumerate(fast):
            reply = future.result(timeout=10)
            assert reply.get_string() == f"ack:fast{index}"
        assert slow.result(timeout=10).get_string() == "ack:slow"
        if workers:
            # With read-ahead workers the fast replies genuinely finish
            # while the slow call is still sleeping.
            assert fast[0].done()
    finally:
        client.stop()
        server.stop()


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
@pytest.mark.parametrize("protocol,multiplex", [
    ("text", False), ("text2", True), ("giop", True),
])
def test_oneway_ordering_preserved_per_connection(transport, protocol,
                                                  multiplex):
    server, client, stub, impl = run_pair(
        transport, protocol, multiplex, pipeline_workers=4,
        batch_oneways=True,
    )
    try:
        for index in range(60):
            stub.log(f"n{index}")
        # A two-way call flushes the batch and, processed after the
        # oneways on the same connection, fences them server-side.
        stub.mark("fence")
        assert impl.logged == [f"n{index}" for index in range(60)]
    finally:
        client.stop()
        server.stop()


def test_multiplexed_clients_share_one_connection():
    server, client, stub, _ = run_pair("inproc", "text2", True)
    try:
        errors = hammer(stub, n_threads=8, calls_per_thread=10)
        assert not errors, errors[:5]
        assert client.connections.stats["opened"] == 1
    finally:
        client.stop()
        server.stop()


def test_exclusive_clients_open_per_concurrent_caller():
    server, client, stub, _ = run_pair("inproc", "text2", False)
    try:
        barrier = threading.Barrier(4)
        results = []

        def body(index):
            barrier.wait()
            results.append(stub.mark(f"x{index}", delay_ms=50))

        threads = [threading.Thread(target=body, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 4
        assert client.connections.stats["opened"] >= 2
    finally:
        client.stop()
        server.stop()


def test_bulk_ending_in_oneway_flushes_coalesced_reply():
    """A reply coalesced behind a trailing oneway must still go out.

    On a serial server the two-way's reply is withheld while the oneway
    sits in the receive buffer, but the oneway itself produces no
    reply() send — the sink must be flushed before the server blocks
    for the next request, or the client waits forever.
    """
    server, client, stub, _ = run_pair("inproc", "text2", True)
    try:
        ref = stub._hd_ref
        two_way = client.create_call(ref, "mark")
        two_way.put_string("head")
        two_way.put_long(0)
        oneway = client.create_call(ref, "log", oneway=True)
        oneway.put_string("tail")
        done = []

        def body():
            done.append(client.invoke_bulk(ref, [two_way, oneway]))

        worker = threading.Thread(target=body, daemon=True)
        worker.start()
        worker.join(timeout=15)
        assert not worker.is_alive(), (
            "invoke_bulk hung: reply coalesced behind a trailing "
            "oneway was never flushed"
        )
        replies = done[0]
        assert replies[0].get_string() == "ack:head"
        assert replies[1] is None
    finally:
        client.stop()
        server.stop()


def test_demux_death_closes_channel_and_cache_reopens():
    """A dead reader must mark the communicator closed, not strand it.

    The multiplexed cache only replaces the shared communicator once it
    reads as closed; if the demux loop exits without closing the
    channel, every later call registers a future no thread completes.
    """
    server, client, stub, _ = run_pair("inproc", "text2", True)
    try:
        assert stub.mark("warm") == "ack:warm"
        shared = next(iter(client.connections._shared.values()))
        with server._lock:
            active = list(server._active)
        for communicator in active:
            communicator.close()
        deadline = time.time() + 10
        while not shared.closed and time.time() < deadline:
            time.sleep(0.01)
        assert shared.closed, (
            "demux reader exited without closing the channel; the cache "
            "would keep handing out a communicator nobody reads for"
        )
        assert stub.mark("again") == "ack:again"
        assert client.connections.stats["opened"] == 2
    finally:
        client.stop()
        server.stop()


def test_reader_died_mid_burst_fails_all_pending_without_deadlock():
    """Garbage on the reply stream mid-burst kills the demux reader:
    every call still pending must fail with kind="reader-died" (no
    future may hang), and the next call must transparently reopen.
    """
    server, client, stub, _ = run_pair("inproc", "text2", True)
    try:
        burst = [stub.mark_async(f"b{index}", delay_ms=400)
                 for index in range(6)]
        # Wait until the burst is in flight server-side, then poison
        # the client's reply stream from the server end of the wire.
        deadline = time.time() + 10
        while not server._active and time.time() < deadline:
            time.sleep(0.01)
        with server._lock:
            active = list(server._active)
        assert active, "server never saw the burst"
        for communicator in active:
            communicator.channel.send(b"!!garbage mid burst!!\n")
        kinds = []
        for future in burst:
            with pytest.raises(CommunicationError) as excinfo:
                future.result(timeout=15)
            kinds.append(excinfo.value.kind)
        assert kinds == ["reader-died"] * len(burst), kinds
        # The shared channel is dead; the cache must hand out a fresh
        # one rather than deadlock on the corpse.
        assert stub.mark("after") == "ack:after"
        assert client.connections.stats["opened"] == 2
    finally:
        client.stop()
        server.stop()


def test_uncorrelatable_error_reply_fails_pending():
    """RET2 0 ERR (a request the server could not parse) must surface.

    The reserved id 0 matches no waiter by construction; if the demux
    merely counted it as orphaned, the future for the request the
    server choked on would hang forever.
    """
    server, client, stub, _ = run_pair("inproc", "text2", True)
    try:
        shared = client.connections.acquire(stub._hd_ref.bootstrap)
        future = Future()
        with shared._pending_lock:
            shared._pending[999] = future
        shared._ensure_reader()
        # Simulate a buggy peer layer: an id the server cannot parse
        # back out, so its error reply cannot name the request.
        shared.channel.send(b"CALL2 notanumber target op\n")
        with pytest.raises(CommunicationError, match="uncorrelatable"):
            future.result(timeout=15)
    finally:
        client.stop()
        server.stop()


class _RecordingChannel:
    closed = False
    peer = "fake"

    def __init__(self):
        self.sends = []

    def send(self, data):
        self.sends.append(bytes(data))


def _ok_reply(protocol, request_id):
    return Reply(status=STATUS_OK, marshaller=protocol.new_marshaller(),
                 request_id=request_id)


def test_reply_coalescing_is_bounded_by_call_count():
    protocol = get_protocol("text2")
    channel = _RecordingChannel()
    communicator = ObjectCommunicator(channel, protocol)
    for index in range(communicator._reply_max_calls):
        communicator.buffer_reply(_ok_reply(protocol, index + 1))
    assert channel.sends, "reply sink hit the call cap without flushing"
    assert not communicator._reply_sink.data


def test_reply_coalescing_is_bounded_by_bytes():
    protocol = get_protocol("text2")
    channel = _RecordingChannel()
    communicator = ObjectCommunicator(channel, protocol)
    reply = _ok_reply(protocol, 1)
    reply.put_string("x" * (communicator._reply_max_bytes + 1))
    communicator.buffer_reply(reply)
    assert len(channel.sends) == 1
    assert not communicator._reply_sink.data


def test_stats_counters_survive_concurrency():
    """The stats dict is lock-guarded; totals must add up exactly."""
    server, client, stub, _ = run_pair("inproc", "text2", True,
                                       pipeline_workers=4)
    try:
        n_threads, per_thread = 8, 25
        errors = hammer(stub, n_threads, per_thread)
        assert not errors, errors[:5]
        assert client.stats["calls"] == n_threads * per_thread
        assert server.stats["requests"] == n_threads * per_thread
    finally:
        client.stop()
        server.stop()

"""Tests for the self-describing ``any`` values."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heidirmi.anyval import get_any, put_any, tag_of
from repro.heidirmi.call import Call
from repro.heidirmi.errors import MarshalError
from repro.heidirmi.textwire import TextMarshaller, TextUnmarshaller
from repro.giop.iiop import CdrMarshaller, CdrUnmarshaller
from repro.giop.cdr import CdrDecoder


def text_roundtrip(value):
    call = Call("@tcp:h:1#1#IDL:X:1.0", "op", marshaller=TextMarshaller())
    put_any(call, value)
    incoming = Call(
        "@tcp:h:1#1#IDL:X:1.0", "op",
        unmarshaller=TextUnmarshaller.from_payload(call.payload()),
    )
    return get_any(incoming)


def cdr_roundtrip(value):
    marshaller = CdrMarshaller()
    call = Call("@tcp:h:1#1#IDL:X:1.0", "op", marshaller=marshaller)
    put_any(call, value)
    decoder = CdrDecoder(marshaller.payload())
    incoming = Call("@tcp:h:1#1#IDL:X:1.0", "op",
                    unmarshaller=CdrUnmarshaller(decoder))
    return get_any(incoming)


class TestTagging:
    @pytest.mark.parametrize("value,tag", [
        (None, "null"),
        (True, "boolean"),
        (0, "long"),
        (2**31, "longlong"),
        (-(2**33), "longlong"),
        (1.5, "double"),
        ("x", "string"),
        ([1, 2], "sequence"),
        ((1, 2), "sequence"),
    ])
    def test_tag_selection(self, value, tag):
        assert tag_of(value) == tag

    def test_bool_is_not_long(self):
        """bool is an int subclass; tagging must check bool first."""
        assert tag_of(True) == "boolean"
        assert text_roundtrip(True) is True
        assert text_roundtrip(False) is False

    def test_oversized_int_rejected(self):
        with pytest.raises(MarshalError):
            tag_of(2**64)

    def test_unsupported_value_rejected(self):
        with pytest.raises(MarshalError, match="no any mapping"):
            tag_of(object())


class TestRoundTrips:
    VALUES = [None, True, False, 0, -1, 2**31 - 1, 2**40, 3.25, "",
              "hello world", [], [1, "two", 3.0], [[None, [True]]]]

    @pytest.mark.parametrize("value", VALUES,
                             ids=[repr(v)[:20] for v in VALUES])
    def test_text(self, value):
        assert text_roundtrip(value) == value

    @pytest.mark.parametrize("value", VALUES,
                             ids=[repr(v)[:20] for v in VALUES])
    def test_cdr(self, value):
        assert cdr_roundtrip(value) == value

    def test_tuple_comes_back_as_list(self):
        assert text_roundtrip((1, 2)) == [1, 2]

    def test_deep_nesting_rejected(self):
        value = []
        for _ in range(40):
            value = [value]
        call = Call("@tcp:h:1#1#IDL:X:1.0", "op", marshaller=TextMarshaller())
        with pytest.raises(MarshalError, match="nesting too deep"):
            put_any(call, value)


ANY_VALUES = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(_min := -(2**63), 2**63 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.lists(children, max_size=4),
    max_leaves=15,
)


@given(ANY_VALUES)
@settings(max_examples=100, deadline=None)
def test_any_roundtrip_property_text(value):
    assert text_roundtrip(value) == value


@given(ANY_VALUES)
@settings(max_examples=100, deadline=None)
def test_any_roundtrip_property_cdr(value):
    assert cdr_roundtrip(value) == value

"""Golden tests: one minimal bad IDL input per diagnostic code."""

import os

import pytest

from repro.idl.errors import IdlSemanticError
from repro.lint.formats import render_text
from repro.lint.idl_rules import lint_idl_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

IDL_FIXTURES = sorted(
    name for name in os.listdir(FIXTURES) if name.endswith(".idl")
)


def _lint_fixture(name):
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        source = handle.read()
    # Lint under the basename so the goldens are path-independent.
    return lint_idl_source(source, filename=name)


@pytest.mark.parametrize("name", IDL_FIXTURES)
def test_idl_fixture_matches_golden(name):
    _, diagnostics = _lint_fixture(name)
    with open(os.path.join(FIXTURES, name + ".expected"), "r",
              encoding="utf-8") as handle:
        expected = handle.read()
    assert render_text(diagnostics) == expected


@pytest.mark.parametrize("name", IDL_FIXTURES)
def test_idl_fixture_triggers_its_own_code(name):
    code = name.split(".")[0]
    _, diagnostics = _lint_fixture(name)
    assert code in {d.code for d in diagnostics}


def test_collect_many_no_fail_fast():
    """One run over compounded bad IDL reports every problem at once."""
    source = """\
    const short tooBig = 70000;
    typedef sequence<long> NeverUsed;
    interface Monitor { void f(); };
    interface monitor { Missing g(); };
    interface Ghost;
    struct Loop { Loop next; };
    interface Svc {
        oneway long bad();
        void dup(in long a, in long a);
    };
    """
    _, diagnostics = lint_idl_source(source, filename="many.idl")
    codes = {d.code for d in diagnostics}
    assert {"IDL002", "IDL005", "IDL006", "IDL007", "IDL010", "IDL011",
            "IDL016"} <= codes
    # Findings carry real positions, not a shared fallback anchor.
    lines = {d.span.line for d in diagnostics}
    assert len(lines) > 3


def test_default_parse_still_raises():
    """Without a collecting reporter, semantic errors fail fast as before."""
    from repro.idl import parse

    with pytest.raises(IdlSemanticError):
        parse("interface A { NoSuchType f(); };")


def test_clean_idl_produces_no_findings():
    source = """\
    interface Account {
        readonly attribute long balance;
        void deposit(in long amount);
    };
    """
    spec, diagnostics = lint_idl_source(source, filename="clean.idl")
    assert spec is not None
    assert diagnostics == []

"""Golden tests for the template static analyzer (TPL0xx)."""

import os

import pytest

from repro.lint.formats import render_text
from repro.lint.template_rules import lint_template_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

TMPL_FIXTURES = sorted(
    name for name in os.listdir(FIXTURES) if name.endswith(".tmpl")
)


def _lint_fixture(name):
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_template_source(source, name=name, loader=lambda n: "")


@pytest.mark.parametrize("name", TMPL_FIXTURES)
def test_template_fixture_matches_golden(name):
    result = _lint_fixture(name)
    with open(os.path.join(FIXTURES, name + ".expected"), "r",
              encoding="utf-8") as handle:
        expected = handle.read()
    assert render_text(result.diagnostics) == expected


@pytest.mark.parametrize("name", TMPL_FIXTURES)
def test_template_fixture_triggers_its_own_code(name):
    code = name.split(".")[0]
    result = _lint_fixture(name)
    assert code in {d.code for d in result.diagnostics}


def test_clean_template_is_strict_safe():
    source = (
        "@foreach topoInterfaceList\n"
        "class ${interfaceName};  // #${index} of ${count}\n"
        "@end\n"
    )
    result = lint_template_source(source, name="clean.tmpl")
    assert result.diagnostics == []
    assert result.strict_safe


def test_optional_variable_defeats_strict_safety():
    """${Parent} (an optional Interface prop) is legal but strict-unsafe."""
    source = (
        "@foreach topoInterfaceList\n"
        "class ${interfaceName} : ${Parent} {};\n"
        "@end\n"
    )
    result = lint_template_source(source, name="parent.tmpl")
    assert result.diagnostics == []
    assert not result.strict_safe
    assert any(name == "Parent" for name, _line in result.strict_unsafe_uses)


def test_mapped_variable_is_always_defined():
    """-map synthesizes values, so mapped vars never defeat strictness."""
    source = (
        "@foreach topoInterfaceList -map flat Flatten\n"
        "${flat}\n"
        "@end\n"
    )
    result = lint_template_source(source, name="mapped.tmpl")
    assert result.diagnostics == []
    assert result.strict_safe
    assert result.used_maps == {"Flatten"}


def test_nested_context_tracks_kinds():
    """Inside @foreach paramList the analyzer knows Param vocabulary."""
    good = (
        "@foreach allOperationList\n"
        "@foreach paramList\n"
        "${type} ${paramName}\n"
        "@end\n"
        "@end\n"
    )
    result = lint_template_source(good, name="params.tmpl")
    assert result.diagnostics == []

    # interfaceName stays reachable (lookup walks EST ancestors), but a
    # variable from an unrelated kind (Case lives under Union) is not.
    good_ancestor = good.replace("${paramName}", "${interfaceName}")
    result = lint_template_source(good_ancestor, name="params-anc.tmpl")
    assert result.diagnostics == []

    bad = good.replace("${paramName}", "${caseName}")
    result = lint_template_source(bad, name="params-bad.tmpl")
    assert {d.code for d in result.diagnostics} == {"TPL001"}

"""ARCH001/ARCH002: layering and emission contracts for the wire core."""

import os

from repro.lint.arch_rules import (
    lint_emission_paths,
    lint_emission_source,
    lint_wire_layering,
    lint_wire_source,
)
from repro.lint.cli import main
from repro.lint.formats import render_text

ARCH_FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "arch")


class TestWireSource:
    def test_clean_module(self):
        assert lint_wire_source("import struct\nx = 1\n") == []

    def test_import_socket(self):
        findings = lint_wire_source("import socket\n", filename="text.py")
        assert [d.code for d in findings] == ["ARCH001"]
        assert findings[0].span.line == 1
        assert "'socket'" in findings[0].message

    def test_import_asyncio_submodule(self):
        findings = lint_wire_source("import asyncio.streams\n")
        assert [d.code for d in findings] == ["ARCH001"]

    def test_from_import_selectors(self):
        findings = lint_wire_source(
            "from selectors import DefaultSelector\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_transport_import_banned(self):
        findings = lint_wire_source(
            "from repro.heidirmi.transport import Channel\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_transport_via_package_from_import(self):
        # ``from repro.heidirmi import transport`` names the banned
        # module through the alias list, not the module part.
        findings = lint_wire_source(
            "from repro.heidirmi import transport\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_function_local_import_caught(self):
        findings = lint_wire_source(
            "def sneak():\n    import socket\n    return socket\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]
        assert findings[0].span.line == 2

    def test_other_heidirmi_imports_allowed(self):
        source = (
            "from repro.heidirmi.errors import ProtocolError\n"
            "from repro.heidirmi.call import Call\n"
        )
        assert lint_wire_source(source) == []


class TestWireLayering:
    def test_shipped_wire_package_is_clean(self):
        """The repo's own sans-I/O core must satisfy its own contract."""
        assert lint_wire_layering() == []

    def test_violating_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text("import socket\n")
        (tmp_path / "good.py").write_text("import struct\n")
        (tmp_path / "aio.py").write_text("import asyncio\nimport socket\n")
        findings = lint_wire_layering(str(tmp_path))
        # Only bad.py is reported: aio.py is the sanctioned front-end.
        assert [d.code for d in findings] == ["ARCH001"]
        assert os.path.basename(findings[0].span.file) == "bad.py"


class TestEmissionSource:
    def test_bytes_join_flagged(self):
        findings = lint_emission_source(
            'def f(parts):\n    return b"".join(parts)\n'
        )
        assert [d.code for d in findings] == ["ARCH002"]
        assert findings[0].span.line == 2

    def test_bytes_literal_concat_flagged(self):
        findings = lint_emission_source(
            'def f(line):\n    return line + b"\\n"\n'
        )
        assert [d.code for d in findings] == ["ARCH002"]

    def test_encoded_concat_flagged(self):
        # encode-then-concatenate, the classic pre-BufferPlan shape.
        for accessor in ("encode()", "data()", "to_bytes()", "tobytes()",
                         "payload()"):
            findings = lint_emission_source(
                f"def f(x, tail):\n    return x.{accessor} + tail\n"
            )
            assert [d.code for d in findings] == ["ARCH002"], accessor

    def test_augmented_append_is_sanctioned(self):
        # += into a pooled bytearray segment is how owned material is
        # built; the rule must not flag it.
        source = (
            "def f(segment, body):\n"
            '    segment += b"\\x00" * 12\n'
            "    segment += body\n"
            "    return segment\n"
        )
        assert lint_emission_source(source) == []

    def test_str_join_not_flagged(self):
        # Text tokens stay str until the single encode into a segment.
        assert lint_emission_source(
            'def f(pieces):\n    return " ".join(pieces)\n'
        ) == []

    def test_plain_name_concat_not_flagged(self):
        # Adding two opaque names is not provably frame assembly.
        assert lint_emission_source("def f(a, b):\n    return a + b\n") == []


class TestEmissionFixtures:
    def _lint_fixture(self, name):
        with open(os.path.join(ARCH_FIXTURES, name), "r",
                  encoding="utf-8") as handle:
            source = handle.read()
        return lint_emission_source(source, filename=name)

    def test_seeded_fixture_matches_golden(self):
        diagnostics = self._lint_fixture("ARCH002.py")
        with open(os.path.join(ARCH_FIXTURES, "ARCH002.py.expected"), "r",
                  encoding="utf-8") as handle:
            expected = handle.read()
        assert render_text(diagnostics) == expected

    def test_clean_twin_has_zero_findings(self):
        assert self._lint_fixture("ARCH002_clean.py") == []


class TestEmissionPaths:
    def test_shipped_hot_paths_are_clean(self):
        """The refactored wire/marshal core satisfies its own contract."""
        assert lint_emission_paths() == []

    def test_violating_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text('X = b"a" + b"b"\n')
        (tmp_path / "good.py").write_text("import struct\n")
        (tmp_path / "bufferplan.py").write_text(
            'JOINED = b"".join([b"a", b"b"])\n'
        )
        (tmp_path / "aio.py").write_text('Y = b"x" + b"y"\n')
        findings = lint_emission_paths(
            str(tmp_path), marshal_dir=str(tmp_path)
        )
        # Only bad.py is reported: bufferplan owns the sanctioned
        # join, and aio is outside the sans-I/O hot path.
        assert [d.code for d in findings] == ["ARCH002"]
        assert os.path.basename(findings[0].span.file) == "bad.py"


class TestCli:
    def test_arch_flag_passes_on_clean_repo(self, capsys):
        assert main(["--arch"]) == 0
        # With --arch alone the default lint-every-pack pass is skipped.
        out = capsys.readouterr().out
        assert "ARCH001" not in out
        assert "ARCH002" not in out

    def test_arch_flag_composes_with_json_format(self, capsys):
        assert main(["--arch", "--format", "json"]) == 0

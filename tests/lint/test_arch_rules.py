"""ARCH001: the sans-I/O layering contract for repro.wire."""

import os

from repro.lint.arch_rules import (
    lint_wire_layering,
    lint_wire_source,
)
from repro.lint.cli import main


class TestWireSource:
    def test_clean_module(self):
        assert lint_wire_source("import struct\nx = 1\n") == []

    def test_import_socket(self):
        findings = lint_wire_source("import socket\n", filename="text.py")
        assert [d.code for d in findings] == ["ARCH001"]
        assert findings[0].span.line == 1
        assert "'socket'" in findings[0].message

    def test_import_asyncio_submodule(self):
        findings = lint_wire_source("import asyncio.streams\n")
        assert [d.code for d in findings] == ["ARCH001"]

    def test_from_import_selectors(self):
        findings = lint_wire_source(
            "from selectors import DefaultSelector\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_transport_import_banned(self):
        findings = lint_wire_source(
            "from repro.heidirmi.transport import Channel\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_transport_via_package_from_import(self):
        # ``from repro.heidirmi import transport`` names the banned
        # module through the alias list, not the module part.
        findings = lint_wire_source(
            "from repro.heidirmi import transport\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]

    def test_function_local_import_caught(self):
        findings = lint_wire_source(
            "def sneak():\n    import socket\n    return socket\n"
        )
        assert [d.code for d in findings] == ["ARCH001"]
        assert findings[0].span.line == 2

    def test_other_heidirmi_imports_allowed(self):
        source = (
            "from repro.heidirmi.errors import ProtocolError\n"
            "from repro.heidirmi.call import Call\n"
        )
        assert lint_wire_source(source) == []


class TestWireLayering:
    def test_shipped_wire_package_is_clean(self):
        """The repo's own sans-I/O core must satisfy its own contract."""
        assert lint_wire_layering() == []

    def test_violating_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text("import socket\n")
        (tmp_path / "good.py").write_text("import struct\n")
        (tmp_path / "aio.py").write_text("import asyncio\nimport socket\n")
        findings = lint_wire_layering(str(tmp_path))
        # Only bad.py is reported: aio.py is the sanctioned front-end.
        assert [d.code for d in findings] == ["ARCH001"]
        assert os.path.basename(findings[0].span.file) == "bad.py"


class TestCli:
    def test_arch_flag_passes_on_clean_repo(self, capsys):
        assert main(["--arch"]) == 0
        # With --arch alone the default lint-every-pack pass is skipped.
        out = capsys.readouterr().out
        assert "ARCH001" not in out

    def test_arch_flag_composes_with_json_format(self, capsys):
        assert main(["--arch", "--format", "json"]) == 0

"""Golden tests for the flow pass: seeded CON0xx races and clean twins."""

import json
import os

import pytest

import repro
from repro.lint.cli import main
from repro.lint.flow import (
    apply_baseline,
    lint_concurrency_paths,
    lint_concurrency_sources,
    load_baseline,
    render_baseline,
)
from repro.lint.formats import render_text

FLOW_FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "flow")

SEEDED = sorted(
    name for name in os.listdir(FLOW_FIXTURES)
    if name.endswith(".py") and not name.endswith("_clean.py")
)
CLEAN = sorted(
    name for name in os.listdir(FLOW_FIXTURES) if name.endswith("_clean.py")
)


def _lint_fixture(name):
    with open(os.path.join(FLOW_FIXTURES, name), "r",
              encoding="utf-8") as handle:
        source = handle.read()
    # Lint under the basename so the goldens are path-independent.
    return lint_concurrency_sources([(name, source)])


@pytest.mark.parametrize("name", SEEDED)
def test_seeded_fixture_matches_golden(name):
    diagnostics = _lint_fixture(name)
    with open(os.path.join(FLOW_FIXTURES, name + ".expected"), "r",
              encoding="utf-8") as handle:
        expected = handle.read()
    assert render_text(diagnostics) == expected


@pytest.mark.parametrize("name", SEEDED)
def test_seeded_fixture_triggers_its_own_code(name):
    code = name.split(".")[0].split("_")[0]
    diagnostics = _lint_fixture(name)
    assert code in {d.code for d in diagnostics}


@pytest.mark.parametrize("name", CLEAN)
def test_clean_twin_has_zero_findings(name):
    """The false-positive gate: every clean twin must lint empty."""
    assert _lint_fixture(name) == []


def test_flow_pass_is_deterministic():
    """Two runs over the same tree render byte-identical output."""
    first = render_text(lint_concurrency_paths([FLOW_FIXTURES]))
    second = render_text(lint_concurrency_paths([FLOW_FIXTURES]))
    assert first == second
    assert "CON001" in first and "CON005" in first


def test_repo_source_lints_clean():
    """Acceptance: the repo's own runtime passes its own analyzer."""
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    assert lint_concurrency_paths([package_dir]) == []


# -- CLI composition ---------------------------------------------------------


def _json_diagnostics(capsys, argv):
    main(argv)
    return json.loads(capsys.readouterr().out)["diagnostics"]


def test_arch_and_concurrency_compose(capsys):
    """One --arch --concurrency invocation reports exactly the union of
    the two passes run separately."""
    combined = _json_diagnostics(
        capsys, ["--arch", "--concurrency", "--format", "json", FLOW_FIXTURES]
    )
    arch_only = _json_diagnostics(capsys, ["--arch", "--format", "json"])
    flow_only = _json_diagnostics(
        capsys, ["--concurrency", "--format", "json", FLOW_FIXTURES]
    )
    key = lambda d: (d["file"], d["line"], d["column"], d["code"])
    assert sorted(combined, key=key) == sorted(arch_only + flow_only, key=key)


def test_cli_concurrency_exits_nonzero_on_seeded_errors(capsys):
    assert main(["--concurrency", FLOW_FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "CON001" in out and "CON003" in out


# -- baseline workflow -------------------------------------------------------


def test_write_baseline_then_suppress(tmp_path, capsys):
    """--write-baseline emits a skeleton; once justified, the same
    findings are suppressed and the gate passes."""
    baseline = tmp_path / "baseline.json"
    target = os.path.join(FLOW_FIXTURES, "CON005.py")
    assert main(["--concurrency", target,
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()

    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["findings"], "skeleton should carry the seeded finding"
    for entry in payload["findings"]:
        entry["justification"] = "legacy kind kept for fixture purposes"
    baseline.write_text(json.dumps(payload), encoding="utf-8")

    assert main(["--concurrency", target, "--baseline", str(baseline)]) == 0
    assert "CON005" not in capsys.readouterr().out


def test_stale_baseline_entry_becomes_warning(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "findings": [{
            "code": "CON001",
            "file": "no_such_module.py",
            "message": "coroutine gone makes blocking call time.sleep",
            "justification": "left over from a deleted module",
        }],
    }), encoding="utf-8")
    clean = os.path.join(FLOW_FIXTURES, "CON001_clean.py")
    assert main(["--concurrency", clean, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "CON000" in out and "stale" in out


def test_baseline_requires_justifications(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "findings": [{
            "code": "CON005", "file": "CON005.py",
            "message": "whatever", "justification": "",
        }],
    }), encoding="utf-8")
    target = os.path.join(FLOW_FIXTURES, "CON005.py")
    assert main(["--concurrency", target, "--baseline", str(baseline)]) == 2
    assert "justification" in capsys.readouterr().err


def test_apply_baseline_roundtrip(tmp_path):
    """Library-level: render → load → apply suppresses everything."""
    findings = _lint_fixture("CON002.py")
    baseline = tmp_path / "baseline.json"
    text = render_baseline(findings).replace(
        "TODO: explain why this finding is acceptable",
        "documented historical lock order",
    )
    baseline.write_text(text, encoding="utf-8")
    entries = load_baseline(str(baseline))
    kept, suppressed, stale = apply_baseline(findings, entries, str(baseline))
    assert kept == []
    assert stale == []
    assert len(suppressed) == len(findings)

"""Clean twin of CON003: every deep access holds the declared lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: self._lock
        self._pending = []  # guarded-by: self._lock

    def bump(self):
        with self._lock:
            self._hits = self._hits + 1

    def _drain_unlocked(self):  # holds-lock: self._lock
        self._pending = []

    def drain(self):
        with self._lock:
            self._drain_unlocked()

    def approximate_depth(self):
        return len(self._pending)  # race-ok: approximate metric snapshot

"""Seeded CON002: two locks acquired in opposite orders."""

import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass

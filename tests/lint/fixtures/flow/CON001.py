"""Seeded CON001: blocking calls reachable from coroutine code."""

import threading
import time

_LOCK = threading.Lock()


def _backoff():
    time.sleep(0.05)


async def poll_direct():
    time.sleep(0.1)


async def poll_transitive():
    _backoff()


async def guarded_update():
    _LOCK.acquire()
    try:
        pass
    finally:
        _LOCK.release()

"""Clean twin of CON001: coroutine code awaits instead of blocking."""

import asyncio
import threading
import time

_LOCK = threading.Lock()


def backoff_blocking():
    # Blocking in plain sync code is fine.
    time.sleep(0.05)


def guarded_update():
    with _LOCK:
        pass


async def poll():
    await asyncio.sleep(0.1)

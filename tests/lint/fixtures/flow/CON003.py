"""Seeded CON003: guarded field touched without its declared lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: self._lock
        self._pending = []  # guarded-by: self._lock

    def bump(self):
        self._hits = self._hits + 1

    def bump_locked(self):
        with self._lock:
            self._hits = self._hits + 1

    def _drain_unlocked(self):  # holds-lock: self._lock
        self._pending = []

    def bad_drain(self):
        self._drain_unlocked()

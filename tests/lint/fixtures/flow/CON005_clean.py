"""Clean twin of CON005: only documented error kinds are raised."""

from repro.heidirmi.errors import CommunicationError


def fail():
    raise CommunicationError("peer went away", kind="peer-closed")

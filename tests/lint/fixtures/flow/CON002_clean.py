"""Clean twin of CON002: both paths take the locks in one order."""

import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass

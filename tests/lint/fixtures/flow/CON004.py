"""Seeded CON004: non-daemon worker thread is never joined."""

import threading


def start_worker():
    worker = threading.Thread(target=print)
    worker.start()

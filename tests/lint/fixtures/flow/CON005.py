"""Seeded CON005: CommunicationError kind outside the vocabulary."""

from repro.heidirmi.errors import CommunicationError


def fail():
    raise CommunicationError("socket burst", kind="socket-burst")

"""Clean twin of CON004: threads are daemonized or joined."""

import threading


def run_worker():
    worker = threading.Thread(target=print)
    worker.start()
    worker.join()


def start_ticker():
    ticker = threading.Thread(target=print, daemon=True)
    ticker.start()

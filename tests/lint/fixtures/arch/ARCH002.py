"""Seeded ARCH002 violations: frames glued together by copying bytes."""

HEADER = b"GIOP"


def emit_framed(body):
    return b"".join([HEADER, body])


def emit_terminated(line):
    return line + b"\n"


def emit_encoded(encoder, tail):
    return encoder.data() + tail

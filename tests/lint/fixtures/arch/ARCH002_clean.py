"""Clean twin: the same frames assembled through a BufferPlan.

In-place ``+=`` into a pooled bytearray segment is the sanctioned way
to build owned frame material; nothing here re-copies a frame.
"""

from repro.wire.bufferplan import SEND_POOL, BufferPlan

HEADER = b"GIOP"


def emit_framed(body):
    frame = SEND_POOL.acquire()
    frame += HEADER
    frame += body
    return BufferPlan().append_owned(frame)


def emit_terminated(line):
    segment = SEND_POOL.acquire()
    segment += line
    segment += b"\n"
    return BufferPlan().append_owned(segment)


def emit_encoded(encoder, tail):
    return BufferPlan().append_owned(encoder.data_segment()) \
        .append_borrowed(tail)


def tokens_may_join(pieces):
    # Text tokens are str until the single encode into a segment.
    return " ".join(pieces).encode("ascii")

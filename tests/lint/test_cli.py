"""``python -m repro.lint`` end-to-end: formats, exit codes, acceptance."""

import json
import os

import pytest

from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _fixture(name):
    return os.path.join(FIXTURES, name)


def test_error_finding_exits_nonzero(capsys):
    assert main([_fixture("IDL002.idl")]) == 1
    out = capsys.readouterr().out
    assert "IDL002" in out


def test_info_finding_exits_zero_by_default(capsys):
    assert main([_fixture("IDL013.idl")]) == 0
    assert "IDL013" in capsys.readouterr().out


def test_fail_on_warning_promotes_warnings(capsys):
    assert main([_fixture("IDL011.idl")]) == 0
    assert main(["--fail-on", "warning", _fixture("IDL011.idl")]) == 1


def test_json_output_is_valid(capsys):
    main(["--format", "json", _fixture("IDL016.idl")])
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.lint"
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "IDL016" in codes


def test_sarif_output_is_valid(capsys):
    main(["--format", "sarif", _fixture("IDL010.idl")])
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    results = run["results"]
    assert any(r["ruleId"] == "IDL010" for r in results)
    warning = next(r for r in results if r["ruleId"] == "IDL010")
    assert warning["level"] == "warning"
    location = warning["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 2
    # The case-collision note travels as a relatedLocation.
    assert warning["relatedLocations"]


def test_unknown_mapping_is_usage_error(capsys):
    assert main(["--mapping", "no_such_pack"]) == 2
    assert "unknown mapping" in capsys.readouterr().err


def test_missing_target_is_usage_error(capsys):
    assert main(["definitely/not/a/file.idl"]) == 2


def test_embedded_idl_in_python_is_reanchored(tmp_path, capsys):
    script = tmp_path / "example.py"
    script.write_text(
        "#!/usr/bin/env python\n"
        "# a comment line\n"
        'IDL = """\n'
        "interface A {\n"
        "    NoSuchType f();\n"
        "};\n"
        '"""\n'
    )
    assert main([str(script)]) == 1
    out = capsys.readouterr().out
    # IDL line 3 sits at Python line 5 (literal opens on line 3).
    assert "example.py:5:" in out
    assert "IDL002" in out


def test_bundled_mappings_and_examples_lint_clean(capsys):
    """The repo's own inputs pass at the strictest gate."""
    examples = os.path.join(REPO_ROOT, "examples")
    code = main(["--fail-on", "warning", examples,
                 "--mapping", "heidi_cpp", "--mapping", "corba_cpp",
                 "--mapping", "java_rmi", "--mapping", "python_rmi",
                 "--mapping", "tcl_orb"])
    out = capsys.readouterr().out
    assert code == 0, out


def test_acceptance_broken_corpus_one_run(capsys):
    """ISSUE acceptance: one CLI run over a deliberately broken IDL +
    template corpus reports >= 8 distinct codes, exits non-zero, and the
    same corpus serializes to valid SARIF."""
    targets = [
        _fixture("IDL002.idl"), _fixture("IDL006.idl"),
        _fixture("IDL010.idl"), _fixture("IDL011.idl"),
        _fixture("IDL015.idl"), _fixture("IDL016.idl"),
        _fixture("TPL001.tmpl"), _fixture("TPL002.tmpl"),
        _fixture("TPL004.tmpl"), _fixture("TPL005.tmpl"),
    ]
    assert main(targets) == 1
    out = capsys.readouterr().out
    codes = {line.split("[")[1].split("]")[0]
             for line in out.splitlines() if "[" in line and "]:" in line}
    assert len(codes) >= 8, codes

    assert main(["--format", "sarif"] + targets) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    rule_ids = {r["ruleId"] for r in sarif["runs"][0]["results"]}
    assert len(rule_ids) >= 8


def test_no_arguments_lints_every_pack(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    # Packs produce only info-severity findings (MAP002/MAP003 etc).
    assert "error[" not in out
    assert "warning[" not in out

"""Pack self-lint: bundled packs are clean; MAP0xx rules fire on bad packs."""

import pytest

from repro.lint.diagnostics import Severity
from repro.lint.mapping_rules import lint_pack, pack_strict_safe
from repro.mappings.base import MappingPack
from repro.mappings.registry import all_packs, get_pack


@pytest.mark.parametrize("name", all_packs())
def test_bundled_pack_lints_clean(name):
    """No bundled mapping may carry warning- or error-severity findings."""
    diagnostics = lint_pack(name)
    noisy = [d for d in diagnostics
             if Severity.at_least(d.severity, Severity.WARNING)]
    assert noisy == [], "\n".join(str(d) for d in noisy)


def test_corba_cpp_is_strict_safe():
    assert pack_strict_safe(get_pack("corba_cpp"))


def test_heidi_cpp_is_not_strict_safe():
    """heidi_cpp renders the optional ${Parent}, so strict stays off."""
    assert not pack_strict_safe(get_pack("heidi_cpp"))


class _TmpPack(MappingPack):
    """A pack whose templates live in a test-controlled directory."""

    name = "tmp_pack"
    language = "test"
    main_template = "main.tmpl"
    _dir = None

    def template_dir(self):
        return self._dir


def _make_pack(tmp_path, templates, type_table=None, maps=None):
    directory = tmp_path / "pack"
    directory.mkdir()
    for filename, text in templates.items():
        (directory / filename).write_text(text)

    class Pack(_TmpPack):
        pass

    Pack._dir = str(directory)
    Pack.type_table = dict(type_table or {})
    if maps:
        def register_maps(self, registry):
            for name, fn in maps.items():
                registry.register(name, fn)

        Pack.register_maps = register_maps
    return Pack()


FULL_TABLE = {
    "boolean": "b", "char": "c", "octet": "o", "short": "s",
    "unsigned short": "us", "long": "l", "unsigned long": "ul",
    "float": "f", "double": "d", "string": "str", "void": "v",
}


def test_map001_missing_entry_template(tmp_path):
    pack = _make_pack(tmp_path, {"other.tmpl": "text\n"},
                      type_table=FULL_TABLE)
    codes = {d.code for d in lint_pack(pack)}
    assert "MAP001" in codes


def test_map002_unreferenced_map_function(tmp_path):
    pack = _make_pack(
        tmp_path,
        {"main.tmpl": "nothing mapped here\n"},
        type_table=FULL_TABLE,
        maps={"T::Orphan": lambda node, runtime: ""},
    )
    diagnostics = lint_pack(pack)
    orphans = [d for d in diagnostics if d.code == "MAP002"]
    assert len(orphans) == 1
    assert "T::Orphan" in orphans[0].message


def test_map003_incomplete_type_table(tmp_path):
    pack = _make_pack(tmp_path, {"main.tmpl": "text\n"},
                      type_table={"long": "int"})
    gaps = [d for d in lint_pack(pack) if d.code == "MAP003"]
    assert len(gaps) == 1
    assert "double" in gaps[0].message


def test_pack_template_errors_carry_exact_file(tmp_path):
    """Findings point at the fragment file, not the includer."""
    pack = _make_pack(
        tmp_path,
        {"main.tmpl": "@include frag.tmpl\n",
         "frag.tmpl": "line one\n${bogusVar}\n"},
        type_table=FULL_TABLE,
    )
    findings = [d for d in lint_pack(pack) if d.code == "TPL001"]
    assert len(findings) == 1
    assert findings[0].span.file.endswith("frag.tmpl")
    assert findings[0].span.line == 2

"""Pack self-lint: bundled packs are clean; MAP0xx rules fire on bad packs."""

import os

import pytest

from repro.lint.diagnostics import Severity
from repro.lint.formats import render_text
from repro.lint.idl_rules import lint_idl_source
from repro.lint.mapping_rules import (
    lint_pack,
    lint_pack_idempotence,
    pack_strict_safe,
)
from repro.mappings.base import MappingPack
from repro.mappings.registry import all_packs, get_pack

MAPPING_FIXTURES = os.path.join(
    os.path.dirname(__file__), "fixtures", "mapping"
)


@pytest.mark.parametrize("name", all_packs())
def test_bundled_pack_lints_clean(name):
    """No bundled mapping may carry warning- or error-severity findings."""
    diagnostics = lint_pack(name)
    noisy = [d for d in diagnostics
             if Severity.at_least(d.severity, Severity.WARNING)]
    assert noisy == [], "\n".join(str(d) for d in noisy)


def test_corba_cpp_is_strict_safe():
    assert pack_strict_safe(get_pack("corba_cpp"))


def test_heidi_cpp_is_not_strict_safe():
    """heidi_cpp renders the optional ${Parent}, so strict stays off."""
    assert not pack_strict_safe(get_pack("heidi_cpp"))


class _TmpPack(MappingPack):
    """A pack whose templates live in a test-controlled directory."""

    name = "tmp_pack"
    language = "test"
    main_template = "main.tmpl"
    _dir = None

    def template_dir(self):
        return self._dir


def _make_pack(tmp_path, templates, type_table=None, maps=None):
    directory = tmp_path / "pack"
    directory.mkdir()
    for filename, text in templates.items():
        (directory / filename).write_text(text)

    class Pack(_TmpPack):
        pass

    Pack._dir = str(directory)
    Pack.type_table = dict(type_table or {})
    if maps:
        def register_maps(self, registry):
            for name, fn in maps.items():
                registry.register(name, fn)

        Pack.register_maps = register_maps
    return Pack()


FULL_TABLE = {
    "boolean": "b", "char": "c", "octet": "o", "short": "s",
    "unsigned short": "us", "long": "l", "unsigned long": "ul",
    "float": "f", "double": "d", "string": "str", "void": "v",
}


def test_map001_missing_entry_template(tmp_path):
    pack = _make_pack(tmp_path, {"other.tmpl": "text\n"},
                      type_table=FULL_TABLE)
    codes = {d.code for d in lint_pack(pack)}
    assert "MAP001" in codes


def test_map002_unreferenced_map_function(tmp_path):
    pack = _make_pack(
        tmp_path,
        {"main.tmpl": "nothing mapped here\n"},
        type_table=FULL_TABLE,
        maps={"T::Orphan": lambda node, runtime: ""},
    )
    diagnostics = lint_pack(pack)
    orphans = [d for d in diagnostics if d.code == "MAP002"]
    assert len(orphans) == 1
    assert "T::Orphan" in orphans[0].message


def test_map003_incomplete_type_table(tmp_path):
    pack = _make_pack(tmp_path, {"main.tmpl": "text\n"},
                      type_table={"long": "int"})
    gaps = [d for d in lint_pack(pack) if d.code == "MAP003"]
    assert len(gaps) == 1
    assert "double" in gaps[0].message


class _IdempotentPack(MappingPack):
    """A template-less pack that only carries idempotence declarations."""

    name = "idem_pack"
    language = "test"
    idempotent_operations = ("Res::Counter::fetch", "Res::Counter::bump")


def _map004_spec():
    path = os.path.join(MAPPING_FIXTURES, "MAP004.idl")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    spec, diagnostics = lint_idl_source(source, filename="MAP004.idl")
    assert spec is not None and diagnostics == []
    return spec


def test_map004_matches_golden():
    """The fixture's rendered findings are pinned byte-for-byte."""
    diagnostics = lint_pack_idempotence(
        _IdempotentPack(), _map004_spec(), filename="MAP004.idl"
    )
    with open(os.path.join(MAPPING_FIXTURES, "MAP004.idl.expected"), "r",
              encoding="utf-8") as handle:
        expected = handle.read()
    assert render_text(diagnostics) == expected


def test_map004_flags_only_out_inout_operations():
    """fetch (pure in params) stays clean; bump (inout+out) is flagged."""
    diagnostics = lint_pack_idempotence(_IdempotentPack(), _map004_spec())
    assert [d.code for d in diagnostics] == ["MAP004"]
    assert diagnostics[0].severity == Severity.WARNING
    assert "Res::Counter::bump" in diagnostics[0].message
    assert "fetch" not in diagnostics[0].message


def test_map004_silent_without_declarations():
    class Plain(MappingPack):
        name = "plain_pack"
        language = "test"

    assert lint_pack_idempotence(Plain(), _map004_spec()) == []


def test_bundled_packs_declare_no_unsafe_idempotence():
    """Bundled packs currently declare nothing, so the rule stays quiet."""
    for name in all_packs():
        assert lint_pack_idempotence(name, _map004_spec()) == []


def test_pack_template_errors_carry_exact_file(tmp_path):
    """Findings point at the fragment file, not the includer."""
    pack = _make_pack(
        tmp_path,
        {"main.tmpl": "@include frag.tmpl\n",
         "frag.tmpl": "line one\n${bogusVar}\n"},
        type_table=FULL_TABLE,
    )
    findings = [d for d in lint_pack(pack) if d.code == "TPL001"]
    assert len(findings) == 1
    assert findings[0].span.file.endswith("frag.tmpl")
    assert findings[0].span.line == 2

"""Lint-first compilation: the pipeline wiring and auto-strict logic."""

import pytest

from repro.compiler.pipeline import Pipeline, compile_idl
from repro.lint.diagnostics import LintError

CLEAN_IDL = """\
interface Echo {
    string say(in string text);
};
"""

BROKEN_IDL = """\
interface A { NoSuchType f(); };
interface Ghost;
const short big = 70000;
"""


def test_lint_error_aborts_before_generation():
    with pytest.raises(LintError) as excinfo:
        Pipeline("heidi_cpp").run(BROKEN_IDL, filename="broken.idl")
    codes = {d.code for d in excinfo.value.diagnostics}
    # Every problem is in the one exception — no fail-fast.
    assert {"IDL002", "IDL006", "IDL011"} <= codes


def test_no_lint_flag_restores_old_behavior():
    from repro.idl.errors import IdlSemanticError

    with pytest.raises(IdlSemanticError):
        compile_idl(BROKEN_IDL, lint=False)


def test_clean_compile_records_lint_and_timing():
    result = Pipeline("heidi_cpp").run(CLEAN_IDL, filename="echo.idl")
    assert "lint" in result.timings
    assert result.files
    assert not any(d.severity == "error" for d in result.lint_diagnostics)


def test_auto_strict_engages_for_strict_safe_pack():
    result = Pipeline("corba_cpp").run(CLEAN_IDL, filename="echo.idl")
    assert result.strict is True
    assert result.files


def test_auto_strict_stays_off_for_unsafe_pack():
    result = Pipeline("heidi_cpp").run(CLEAN_IDL, filename="echo.idl")
    assert result.strict is False


def test_forced_strict_overrides_auto():
    result = Pipeline("heidi_cpp", strict_templates=False).run(
        CLEAN_IDL, filename="echo.idl")
    assert result.strict is False
    result = Pipeline("corba_cpp", strict_templates=True).run(
        CLEAN_IDL, filename="echo.idl")
    assert result.strict is True


def test_lint_disabled_pipeline_still_compiles():
    result = Pipeline("heidi_cpp", lint=False).run(CLEAN_IDL)
    assert result.files
    assert result.lint_diagnostics == []
    assert "lint" not in result.timings

"""Deadlines: the budget object, wire propagation, and enforcement.

The contract under test: an expired call raises
:class:`DeadlineExceeded` (a ``TimeoutError``) *promptly* — on the
client within the budget plus scheduling slack, on the server by
dropping queued requests whose wire-propagated budget ran out — and an
expired call on a multiplexed channel never takes channel-mates down
with it.
"""

import time

import pytest

from repro.heidirmi.call import Call
from repro.heidirmi.errors import DeadlineExceeded, ProtocolError
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.transport import get_transport
from repro.resilience import Deadline

from tests.resilience.rig import make_pair, stop_pair

#: Scheduling slack allowed on top of a deadline before we call an
#: enforcement path "late" (CI machines stall threads for tens of ms).
EPSILON = 1.5


class LoopbackChannel:
    """A channel whose reads consume its own writes (protocol tests)."""

    closed = False
    peer = "loopback"
    has_buffered = False

    def __init__(self):
        self._buffer = bytearray()

    def send(self, data):
        self._buffer += data

    def recv_line(self):
        index = self._buffer.index(b"\n")
        line = self._buffer[:index]
        del self._buffer[: index + 1]
        return bytearray(line)

    def recv_exact(self, count):
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data


# -- the budget object ------------------------------------------------------


def test_after_and_remaining():
    deadline = Deadline.after(5.0)
    assert not deadline.expired
    assert 4.0 < deadline.remaining() <= 5.0
    assert deadline.budget == 5.0


def test_expired_deadline():
    deadline = Deadline.after(0.0)
    assert deadline.expired
    assert deadline.remaining_ms() == 0


def test_remaining_ms_rounds_up():
    """A sliver of positive budget must survive the wire as >= 1 ms."""
    deadline = Deadline.after(0.0004)
    ms = deadline.remaining_ms()
    assert ms >= 1 or deadline.expired


def test_coerce():
    assert Deadline.coerce(None) is None
    deadline = Deadline.after(1.0)
    assert Deadline.coerce(deadline) is deadline
    coerced = Deadline.coerce(0.25)
    assert isinstance(coerced, Deadline)
    assert coerced.budget == 0.25


def test_deadline_exceeded_is_timeout_error():
    exc = DeadlineExceeded("late")
    assert isinstance(exc, TimeoutError)
    assert exc.kind == "deadline-exceeded"


# -- wire propagation -------------------------------------------------------


@pytest.mark.parametrize("protocol_name", ["text", "text2", "giop"])
def test_deadline_token_round_trips(protocol_name):
    protocol = get_protocol(protocol_name)
    channel = LoopbackChannel()
    call = Call("@x:h:1#oid#IDL:Res/Echo:1.0", "echo",
                marshaller=protocol.new_marshaller())
    call.put_string("tok")
    call.deadline = Deadline.after(30.0)
    protocol.send_request(channel, call)
    received = protocol.recv_request(channel)
    assert received.deadline is not None
    # The server re-anchors the remaining budget on its own clock.
    assert 25.0 < received.deadline.remaining() <= 30.1
    assert not received.deadline.expired
    assert received.get_string() == "tok"


@pytest.mark.parametrize("protocol_name", ["text", "text2", "giop"])
def test_no_deadline_sends_no_token(protocol_name):
    protocol = get_protocol(protocol_name)
    channel = LoopbackChannel()
    call = Call("@x:h:1#oid#IDL:Res/Echo:1.0", "echo",
                marshaller=protocol.new_marshaller())
    call.put_string("tok")
    protocol.send_request(channel, call)
    received = protocol.recv_request(channel)
    assert received.deadline is None
    assert received.get_string() == "tok"


@pytest.mark.parametrize("protocol_name", ["text", "text2"])
def test_expired_deadline_travels_as_zero(protocol_name):
    protocol = get_protocol(protocol_name)
    channel = LoopbackChannel()
    call = Call("@x:h:1#oid#IDL:Res/Echo:1.0", "echo",
                marshaller=protocol.new_marshaller())
    call.deadline = Deadline.after(0.0)
    protocol.send_request(channel, call)
    received = protocol.recv_request(channel)
    assert received.deadline is not None
    assert received.deadline.expired


@pytest.mark.parametrize("line", [
    b"CALL dl=abc @x:h:1#o#t op\n",
    b"CALL dl=-5 @x:h:1#o#t op\n",
])
def test_malformed_deadline_token_is_rejected(line):
    protocol = get_protocol("text")
    channel = LoopbackChannel()
    channel.send(line)
    with pytest.raises(ProtocolError):
        protocol.recv_request(channel)


def test_ctx_and_dl_tokens_compose_in_either_order():
    protocol = get_protocol("text2")
    for header in ("ctx=00ff-01 dl=5000", "dl=5000 ctx=00ff-01"):
        channel = LoopbackChannel()
        channel.send(f"CALL2 7 {header} @x:h:1#o#t op\n".encode("ascii"))
        received = protocol.recv_request(channel)
        assert received.trace_context == "00ff-01"
        assert received.deadline is not None
        assert received.request_id == 7


# -- client-side enforcement ------------------------------------------------


MATRIX = [
    ("text", False),
    ("text2", False),
    ("text2", True),
    ("giop", True),
]


@pytest.mark.parametrize("protocol,multiplex", MATRIX)
def test_slow_call_fails_within_deadline(protocol, multiplex):
    server, client, stub, _ = make_pair(protocol=protocol,
                                        multiplex=multiplex)
    try:
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            stub.echo("slow", delay_ms=2000, deadline=0.15)
        elapsed = time.monotonic() - started
        assert elapsed < 0.15 + EPSILON, (
            f"deadline enforcement took {elapsed:.2f}s for a 0.15s budget"
        )
    finally:
        stop_pair(server, client)


def test_per_orb_default_deadline_applies():
    server, client, stub, _ = make_pair(
        protocol="text2", multiplex=True,
        client_kwargs={"default_deadline": 0.15},
    )
    try:
        with pytest.raises(DeadlineExceeded):
            stub.echo("slow", delay_ms=500)
        # The abandoned call still runs server-side (a client deadline
        # cannot preempt an executing upcall); wait it out, then check
        # the default does not break fast calls.
        time.sleep(0.7)
        assert stub.echo("fast") == "ack:fast"
    finally:
        stop_pair(server, client)


def test_expired_call_never_blocks_channel_mates():
    """One expired call on a multiplexed channel must not fail or even
    delay its channel-mates, and must not tear down the shared channel."""
    server, client, stub, _ = make_pair(protocol="text2", multiplex=True)
    try:
        mate = stub.echo_async("mate", delay_ms=400)
        with pytest.raises(DeadlineExceeded):
            stub.echo("doomed", delay_ms=2000, deadline=0.1)
        assert mate.result(timeout=10).get_string() == "ack:mate"
        assert stub.echo("after") == "ack:after"
        assert client.connections.stats["opened"] == 1, (
            "an expired call tore down the shared multiplexed channel"
        )
    finally:
        stop_pair(server, client)


# -- server-side drop -------------------------------------------------------


@pytest.mark.parametrize("protocol_name", ["text", "text2"])
def test_server_drops_request_that_arrives_expired(protocol_name):
    """A request whose wire budget reads 0 is shed before dispatch with
    an error reply naming DeadlineExceeded, and the connection lives on."""
    server, client, stub, impl = make_pair(protocol=protocol_name)
    try:
        protocol = get_protocol(protocol_name)
        _, host, port = stub._hd_ref.bootstrap
        channel = get_transport("inproc").connect(host, port)
        try:
            doomed = Call(stub.stringify(), "echo",
                          marshaller=protocol.new_marshaller())
            doomed.put_string("doomed")
            doomed.put_long(0)
            doomed.deadline = Deadline.after(0.0)
            protocol.send_request(channel, doomed)
            reply = protocol.recv_reply(channel)
            assert not reply.is_ok
            assert reply.repo_id == "DeadlineExceeded"
            assert impl.echoed == [], "an expired request was dispatched"

            healthy = Call(stub.stringify(), "echo",
                           marshaller=protocol.new_marshaller())
            healthy.put_string("alive")
            healthy.put_long(0)
            protocol.send_request(channel, healthy)
            reply = protocol.recv_reply(channel)
            assert reply.is_ok and reply.get_string() == "ack:alive"
        finally:
            channel.close()
    finally:
        stop_pair(server, client)


def test_stub_maps_server_side_expiry_to_deadline_exceeded(monkeypatch):
    """An ERR reply carrying repo_id=DeadlineExceeded surfaces as the
    client-side TimeoutError, not a generic RemoteError."""
    server, client, stub, _ = make_pair(protocol="text2")
    try:
        protocol = get_protocol("text2")
        channel = LoopbackChannel()
        channel.send(b"RET2 9 ERR DeadlineExceeded expired%20in%20queue\n")
        error_reply = protocol.recv_reply(channel)
        monkeypatch.setattr(client, "invoke",
                            lambda reference, call, deadline=None: error_reply)
        with pytest.raises(DeadlineExceeded, match="expired"):
            stub.echo("x")
    finally:
        stop_pair(server, client)

"""The fused policy fast path: plan caching, pump-armed deadlines,
retry-as-re-enqueue, and the bounded breaker table.

These tests pin the observable contracts of moving resilience
bookkeeping out of the per-call wrapper and into the correlation/pump
layer: deadline expiry must surface from the pump's own wakeup (no
caller-side timer), a retried call must still finish exactly one client
span and count its retries identically, policy resolution must allocate
nothing when no deadline applies, and the per-endpoint breaker table
must stay bounded instead of growing with every address ever dialled.
"""

import random
import threading
import time

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.call import Call
from repro.heidirmi.errors import DeadlineExceeded
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.transport import get_transport
from repro.observe import Observer
from repro.resilience import (
    BreakerPolicy,
    Deadline,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.breaker import BREAKER_OPEN
from repro.resilience import engine

from tests.resilience.rig import TYPE_ID, make_pair, registry, stop_pair

#: Scheduling slack allowed on top of a deadline before we call an
#: enforcement path "late" (CI machines stall threads for tens of ms).
EPSILON = 1.5


def instant_retry(max_attempts=3, **kwargs):
    """A RetryPolicy whose sleeps are recorded, not slept."""
    sleeps = []
    policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.01,
                         rng=random.Random(0), **kwargs)
    policy.sleep = sleeps.append
    return policy, sleeps


def _wait_spans(observer, n, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


# -- the bounded breaker table (satellite: Orb._breakers growth) ------------


def test_breaker_table_stays_bounded_and_reap_spares_live_state():
    """Dialling many distinct endpoints must not grow ``_breakers``
    without bound; the reap spares open circuits (their state is the
    whole point) and endpoints with live cached connections (their
    rolling window is current history)."""
    policy = ResiliencePolicy(breaker=BreakerPolicy())
    server, client, stub, _ = make_pair(
        client_kwargs={"resilience": policy}
    )
    try:
        client._breaker_cap = 8
        # A real call leaves a cached connection to the live endpoint.
        assert stub.echo("live", idempotent=True) == "ack:live"
        live = client._breaker_for(stub._hd_ref.bootstrap)

        # Drive one ghost endpoint's circuit open: it must survive.
        opened = client._breaker_for(("inproc", "dead-host", 1))
        for _ in range(opened.policy.min_calls):
            opened.record_failure()
        assert opened.state == BREAKER_OPEN

        for port in range(100):
            client._breaker_for(("inproc", "ghost-host", port))

        assert len(client._breakers) <= client._breaker_cap + 1, (
            f"breaker table grew to {len(client._breakers)} entries "
            f"past the cap of {client._breaker_cap}"
        )
        assert client._breaker_for(stub._hd_ref.bootstrap) is live
        assert client._breaker_for(("inproc", "dead-host", 1)) is opened
        # Reaping bumped the plan epoch; cached plans rebuild and the
        # stub keeps working against the surviving breaker.
        assert stub.echo("after-reap", idempotent=True) == "ack:after-reap"
    finally:
        stop_pair(server, client)


# -- allocation-free policy resolution (satellite: resolve_deadline) --------


def test_resolve_deadline_all_none_path_allocates_no_deadline(monkeypatch):
    """With no explicit deadline, no call deadline, no policy default
    and no Orb default, resolution returns None without constructing a
    single Deadline object."""
    built = []

    class CountingDeadline(Deadline):
        def __init__(self, *args, **kwargs):
            built.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(engine, "Deadline", CountingDeadline)
    orb = Orb(transport="inproc", protocol="text2", types=registry())
    protocol = get_protocol("text2")
    try:
        call = Call("@x:h:1#o#t", "echo",
                    marshaller=protocol.new_marshaller())
        assert engine.resolve_deadline(orb, None, call) is None
        assert engine.resolve_deadline(orb, None, None) is None
        assert built == [], (
            "the all-None fast path constructed a Deadline"
        )
        # Sanity: a real budget still coerces (and now allocates).
        assert engine.resolve_deadline(orb, 0.5, None) is not None
        assert built, "coercion no longer constructs a Deadline at all?"
    finally:
        orb.stop()


def test_cached_plan_reused_across_calls():
    """The (deadline, retry, breaker) tuple is resolved once per
    reference, not once per call."""
    retry, _ = instant_retry()
    server, client, stub, _ = make_pair(
        client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        assert stub.echo("one", idempotent=True) == "ack:one"
        first = client._plan_for(stub._hd_ref)
        assert stub.echo("two", idempotent=True) == "ack:two"
        assert client._plan_for(stub._hd_ref) is first
    finally:
        stop_pair(server, client)


# -- deadline expiry from the pump wakeup (satellite: pump deadlines) -------


def test_async_call_expires_from_pump_without_caller_timeout():
    """``invoke_async`` hands back a bare future: nothing on the caller
    side is watching the clock, so a prompt DeadlineExceeded can only
    come from the pump's own wakeup.  The expiry happens in the
    multiplexed completion table with zero reply bytes inbound (the
    doomed call is the channel's only traffic and the server is still
    sleeping), and must not tear down the shared channel."""
    server, client, stub, _ = make_pair(protocol="text2", multiplex=True)
    try:
        orb = stub._hd_orb
        call = orb.create_call(stub._hd_ref, "echo")
        call.put_string("doomed")
        call.put_long(5000)
        call.deadline = Deadline.after(0.25)
        started = time.monotonic()
        future = orb.invoke_async(stub._hd_ref, call)
        # The 30s backstop exists only so a broken pump fails the test
        # instead of hanging it; enforcement must beat it by ~29.5s.
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=30)
        elapsed = time.monotonic() - started
        assert elapsed < 0.25 + EPSILON, (
            f"pump-side enforcement took {elapsed:.2f}s for a 0.25s budget"
        )
        # Channel-mates and the shared channel survive the expiry.
        time.sleep(0.1)
        assert stub.echo("alive") == "ack:alive"
        assert client.connections.stats["opened"] == 1, (
            "an expired async call tore down the shared channel"
        )
    finally:
        stop_pair(server, client)


def test_exclusive_deadline_enforced_at_the_blocking_point():
    """Exclusive mode arms the budget on the socket itself; the slow
    call fails within budget plus slack and the connection is not
    poisoned for the next call."""
    server, client, stub, _ = make_pair(protocol="text2", multiplex=False)
    try:
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            stub.echo("slow", delay_ms=2000, deadline=0.2)
        elapsed = time.monotonic() - started
        assert elapsed < 0.2 + EPSILON
        # The abandoned upcall finishes server-side; afterwards a fresh
        # undeadlined call must not inherit the armed socket timeout.
        time.sleep(2.2)
        assert stub.echo("fresh") == "ack:fresh"
    finally:
        stop_pair(server, client)


def test_native_aio_client_expires_on_loop_timer_with_zero_bytes():
    """The coroutine client arms expiry on the shared loop's timer
    wheel: against a server that accepts and never replies a deadlined
    invoke fails promptly with literally zero inbound bytes."""
    import asyncio

    from repro.wire.aio import AioClientConnection, get_event_loop

    listener = get_transport("tcp").listen("127.0.0.1", 0)
    held = []

    def acceptor():
        try:
            held.append(listener.accept())
        except Exception:
            pass

    thread = threading.Thread(target=acceptor, daemon=True)
    thread.start()
    protocol = get_protocol("text2")

    host, port = listener.address

    async def drive():
        connection = await AioClientConnection.open(protocol, host, port)
        call = Call("@x:h:1#o#t", "echo",
                    marshaller=protocol.new_marshaller())
        call.put_string("doomed")
        call.put_long(0)
        call.deadline = Deadline.after(0.25)
        started = time.monotonic()
        try:
            await connection.invoke(call)
            raise AssertionError("silent server produced a reply?")
        except DeadlineExceeded:
            elapsed = time.monotonic() - started
        finally:
            await connection.close()
        return elapsed

    try:
        elapsed = asyncio.run_coroutine_threadsafe(
            drive(), get_event_loop()
        ).result(30)
        assert elapsed < 0.25 + EPSILON, (
            f"loop-timer enforcement took {elapsed:.2f}s for a 0.25s budget"
        )
    finally:
        listener.close()
        for channel in held:
            channel.close()
        thread.join(timeout=5)


# -- retry as re-enqueue (satellite: spans + metrics preserved) -------------


def test_retried_call_finishes_exactly_one_client_span():
    """Two refusals then success is still ONE call: one client span
    finish, one upcall, and a retries counter of exactly two."""
    plan = FaultPlan(script={("connect", 0): "refuse",
                             ("connect", 1): "refuse"})
    retry, _ = instant_retry(max_attempts=3)
    observer = Observer()
    server, client, stub, impl = make_pair(
        plan=plan,
        client_kwargs={
            "resilience": ResiliencePolicy(retry=retry),
            "observer": observer,
        },
    )
    try:
        assert stub.echo("tok", idempotent=True) == "ack:tok"
        assert impl.echoed == ["tok"]
        spans = _wait_spans(observer, 1)
        assert len(spans) == 1, (
            f"a retried call finished {len(spans)} client spans, not 1"
        )
        metrics = observer.metrics.snapshot()
        entries = metrics["resilience.retries"]
        assert len(entries) == 1
        assert entries[0]["labels"] == {"kind": "connect-refused"}
        assert entries[0]["value"] == 2
    finally:
        stop_pair(server, client)


def _seeded_fault_run(calls=60, seed=5):
    """One observed workload under a seeded 5% fault plan; returns the
    (sorted retries-metric entries, retry trace events, successes)."""
    from repro.resilience import DEFAULT_RETRYABLE_KINDS

    events = []
    # The acceptance suite's 5% plan shape: recv-level faults too, so
    # injections land even though connections are cached across calls.
    plan = FaultPlan(seed=seed, connect_refuse=0.05, disconnect=0.05,
                     garbage=0.05)
    retry, _ = instant_retry(
        max_attempts=4,
        retryable_kinds=frozenset(
            DEFAULT_RETRYABLE_KINDS | {"peer-protocol-error"}
        ),
    )
    observer = Observer()
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={
            "resilience": ResiliencePolicy(retry=retry),
            "observer": observer,
            "trace": lambda name, detail: events.append((name, detail)),
        },
    )
    try:
        successes = 0
        for index in range(calls):
            try:
                if stub.echo(f"c{index}", idempotent=True) == f"ack:c{index}":
                    successes += 1
            except Exception:
                pass
        retries = sorted(
            (tuple(sorted(entry["labels"].items())), entry["value"])
            for entry in observer.metrics.snapshot().get(
                "resilience.retries", ()
            )
        )
        retry_events = [detail for name, detail in events
                        if name == "resilience:retry"]
        return retries, retry_events, successes
    finally:
        stop_pair(server, client)


def test_retry_metrics_are_reproducible_under_a_seeded_plan():
    """Golden compare: the fused engine's ``resilience.retries{kind}``
    accounting is a pure function of the seeded fault plan — two
    identical runs produce identical metric snapshots, and the counter
    total equals the number of retry trace events observed."""
    first_metrics, first_events, first_ok = _seeded_fault_run()
    second_metrics, second_events, second_ok = _seeded_fault_run()
    assert first_metrics == second_metrics
    assert len(first_events) == len(second_events)
    assert first_ok == second_ok
    total = sum(value for _labels, value in first_metrics)
    assert total == len(first_events), (
        "the retries counter and the retry trace events disagree"
    )
    assert total > 0, "a 5% plan over 60 calls injected nothing; seed drifted?"

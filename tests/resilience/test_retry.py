"""Retry policy: jittered backoff, structural gating, deadline clamp.

Retries only ever apply to calls that are structurally safe to repeat —
oneways and operations marked idempotent; everything else fails fast on
the first error exactly as an unconfigured ORB does.
"""

import random

import pytest

from repro.heidirmi.errors import CommunicationError, DeadlineExceeded
from repro.resilience import (
    DEFAULT_RETRYABLE_KINDS,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
)

from tests.resilience.rig import make_pair, stop_pair


def instant_retry(max_attempts=3, **kwargs):
    """A seeded policy that never actually sleeps."""
    sleeps = []
    policy = RetryPolicy(max_attempts=max_attempts,
                         rng=random.Random(0),
                         sleep=sleeps.append, **kwargs)
    return policy, sleeps


# -- the policy object ------------------------------------------------------


def test_full_jitter_delay_is_bounded_and_seeded():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0,
                         rng=random.Random(7))
    caps = [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]
    for attempt, cap in enumerate(caps, start=1):
        delay = policy.delay(attempt)
        assert 0.0 <= delay <= cap
    # Same seed, same draws: the schedule is reproducible.
    first = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0,
                        rng=random.Random(7))
    second = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0,
                         rng=random.Random(7))
    assert ([first.delay(a) for a in range(1, 7)]
            == [second.delay(a) for a in range(1, 7)])


def test_default_retryable_kinds():
    for kind in ("connect-refused", "connect-timeout", "send-failed",
                 "recv-failed", "peer-closed", "reader-died"):
        assert kind in DEFAULT_RETRYABLE_KINDS
    for kind in ("deadline-exceeded", "circuit-open", "frame-overflow",
                 "peer-protocol-error"):
        assert kind not in DEFAULT_RETRYABLE_KINDS


def test_max_attempts_must_be_positive():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# -- engine behaviour -------------------------------------------------------


def test_idempotent_call_retries_through_connect_refusals():
    """Two scripted refusals, then success: three attempts, one upcall."""
    plan = FaultPlan(script={("connect", 0): "refuse",
                             ("connect", 1): "refuse"})
    retry, sleeps = instant_retry(max_attempts=3)
    server, client, stub, impl = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        assert stub.echo("tok", idempotent=True) == "ack:tok"
        assert impl.echoed == ["tok"]
        assert plan.stats["connect:refuse"] == 2
        assert len(sleeps) == 2
    finally:
        stop_pair(server, client)


def test_non_idempotent_call_fails_fast():
    plan = FaultPlan(script={("connect", 0): "refuse"})
    retry, sleeps = instant_retry(max_attempts=3)
    server, client, stub, impl = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("tok")
        assert excinfo.value.kind == "connect-refused"
        assert not isinstance(excinfo.value, DeadlineExceeded)
        assert sleeps == []
        assert plan.stats["connect:refuse"] == 1
        assert impl.echoed == []
    finally:
        stop_pair(server, client)


def test_oneways_are_retried_without_marking():
    plan = FaultPlan(script={("connect", 0): "refuse"})
    retry, sleeps = instant_retry(max_attempts=2)
    server, client, stub, impl = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        stub.note("n0")
        stub.echo("fence", idempotent=True)
        assert impl.noted == ["n0"]
        assert len(sleeps) == 1
    finally:
        stop_pair(server, client)


def test_attempts_are_exhausted_then_original_error_raised():
    plan = FaultPlan(connect_refuse=1.0)
    retry, sleeps = instant_retry(max_attempts=3)
    server, client, stub, _ = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("tok", idempotent=True)
        assert excinfo.value.kind == "connect-refused"
        assert plan.stats["connect:refuse"] == 3
        assert len(sleeps) == 2
    finally:
        stop_pair(server, client)


def test_non_retryable_kind_fails_fast():
    plan = FaultPlan(connect_refuse=1.0)
    retry, sleeps = instant_retry(
        max_attempts=5, retryable_kinds=frozenset({"send-failed"})
    )
    server, client, stub, _ = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        with pytest.raises(CommunicationError):
            stub.echo("tok", idempotent=True)
        assert sleeps == []
        assert plan.stats["connect:refuse"] == 1
    finally:
        stop_pair(server, client)


def test_backoff_never_outlives_the_deadline():
    """A huge backoff is clamped to the remaining budget; the call still
    fails with the transport error, within deadline + slack."""
    import time

    plan = FaultPlan(connect_refuse=1.0)
    retry = RetryPolicy(max_attempts=10, base_delay=30.0, max_delay=30.0,
                        rng=random.Random(1))  # real sleeps, clamped
    server, client, stub, _ = make_pair(
        plan=plan, client_kwargs={"resilience": ResiliencePolicy(retry=retry)}
    )
    try:
        started = time.monotonic()
        with pytest.raises(CommunicationError):
            stub.echo("tok", idempotent=True, deadline=0.3)
        assert time.monotonic() - started < 2.0
    finally:
        stop_pair(server, client)


def test_retry_fires_trace_events():
    events = []
    plan = FaultPlan(script={("connect", 0): "refuse"})
    retry, _ = instant_retry(max_attempts=2)
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={
            "resilience": ResiliencePolicy(retry=retry),
            "trace": lambda name, detail: events.append((name, detail)),
        },
    )
    try:
        assert stub.echo("tok", idempotent=True) == "ack:tok"
        retries = [d for n, d in events if n == "resilience:retry"]
        assert len(retries) == 1
        assert retries[0]["kind"] == "connect-refused"
        assert retries[0]["attempt"] == 1
    finally:
        stop_pair(server, client)

"""Circuit breaker: the state machine, and its wiring into the ORB.

All timing goes through the policy's injectable clock, so the
open → half-open transition is tested without sleeping.
"""

import pytest

from repro.heidirmi.errors import CircuitOpenError, CommunicationError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    FaultPlan,
    ResiliencePolicy,
)

from tests.resilience.rig import make_pair, stop_pair


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def breaker(clock=None, **kwargs):
    policy = BreakerPolicy(clock=clock or FakeClock(), **kwargs)
    return CircuitBreaker(policy)


# -- state machine ----------------------------------------------------------


def test_stays_closed_below_min_calls():
    b = breaker(min_calls=4, failure_threshold=0.5)
    for _ in range(3):
        b.record_failure()
    assert b.state == BREAKER_CLOSED
    assert b.allow()


def test_opens_at_failure_rate_threshold():
    b = breaker(min_calls=4, failure_threshold=0.5)
    b.record_success()
    b.record_success()
    b.record_failure()
    assert b.state == BREAKER_CLOSED
    b.record_failure()  # 2/4 = 50% >= threshold
    assert b.state == BREAKER_OPEN
    assert not b.allow()


def test_open_to_half_open_after_reset_timeout():
    clock = FakeClock()
    b = breaker(clock=clock, min_calls=1, failure_threshold=0.5,
                reset_timeout=5.0)
    b.record_failure()
    assert b.state == BREAKER_OPEN
    clock.now += 4.9
    assert not b.allow()
    clock.now += 0.2
    assert b.allow()
    assert b.state == BREAKER_HALF_OPEN


def test_half_open_probe_success_closes():
    clock = FakeClock()
    b = breaker(clock=clock, min_calls=1, reset_timeout=1.0)
    b.record_failure()
    clock.now += 1.1
    assert b.allow()
    b.record_success()
    assert b.state == BREAKER_CLOSED
    # The window was cleared: old failures cannot re-trip it.
    assert b.failure_rate == 0.0


def test_half_open_probe_failure_reopens_with_fresh_timer():
    clock = FakeClock()
    b = breaker(clock=clock, min_calls=1, reset_timeout=1.0)
    b.record_failure()
    clock.now += 1.1
    assert b.allow()
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert not b.allow()  # the reset timer restarted
    clock.now += 1.1
    assert b.allow()


def test_half_open_admits_bounded_probes():
    clock = FakeClock()
    b = breaker(clock=clock, min_calls=1, reset_timeout=1.0,
                half_open_probes=2)
    b.record_failure()
    clock.now += 1.1
    assert b.allow()   # transition, probe 1
    assert b.allow()   # probe 2
    assert not b.allow()  # shed


def test_transition_callback_fires_outside_lock():
    transitions = []
    clock = FakeClock()
    policy = BreakerPolicy(clock=clock, min_calls=1, reset_timeout=1.0)
    b = CircuitBreaker(policy, on_transition=lambda old, new:
                       transitions.append((old, new)))
    b.record_failure()
    clock.now += 1.1
    b.allow()
    b.record_success()
    assert transitions == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    ]


def test_policy_validates_threshold():
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0.0)
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=1.5)


# -- ORB integration --------------------------------------------------------


def test_open_circuit_sheds_calls_without_touching_transport():
    plan = FaultPlan(connect_refuse=1.0)
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={"resilience": ResiliencePolicy(
            breaker=BreakerPolicy(min_calls=2, failure_threshold=0.5,
                                  reset_timeout=3600.0)
        )},
    )
    try:
        for _ in range(2):
            with pytest.raises(CommunicationError):
                stub.echo("x")
        attempts_before = plan.stats["connect:events"]
        with pytest.raises(CircuitOpenError) as excinfo:
            stub.echo("x")
        assert excinfo.value.kind == "circuit-open"
        assert plan.stats["connect:events"] == attempts_before, (
            "an open circuit still attempted a connection"
        )
    finally:
        stop_pair(server, client)


def test_breaker_trip_evicts_cached_endpoint_connections():
    """On closed→open the ORB tears down pooled connections to the
    endpoint, so the eventual half-open probe starts from a fresh one."""
    server, client, stub, _ = make_pair(
        client_kwargs={"resilience": ResiliencePolicy(
            breaker=BreakerPolicy(min_calls=1, failure_threshold=0.5)
        )},
    )
    try:
        assert stub.echo("warm") == "ack:warm"
        assert client.connections.idle_count == 1
        bootstrap = stub._hd_ref.bootstrap
        b = client._breaker_for(bootstrap)
        b.record_failure()
        assert b.state == BREAKER_OPEN
        assert client.connections.idle_count == 0, (
            "opening the circuit left stale pooled connections behind"
        )
    finally:
        stop_pair(server, client)


def test_breaker_recovery_end_to_end():
    """Refusals trip the circuit; after the reset timeout one probe goes
    through, succeeds, and the circuit closes for good."""
    plan = FaultPlan(script={("connect", 0): "refuse",
                             ("connect", 1): "refuse"})
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={"resilience": ResiliencePolicy(
            breaker=BreakerPolicy(min_calls=2, failure_threshold=0.5,
                                  reset_timeout=0.05)
        )},
    )
    try:
        import time

        for _ in range(2):
            with pytest.raises(CommunicationError):
                stub.echo("x")
        with pytest.raises(CircuitOpenError):
            stub.echo("x")
        time.sleep(0.1)
        # Half-open: the scripted refusals are spent, the probe connects.
        assert stub.echo("probe") == "ack:probe"
        bootstrap = stub._hd_ref.bootstrap
        assert client._breaker_for(bootstrap).state == BREAKER_CLOSED
        assert stub.echo("steady") == "ack:steady"
    finally:
        stop_pair(server, client)


def test_breaker_transitions_are_traced():
    events = []
    plan = FaultPlan(connect_refuse=1.0)
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={
            "resilience": ResiliencePolicy(
                breaker=BreakerPolicy(min_calls=1, failure_threshold=0.5)
            ),
            "trace": lambda name, detail: events.append((name, detail)),
        },
    )
    try:
        with pytest.raises(CommunicationError):
            stub.echo("x")
        trips = [d for n, d in events if n == "resilience:breaker"]
        assert any(d.get("new") == BREAKER_OPEN for d in trips)
    finally:
        stop_pair(server, client)

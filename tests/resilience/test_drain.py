"""Orderly drain: ``stop(drain=...)``, BYE/CloseConnection, clean handoffs.

A draining server must finish what it admitted, refuse what arrives
late (as retryable sheds), announce the close on the wire (text2
``BYE``, GIOP CloseConnection), and leave clients — and their armed
flight recorders — treating the whole thing as routine, not a death.
"""

import asyncio
import threading
import time

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.call import Call
from repro.heidirmi.errors import CommunicationError, OverloadedError
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.transport import get_transport
from repro.observe import FlightControl, Observer
from repro.resilience import DEFAULT_RETRYABLE_KINDS
from repro.wire.events import NEED_DATA, CloseReceived
from repro.wire.giop import encode_close
from repro.wire.text import BYE_FRAME, Text2Wire

from tests.resilience.rig import (
    TYPE_ID,
    Echo_stub,
    EchoImpl,
    make_pair,
    registry,
    stop_pair,
)


def test_draining_is_a_retryable_kind():
    assert "draining" in DEFAULT_RETRYABLE_KINDS


# -- the wire frames ---------------------------------------------------------


def test_text2_machine_parses_bye_as_close():
    machine = Text2Wire(role="client")
    machine.receive_data(BYE_FRAME)
    assert type(machine.next_event()) is CloseReceived
    server = Text2Wire(role="server")
    assert server.emit_close() == BYE_FRAME


def test_giop_close_connection_round_trip():
    from repro.wire.giop import GiopWire

    machine = GiopWire(role="client")
    machine.receive_data(encode_close())
    assert type(machine.next_event()) is CloseReceived


# -- blocking server drain ---------------------------------------------------


def _slow_call_thread(stub, delay_ms=300):
    result = {}

    def call():
        try:
            result["value"] = stub.echo("slow", delay_ms=delay_ms)
        except Exception as exc:
            result["error"] = exc

    thread = threading.Thread(target=call, daemon=True)
    thread.start()
    time.sleep(0.1)  # let the call reach the server's dispatch
    return thread, result


@pytest.mark.parametrize("protocol_name", ("text2", "giop"))
def test_drain_finishes_inflight_and_leaves_no_postmortem(
        protocol_name, tmp_path):
    observer = Observer(flight=FlightControl(spool_dir=str(tmp_path)))
    server, client, stub, _ = make_pair(
        protocol=protocol_name, multiplex=True, transport="tcp",
        client_kwargs={"observer": observer},
    )
    try:
        thread, result = _slow_call_thread(stub)
        server.stop(drain=5.0)
        thread.join(timeout=5)
        # The in-flight call completed before the close frame went out.
        assert result.get("value") == "ack:slow"
        # The demultiplexer saw BYE/CloseConnection, not a channel
        # death: the armed ring spools nothing.
        time.sleep(0.1)  # let the demux thread observe the close
        assert list(tmp_path.iterdir()) == []
    finally:
        stop_pair(server, client)


def test_drain_sheds_late_requests_as_retryable():
    server, client, stub, _ = make_pair(
        protocol="text2", multiplex=True, transport="tcp",
        pipeline_workers=2,
    )
    stopper = None
    try:
        thread, result = _slow_call_thread(stub)
        stopper = threading.Thread(
            target=server.stop, kwargs={"drain": 5.0}, daemon=True
        )
        stopper.start()
        time.sleep(0.1)  # the drain flag is set; the slow call holds on
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("late")
        # The late call is handed back, not executed: either the typed
        # draining shed or (if the close won the race) the handoff.
        assert excinfo.value.kind in ("overloaded", "draining")
        thread.join(timeout=5)
        assert result.get("value") == "ack:slow"
    finally:
        if stopper is not None:
            stopper.join(timeout=5)
        stop_pair(server, client)


def test_drain_without_connections_is_immediate():
    server, client, stub, _ = make_pair(protocol="text2", transport="tcp")
    try:
        assert stub.echo("warm") == "ack:warm"
        started = time.monotonic()
        server.stop(drain=5.0)
        # Idle connections close orderly right away; no deadline wait.
        assert time.monotonic() - started < 2.0
        with pytest.raises(CommunicationError):
            stub.echo("after-stop")
    finally:
        stop_pair(server, client)


# -- the client handoff ------------------------------------------------------


@pytest.mark.parametrize("protocol_name", ("text2", "giop"))
def test_pending_calls_fail_as_draining_on_close_frame(protocol_name):
    """A raw server sends the close frame while a call is pending."""
    listener = get_transport("tcp").listen("127.0.0.1", 0)
    host, port = listener.address
    close_frame = (BYE_FRAME if protocol_name == "text2"
                   else encode_close())

    def serve():
        channel = listener.accept()
        if protocol_name == "text2":
            channel.recv_line()
        else:
            channel.recv_exact(12)  # one GIOP header's worth
        channel.send(close_frame)
        time.sleep(0.2)
        channel.close()

    acceptor = threading.Thread(target=serve, daemon=True)
    acceptor.start()
    client = Orb(transport="tcp", protocol=protocol_name, types=registry(),
                 multiplex=True)
    try:
        reference = ObjectReference(
            protocol="tcp", host=host, port=port,
            object_id="echo", type_id=TYPE_ID,
        )
        stub = Echo_stub(reference, client)
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("pending")
        assert excinfo.value.kind == "draining"
    finally:
        client.stop()
        listener.close()
        acceptor.join(timeout=5)


# -- the aio server ----------------------------------------------------------


def run_async(coroutine, timeout=30):
    from repro.wire.aio import get_event_loop

    return asyncio.run_coroutine_threadsafe(
        coroutine, get_event_loop()
    ).result(timeout)


@pytest.mark.parametrize("protocol_name", ("text2", "giop"))
def test_aio_server_drain_finishes_inflight_and_announces(protocol_name):
    from repro.wire.aio import AioClientConnection, AioOrbServer, get_event_loop

    types = registry()
    orb = Orb(transport="inproc", protocol=protocol_name, types=types).start()
    impl = EchoImpl()
    reference = orb.register(impl, type_id=TYPE_ID)
    server = AioOrbServer(orb)
    host, port = server.start()
    protocol = get_protocol(protocol_name)
    connection = run_async(AioClientConnection.open(protocol, host, port))
    try:
        call = Call(reference.stringify(), "echo",
                    marshaller=protocol.new_marshaller())
        call.put_string("slow")
        call.put_long(250)
        pending = asyncio.run_coroutine_threadsafe(
            connection.invoke(call), get_event_loop()
        )
        time.sleep(0.1)  # the dispatch is in the executor now
        server.stop(drain=5.0)
        # The in-flight call finished inside the drain window.
        assert pending.result(5).get_string() == "ack:slow"

        async def read_close():
            machine = connection._machine
            while True:
                event = machine.next_event()
                if event is NEED_DATA:
                    chunk = await connection._reader.read(65536)
                    if not chunk:
                        return "eof"
                    machine.receive_data(chunk)
                    continue
                return event

        # The reply was followed by the protocol's orderly-close frame.
        assert type(run_async(read_close())) is CloseReceived
    finally:
        run_async(connection.close())
        server.stop()
        orb.stop()


@pytest.mark.parametrize("protocol_name", ("text2", "giop"))
def test_aio_client_pending_fails_draining_on_close(protocol_name):
    from repro.wire.aio import AioClientConnection, get_event_loop

    listener = get_transport("tcp").listen("127.0.0.1", 0)
    host, port = listener.address
    close_frame = (BYE_FRAME if protocol_name == "text2"
                   else encode_close())
    ready = threading.Event()

    def serve():
        channel = listener.accept()
        ready.wait(5)
        channel.send(close_frame)
        time.sleep(0.2)
        channel.close()

    acceptor = threading.Thread(target=serve, daemon=True)
    acceptor.start()
    protocol = get_protocol(protocol_name)
    connection = run_async(AioClientConnection.open(protocol, host, port))
    target = ObjectReference(
        protocol="tcp", host=host, port=port,
        object_id="echo", type_id=TYPE_ID,
    ).stringify()
    try:
        call = Call(target, "echo", marshaller=protocol.new_marshaller())
        call.put_string("pending")
        call.put_long(0)
        pending = asyncio.run_coroutine_threadsafe(
            connection.invoke(call), get_event_loop()
        )
        time.sleep(0.05)
        ready.set()
        with pytest.raises(CommunicationError) as excinfo:
            pending.result(5)
        assert excinfo.value.kind == "draining"
    finally:
        run_async(connection.close())
        listener.close()
        acceptor.join(timeout=5)

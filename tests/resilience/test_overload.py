"""Overload control: admission, AIMD limits, shedding, retry budgets.

The controller and budget are pure state machines over an injectable
clock, so every unit test below is deterministic; the end-to-end tests
occupy a real server with a slow call and assert the shed reply's typed
``Overloaded`` error (and its retry-after hint) on every protocol.
"""

import random
import threading
import time

import pytest

from repro.heidirmi.errors import CommunicationError, OverloadedError
from repro.resilience import (
    AdmissionController,
    AdmissionPolicy,
    FaultPlan,
    ResiliencePolicy,
    RetryBudget,
    RetryBudgetPolicy,
    RetryPolicy,
)

from tests.resilience.rig import make_pair, stop_pair

PROTOCOLS = ("text", "text2", "giop")


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def controller(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return AdmissionController(AdmissionPolicy(**kwargs)), clock


# -- admission: bounded depth -----------------------------------------------


def test_admits_until_hard_cap_then_sheds():
    ctl, _ = controller(max_queue_depth=2)
    assert ctl.admit("op") is None
    assert ctl.admit("op") is None
    hint = ctl.admit("op")
    assert isinstance(hint, float)
    assert hint >= ctl.policy.retry_after_min
    assert ctl.shed_depth == 1
    assert ctl.depth == 2


def test_finished_releases_the_slot():
    ctl, _ = controller(max_queue_depth=1)
    assert ctl.admit("op") is None
    assert ctl.admit("op") is not None
    ctl.finished("op", 0.01)
    assert ctl.depth == 0
    assert ctl.admit("op") is None
    assert ctl.completed == 1


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(min_limit=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(decrease=1.5)


# -- admission: AIMD on sojourn latency -------------------------------------


def test_fast_completions_raise_the_limit_additively():
    ctl, _ = controller(max_queue_depth=10, initial_limit=2,
                        latency_target=1.0, increase=1.0)
    assert ctl.admit("op") is None
    ctl.finished("op", 0.01)
    assert ctl.limit == pytest.approx(2.5)  # 2 + 1/2
    assert ctl.admit("op") is None
    ctl.finished("op", 0.01)
    assert ctl.limit == pytest.approx(2.9)  # 2.5 + 1/2.5


def test_slow_completion_halves_the_limit_with_cooldown():
    ctl, clock = controller(max_queue_depth=10, initial_limit=4,
                            latency_target=0.1, decrease=0.5,
                            decrease_cooldown=5.0)
    ctl.admit("op")
    ctl.finished("op", 0.5)
    assert ctl.limit == pytest.approx(2.0)
    # A second over-target completion inside the cooldown does not
    # compound the decrease (one burst of stragglers, one halving).
    ctl.admit("op")
    ctl.finished("op", 0.5)
    assert ctl.limit == pytest.approx(2.0)
    clock.now += 6.0
    ctl.admit("op")
    ctl.finished("op", 0.5)
    assert ctl.limit == pytest.approx(1.0)


def test_limit_never_drops_below_min():
    ctl, clock = controller(max_queue_depth=10, initial_limit=2,
                            latency_target=0.1, min_limit=1,
                            decrease_cooldown=0.0)
    for _ in range(5):
        clock.now += 1.0
        ctl.admit("op")
        ctl.finished("op", 9.0)
    assert ctl.limit == pytest.approx(1.0)


# -- admission: cost-aware shedding -----------------------------------------


def test_expensive_ops_shed_first_between_limit_and_cap():
    # increase=0 freezes the AIMD limit so only the cost logic moves.
    ctl, _ = controller(max_queue_depth=10, initial_limit=1,
                        latency_target=10.0, increase=0.0)
    ctl.admit("heavy")
    ctl.finished("heavy", 0.5, service_time=0.5)
    ctl.admit("light")
    ctl.finished("light", 0.01, service_time=0.01)
    # Occupy the single adaptive slot.
    assert ctl.admit("light") is None
    # Above the limit: heavy (EWMA cost over the mean) is shed, light
    # and never-seen operations still get through.
    assert ctl.admit("heavy") is not None
    assert ctl.shed_limit == 1
    assert ctl.admit("light") is None
    assert ctl.admit("never-seen") is None
    assert ctl.depth == 3


def test_cost_blind_mode_sheds_everything_over_the_limit():
    ctl, _ = controller(max_queue_depth=10, initial_limit=1,
                        latency_target=10.0, increase=0.0,
                        cost_aware=False)
    ctl.admit("light")
    ctl.finished("light", 0.01, service_time=0.01)
    assert ctl.admit("light") is None
    assert ctl.admit("light") is not None


# -- admission: queue age ----------------------------------------------------


def test_over_age_and_aged_shed_accounting():
    ctl, _ = controller(max_queue_depth=10, max_queue_age=0.05)
    assert not ctl.over_age(0.01)
    assert ctl.over_age(0.06)
    hint = ctl.shed_aged()
    assert hint >= ctl.policy.retry_after_min
    assert ctl.shed_age == 1
    no_age, _ = controller(max_queue_depth=10)
    assert not no_age.over_age(99.0)


# -- admission: the retry-after hint ----------------------------------------


def test_retry_after_hint_prices_the_backlog():
    ctl, _ = controller(max_queue_depth=10, initial_limit=4,
                        latency_target=1.0, increase=0.0)
    for _ in range(3):
        assert ctl.admit("op") is None
    ctl.finished("op", 0.2)  # seeds the sojourn EWMA at 0.2s
    # backlog of 2 ahead + self, at 0.2s each over parallelism 4.
    assert ctl.shed_draining_one() == pytest.approx(0.2 * 3 / 4)
    assert ctl.shed_draining == 1


def test_retry_after_hint_is_clamped():
    ctl, _ = controller(max_queue_depth=10, initial_limit=1,
                        latency_target=100.0, increase=0.0,
                        retry_after_min=0.02, retry_after_max=0.5)
    # No EWMA yet: the floor.
    ctl.admit("op")
    assert ctl.shed_draining_one() == 0.02
    # Enormous backlog estimate: the ceiling.
    ctl.finished("op", 60.0)
    assert ctl.shed_draining_one() == 0.5


def test_snapshot_shape():
    ctl, _ = controller(max_queue_depth=8, initial_limit=4)
    ctl.admit("op")
    snap = ctl.snapshot()
    assert snap["depth"] == 1
    assert snap["limit"] == 4.0
    assert snap["max_queue_depth"] == 8
    assert snap["accepted"] == 1
    assert snap["shed"] == {"depth": 0, "limit": 0, "age": 0, "draining": 0}
    assert snap["sojourn_ewma_ms"] is None
    assert snap["overloaded"] is False
    assert ctl.shed_total() == 0


# -- retry budgets -----------------------------------------------------------


def test_budget_spends_then_denies():
    budget = RetryBudgetPolicy(capacity=2, refill_rate=0.0).build()
    assert budget.take()
    assert budget.take()
    assert not budget.take()
    assert budget.spent == 2
    assert budget.denied == 1


def test_successes_refill_fractionally_and_clamp_at_capacity():
    budget = RetryBudgetPolicy(capacity=2, refill_rate=0.5, initial=0).build()
    assert not budget.take()
    budget.record_success()
    assert not budget.take()  # 0.5 tokens: still under a whole one
    budget.record_success()
    assert budget.take()  # 1.0 token
    for _ in range(10):
        budget.record_success()
    assert budget.tokens == pytest.approx(2.0)  # clamped at capacity
    snap = budget.snapshot()
    assert snap["capacity"] == 2.0
    assert snap["spent"] == 1
    assert snap["denied"] == 2


def test_budget_policy_validation():
    with pytest.raises(ValueError):
        RetryBudgetPolicy(capacity=0)
    with pytest.raises(ValueError):
        RetryBudgetPolicy(refill_rate=-0.1)
    assert isinstance(RetryBudgetPolicy().build(), RetryBudget)


# -- end to end: the typed Overloaded reply ----------------------------------


def _occupy(stub, delay_ms=300):
    """A thread holding the server's one admission slot with a slow call."""
    result = {}

    def call():
        try:
            result["value"] = stub.echo("slow", delay_ms=delay_ms)
        except Exception as exc:  # pragma: no cover - surfaced by the test
            result["error"] = exc

    thread = threading.Thread(target=call, daemon=True)
    thread.start()
    time.sleep(0.1)  # let the slow call get admitted
    return thread, result


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
def test_shed_reply_surfaces_as_overloaded_error(protocol_name):
    server, client, stub, _ = make_pair(
        protocol=protocol_name, transport="tcp",
        server_kwargs={"admission": AdmissionPolicy(
            max_queue_depth=1, latency_target=60.0)},
    )
    try:
        thread, result = _occupy(stub)
        with pytest.raises(OverloadedError) as excinfo:
            stub.echo("excess")
        exc = excinfo.value
        assert exc.kind == "overloaded"
        assert exc.retry_after is not None
        assert exc.retry_after >= 0.001
        assert "server overloaded" in str(exc)
        assert "ra=" not in str(exc)  # the hint token is stripped
        thread.join(timeout=5)
        assert result.get("value") == "ack:slow"
        snap = server._admission.snapshot()
        assert snap["shed"]["depth"] == 1
        assert snap["accepted"] >= 1
    finally:
        stop_pair(server, client)


def test_retry_after_hint_floors_the_backoff():
    sleeps = []
    retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                        rng=random.Random(0), sleep=sleeps.append)
    server, client, stub, _ = make_pair(
        protocol="text2", transport="tcp",
        server_kwargs={"admission": AdmissionPolicy(
            max_queue_depth=1, latency_target=60.0)},
        client_kwargs={"resilience": ResiliencePolicy(retry=retry)},
    )
    try:
        thread, result = _occupy(stub)
        # base_delay=0 means the jittered delay is 0; anything recorded
        # is the server's retry-after hint flooring the backoff.
        with pytest.raises(OverloadedError):
            stub.echo("excess", idempotent=True)
        assert len(sleeps) == 1
        assert sleeps[0] >= 0.001
        thread.join(timeout=5)
        assert result.get("value") == "ack:slow"
    finally:
        stop_pair(server, client)


def test_overloaded_counts_on_breaker_without_tripping_it():
    from repro.resilience import BREAKER_CLOSED, BreakerPolicy

    retry = RetryPolicy(max_attempts=1)
    server, client, stub, _ = make_pair(
        protocol="text2", transport="tcp",
        server_kwargs={"admission": AdmissionPolicy(
            max_queue_depth=1, latency_target=60.0)},
        client_kwargs={"resilience": ResiliencePolicy(
            retry=retry,
            breaker=BreakerPolicy(min_calls=2, failure_threshold=0.5),
        )},
    )
    try:
        thread, result = _occupy(stub)
        for _ in range(4):
            with pytest.raises(OverloadedError):
                stub.echo("excess", idempotent=True)
        breaker = next(iter(client._breakers.values()))
        # Four consecutive sheds: counted, but the endpoint answered —
        # the failure window stays clean and the circuit stays closed.
        assert breaker.overloaded_count == 4
        assert breaker.state == BREAKER_CLOSED
        thread.join(timeout=5)
        assert result.get("value") == "ack:slow"
    finally:
        stop_pair(server, client)


# -- end to end: retry budgets gate retries ----------------------------------


def test_exhausted_budget_stops_retries():
    events = []
    plan = FaultPlan(script={("send", 0): "disconnect"})
    retry = RetryPolicy(max_attempts=4, rng=random.Random(0),
                        sleep=lambda _s: None)
    server, client, stub, _ = make_pair(
        protocol="text2", transport="tcp", plan=plan,
        client_kwargs={
            "resilience": ResiliencePolicy(
                retry=retry,
                retry_budget=RetryBudgetPolicy(capacity=2, refill_rate=0.0),
            ),
            "trace": lambda name, detail: events.append((name, detail)),
        },
    )
    try:
        # The script kills the first send on *every* channel, so each
        # attempt fails and wants a retry.  Capacity 2 with no refill:
        # the first call burns both tokens, then retries stop cold.
        with pytest.raises(CommunicationError):
            stub.echo("one", idempotent=True)
        with pytest.raises(CommunicationError):
            stub.echo("two", idempotent=True)
        retries = [d for n, d in events if n == "resilience:retry"]
        assert len(retries) == 2
        budget = next(iter(client._retry_budgets.values()))
        snap = budget.snapshot()
        assert snap["spent"] == 2
        assert snap["denied"] >= 1
    finally:
        stop_pair(server, client)


def test_successes_earn_back_retries():
    retry = RetryPolicy(max_attempts=2, rng=random.Random(0),
                        sleep=lambda _s: None)
    server, client, stub, _ = make_pair(
        protocol="text2", transport="tcp",
        client_kwargs={"resilience": ResiliencePolicy(
            retry=retry,
            retry_budget=RetryBudgetPolicy(capacity=2, refill_rate=0.5,
                                           initial=0),
        )},
    )
    try:
        assert stub.echo("a") == "ack:a"
        budget = next(iter(client._retry_budgets.values()))
        # One success at refill 0.5: still short of a whole token.
        assert not budget.take()
        assert stub.echo("b") == "ack:b"
        # The second success completes the token (0.5 + 0.5 earned,
        # minus nothing spent since the failed take above is free).
        assert budget.take()
    finally:
        stop_pair(server, client)

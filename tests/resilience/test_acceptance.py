"""End-to-end acceptance: the full policy stack under a seeded 5% plan.

The contract from the issue: under a deterministic 5%-per-event fault
plan, idempotent calls with retry configured succeed >= 99% of the
time, every failure carries a well-known kind, and nothing ever hangs
past its deadline (plus scheduling slack).  Exclusive and multiplexed
paths alike.
"""

import random
import time

import pytest

from repro.heidirmi.errors import CommunicationError, DeadlineExceeded
from repro.resilience import (
    DEFAULT_RETRYABLE_KINDS,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
)

from tests.resilience.rig import make_pair, stop_pair

N_CALLS = 300
DEADLINE = 5.0
EPSILON = 1.5

#: Every kind a chaos-injected failure may legitimately surface as.
KNOWN_KINDS = {
    "connect-refused", "connect-timeout", "send-failed", "recv-failed",
    "peer-closed", "channel-closed", "reader-died", "peer-protocol-error",
    "deadline-exceeded",
}

#: For *idempotent* traffic a lost/garbled reply is safe to retry: the
#: default whitelist plus the two kinds a poisoned reply stream maps to.
RETRYABLE = frozenset(DEFAULT_RETRYABLE_KINDS | {"peer-protocol-error"})


def five_percent_plan(seed):
    return FaultPlan(seed=seed, connect_refuse=0.05, disconnect=0.05,
                     garbage=0.05)


def run_workload(multiplex, seed):
    plan = five_percent_plan(seed)
    retry = RetryPolicy(max_attempts=4, retryable_kinds=RETRYABLE,
                        rng=random.Random(seed), sleep=lambda s: None)
    server, client, stub, _ = make_pair(
        protocol="text2", multiplex=multiplex, plan=plan,
        client_kwargs={"resilience": ResiliencePolicy(
            retry=retry, default_deadline=DEADLINE
        )},
    )
    outcomes = []
    try:
        for index in range(N_CALLS):
            started = time.monotonic()
            try:
                result = stub.echo(f"c{index}", idempotent=True)
                assert result == f"ack:c{index}", (
                    f"cross-wired under faults: {result!r}"
                )
                outcomes.append("ok")
            except CommunicationError as exc:
                assert exc.kind in KNOWN_KINDS, (
                    f"fault surfaced with unknown kind {exc.kind!r}"
                )
                outcomes.append(exc.kind)
            elapsed = time.monotonic() - started
            assert elapsed < DEADLINE + EPSILON, (
                f"call {index} took {elapsed:.2f}s, past its {DEADLINE}s "
                "deadline plus slack"
            )
    finally:
        stop_pair(server, client)
    return outcomes, plan


@pytest.mark.parametrize("multiplex", [False, True],
                         ids=["exclusive", "multiplexed"])
def test_idempotent_traffic_survives_five_percent_faults(multiplex):
    outcomes, plan = run_workload(multiplex, seed=42)
    successes = sum(1 for outcome in outcomes if outcome == "ok")
    assert plan.injected() > 0, "the 5% plan injected nothing in 300 calls"
    assert successes >= 0.99 * N_CALLS, (
        f"only {successes}/{N_CALLS} succeeded under the 5% plan; "
        f"failures: {[o for o in outcomes if o != 'ok'][:10]}"
    )


def test_exclusive_run_is_deterministic_across_replays():
    """Same seed, same call sequence, same outcomes and fault counts —
    the property the CI chaos-smoke job's 3x loop relies on."""
    first_outcomes, first_plan = run_workload(False, seed=7)
    second_outcomes, second_plan = run_workload(False, seed=7)
    assert first_outcomes == second_outcomes
    assert first_plan.stats == second_plan.stats


def test_unprotected_traffic_actually_fails_under_the_same_plan():
    """Control: without retry the same plan visibly hurts — proving the
    resilience layer (not luck) carried the test above."""
    plan = five_percent_plan(seed=42)
    server, client, stub, _ = make_pair(protocol="text2", plan=plan)
    failures = 0
    try:
        for index in range(N_CALLS):
            try:
                stub.echo(f"c{index}")
            except CommunicationError:
                failures += 1
    finally:
        stop_pair(server, client)
    assert failures > 0, (
        "the control run saw no faults; the acceptance test is vacuous"
    )


def test_deadline_holds_even_when_retries_are_exhausted():
    """With 100% refusals and generous attempts, the deadline still
    bounds the whole invocation."""
    plan = FaultPlan(connect_refuse=1.0)
    server, client, stub, _ = make_pair(
        plan=plan,
        client_kwargs={"resilience": ResiliencePolicy(
            retry=RetryPolicy(max_attempts=50, base_delay=0.05,
                              rng=random.Random(0)),
        )},
    )
    try:
        started = time.monotonic()
        with pytest.raises((CommunicationError, DeadlineExceeded)):
            stub.echo("x", idempotent=True, deadline=0.4)
        assert time.monotonic() - started < 0.4 + EPSILON
    finally:
        stop_pair(server, client)

"""The chaos harness itself: determinism, fault surfaces, correct kinds."""

import time

import pytest

from repro.heidirmi.errors import CommunicationError
from repro.resilience import ChaosChannel, ChaosTransport, FaultPlan
from repro.resilience.chaos import install_chaos

from tests.resilience.rig import make_pair, stop_pair


class FakeInnerChannel:
    closed = False
    peer = "fake:0"

    def __init__(self):
        self.sent = []

    def send(self, data):
        self.sent.append(bytes(data))

    def recv_line(self):
        return bytearray(b"RET OK\n")

    def close(self):
        self.closed = True


# -- the deterministic draw -------------------------------------------------


def test_decisions_are_pure_functions_of_event_identity():
    plan_a = FaultPlan(seed=3, disconnect=0.3, garbage=0.3)
    plan_b = FaultPlan(seed=3, disconnect=0.3, garbage=0.3)
    events = [("send", channel, index)
              for channel in range(1, 5) for index in range(50)]
    assert ([plan_a.decide(*event) for event in events]
            == [plan_b.decide(*event) for event in events])
    assert plan_a.stats == plan_b.stats


def test_different_seeds_give_different_schedules():
    schedule = lambda seed: [  # noqa: E731 - tiny local helper
        FaultPlan(seed=seed, disconnect=0.5).decide("send", 1, index)
        for index in range(64)
    ]
    assert schedule(1) != schedule(2)


def test_script_pins_specific_events():
    plan = FaultPlan(script={("send", 2): "disconnect"})
    assert plan.decide("send", 1, 0) is None
    assert plan.decide("send", 1, 1) is None
    assert plan.decide("send", 1, 2) == "disconnect"
    assert plan.stats["send:disconnect"] == 1
    assert plan.stats["send:events"] == 3
    assert plan.injected() == 1


def test_zero_rates_inject_nothing():
    plan = FaultPlan(seed=9)
    assert all(plan.decide("send", 1, index) is None for index in range(100))
    assert plan.injected() == 0


# -- the channel wrapper ----------------------------------------------------


def test_disconnect_fault_closes_channel_with_send_failed():
    inner = FakeInnerChannel()
    channel = ChaosChannel(inner, FaultPlan(script={("send", 0): "disconnect"}), 1)
    with pytest.raises(CommunicationError) as excinfo:
        channel.send(b"CALL x y\n")
    assert excinfo.value.kind == "send-failed"
    assert inner.closed
    assert inner.sent == []


def test_partial_write_sends_half_then_fails():
    inner = FakeInnerChannel()
    channel = ChaosChannel(inner, FaultPlan(script={("send", 0): "partial"}), 1)
    payload = b"CALL 12345678\n"
    with pytest.raises(CommunicationError) as excinfo:
        channel.send(payload)
    assert excinfo.value.kind == "send-failed"
    assert inner.closed
    assert inner.sent == [payload[: len(payload) // 2]]


def test_garbage_fault_poisons_the_read():
    inner = FakeInnerChannel()
    channel = ChaosChannel(inner, FaultPlan(script={("recv", 0): "garbage"}), 1)
    line = channel.recv_line()
    assert bytes(line) != b"RET OK\n"
    # The next read is clean again.
    assert bytes(channel.recv_line()) == b"RET OK\n"


def test_clean_events_delegate_to_inner():
    inner = FakeInnerChannel()
    channel = ChaosChannel(inner, FaultPlan(), 1)
    channel.send(b"data")
    assert inner.sent == [b"data"]
    assert channel.peer == "fake:0"  # __getattr__ fallthrough


def test_chaos_transport_wraps_any_registered_transport():
    plan = FaultPlan(script={("connect", 0): "refuse"})
    name = install_chaos("inproc", plan)
    from repro.heidirmi.transport import get_transport

    transport = get_transport(name)
    assert isinstance(transport, ChaosTransport)
    with pytest.raises(CommunicationError) as excinfo:
        transport.connect("nowhere", 1)
    assert excinfo.value.kind == "connect-refused"


# -- fault kinds through the full stack -------------------------------------


def test_connect_refused_vs_connect_timeout_kinds():
    """The two connect failure modes keep distinct kinds end to end."""
    plan = FaultPlan(script={("connect", 0): "refuse",
                             ("connect", 1): "timeout"})
    server, client, stub, _ = make_pair(plan=plan)
    try:
        with pytest.raises(CommunicationError) as refused:
            stub.echo("a")
        assert refused.value.kind == "connect-refused"
        with pytest.raises(CommunicationError) as timed_out:
            stub.echo("b")
        assert timed_out.value.kind == "connect-timeout"
    finally:
        stop_pair(server, client)


def test_mid_frame_disconnect_surfaces_as_send_failed():
    # A script applies to the matching event of *every* channel: the
    # second call proves the fault repeats on the fresh connection too.
    plan = FaultPlan(script={("send", 1): "disconnect"})
    server, client, stub, _ = make_pair(plan=plan)
    try:
        assert stub.echo("warm") == "ack:warm"
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("x")
        assert excinfo.value.kind == "send-failed"
        assert plan.stats["send:disconnect"] == 1
        # The cache discarded the poisoned connection; the replacement
        # channel replays the script (send event 1 dies again).
        assert stub.echo("y") == "ack:y"
        with pytest.raises(CommunicationError):
            stub.echo("z")
    finally:
        stop_pair(server, client)


def test_garbage_reply_exclusive_surfaces_as_peer_protocol_error():
    plan = FaultPlan(script={("recv", 1): "garbage"})
    server, client, stub, _ = make_pair(plan=plan)
    try:
        assert stub.echo("warm") == "ack:warm"
        with pytest.raises(CommunicationError) as excinfo:
            stub.echo("x")
        assert excinfo.value.kind == "peer-protocol-error"
        # The poisoned channel was closed and discarded; a fresh one
        # serves its first (clean) read normally.
        assert stub.echo("y") == "ack:y"
    finally:
        stop_pair(server, client)


def test_garbage_reply_multiplexed_fails_pending_as_reader_died():
    """A garbage frame kills the demux reader; calls already pending in
    the completion table fail with kind="reader-died", not a hang."""
    # recv event 0 is the first (clean) reply; the reader's next read
    # draws garbage while the second call is still pending.
    plan = FaultPlan(script={("recv", 1): "garbage"})
    server, client, stub, _ = make_pair(multiplex=True, plan=plan)
    try:
        first = stub.echo_async("one", delay_ms=150)
        second = stub.echo_async("two", delay_ms=150)
        assert first.result(timeout=10).get_string() == "ack:one"
        with pytest.raises(CommunicationError) as excinfo:
            second.result(timeout=10)
        assert excinfo.value.kind == "reader-died"
        # The cache replaces the dead shared channel transparently.
        assert stub.echo("again") == "ack:again"
        assert client.connections.stats["opened"] == 2
    finally:
        stop_pair(server, client)


def test_delay_fault_slows_but_succeeds():
    plan = FaultPlan(script={("send", 0): "delay"}, delay_s=0.05)
    server, client, stub, _ = make_pair(plan=plan)
    try:
        assert stub.echo("x") == "ack:x"
        assert plan.stats["send:delay"] == 1
    finally:
        stop_pair(server, client)


def test_same_plan_same_run_twice_is_identical():
    """Two fresh rigs replaying the same call sequence under same-seed
    plans inject the same faults and end with identical stats."""

    def run(seed):
        plan = FaultPlan(seed=seed, connect_refuse=0.1, disconnect=0.1,
                         garbage=0.1)
        server, client, stub, _ = make_pair(plan=plan)
        outcomes = []
        try:
            for index in range(60):
                try:
                    outcomes.append(stub.echo(f"c{index}"))
                except CommunicationError as exc:
                    outcomes.append(f"!{exc.kind}")
        finally:
            stop_pair(server, client)
        return outcomes, dict(plan.stats)

    outcomes_a, stats_a = run(seed=11)
    outcomes_b, stats_b = run(seed=11)
    assert outcomes_a == outcomes_b
    assert stats_a == stats_b
    assert sum(1 for o in outcomes_a if o.startswith("!")) > 0, (
        "the 10% plan injected nothing in 60 calls — seed draw broken?"
    )


def test_slow_fault_injects_latency_without_corruption():
    plan = FaultPlan(script={("recv", 0): "slow"}, slow_s=0.15)
    server, client, stub, _ = make_pair(plan=plan)
    try:
        started = time.monotonic()
        assert stub.echo("x") == "ack:x"
        # The scripted slow read stalled the reply, then delivered the
        # real bytes untouched — latency injection, not corruption.
        assert time.monotonic() - started >= 0.14
        assert plan.stats["recv:slow"] == 1
        assert plan.injected("recv") == 1
    finally:
        stop_pair(server, client)


def test_slow_rate_draws_deterministically():
    plan_a = FaultPlan(seed=5, slow=0.3)
    plan_b = FaultPlan(seed=5, slow=0.3)
    draws_a = [plan_a.decide("recv", 1, index) for index in range(40)]
    draws_b = [plan_b.decide("recv", 1, index) for index in range(40)]
    assert draws_a == draws_b
    assert draws_a.count("slow") > 0

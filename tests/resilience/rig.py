"""Shared test rig: an echo service wired through a chaos transport.

Every test builds a (server, client, stub) triple with
:func:`make_pair`; passing a :class:`FaultPlan` routes the client's
connections through :func:`install_chaos`, so faults hit the wire
below whichever protocol the test parametrizes.
"""

import threading
import time

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.serialize import TypeRegistry
from repro.resilience import Deadline, install_chaos

TYPE_ID = "IDL:Res/Echo:1.0"


class Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, token, delay_ms=0, idempotent=False, deadline=None):
        call = self._new_call("echo", idempotent=idempotent)
        call.put_string(token)
        call.put_long(delay_ms)
        if deadline is not None:
            call.deadline = Deadline.coerce(deadline)
        return self._invoke(call).get_string()

    def echo_async(self, token, delay_ms=0):
        call = self._new_call("echo")
        call.put_string(token)
        call.put_long(delay_ms)
        return self._hd_orb.invoke_async(self._hd_ref, call)

    def note(self, token):
        call = self._new_call("note", oneway=True)
        call.put_string(token)
        self._invoke(call)


class Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"), ("note", "_op_note"))

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string(), call.get_long()))

    def _op_note(self, call, reply):
        self.impl.note(call.get_string())


class EchoImpl:
    def __init__(self):
        self.echoed = []
        self.noted = []
        self._lock = threading.Lock()

    def echo(self, token, delay_ms):
        if delay_ms:
            time.sleep(delay_ms / 1000.0)
        with self._lock:
            self.echoed.append(token)
        return "ack:" + token

    def note(self, token):
        with self._lock:
            self.noted.append(token)


def registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Echo_stub,
                             skeleton_class=Echo_skel)
    return types


def make_pair(protocol="text2", multiplex=False, plan=None, transport="inproc",
              pipeline_workers=0, wrap_accept=False, server_kwargs=None,
              client_kwargs=None):
    """(server, client, stub, impl) with optional chaos below the wire.

    The server Orb is built on the chaos-wrapped transport name, so the
    references it exports route every client connection through the
    chaos layer; with ``wrap_accept=False`` (the default) the server's
    own accepted channels stay clean.
    """
    if plan is not None:
        transport = install_chaos(transport, plan, wrap_accept=wrap_accept)
    types = registry()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers,
                 **(server_kwargs or {})).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=multiplex, **(client_kwargs or {}))
    impl = EchoImpl()
    stub = client.resolve(server.register(impl, type_id=TYPE_ID).stringify())
    return server, client, stub, impl


def stop_pair(server, client):
    client.stop()
    server.stop()

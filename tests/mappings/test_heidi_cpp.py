"""Tests for the HeidiRMI C++ mapping pack — pins the paper's Fig. 3."""

import pytest

from repro.idl import parse
from repro.mappings import get_pack

#: The generated interface-class header for the paper's A.idl, matching
#: Fig. 3 of the paper line for line.  Differences from the figure are
#: what a real compiler requires: forward declarations up front, and
#: HdS defined before HdA (the paper could show HdA first because it
#: assumed HdS "were existing Heidi interface classes").
FIG3_GOLDEN = """\
/* File A.hh */
class HdA;
class HdS;
// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };
// IDL:Heidi/SSequence:1.0
typedef HdList<HdS> HdSSequence;
typedef HdListIterator<HdS> HdSSequenceIter;
// IDL:Heidi/S:1.0
class HdS
{
public:
  virtual ~HdS() { }
};
// IDL:Heidi/A:1.0
class HdA : virtual public HdS
{
public:
  virtual void f(HdA*) = 0;
  virtual void g(HdS*) = 0;
  virtual void p(long l = 0) = 0;
  virtual void q(HdStatus s = Start) = 0;
  virtual void s(XBool b = XTrue) = 0;
  virtual void t(HdSSequence*) = 0;
  virtual HdStatus GetButton() = 0;
  virtual ~HdA() { }
};
"""


@pytest.fixture(scope="module")
def pack():
    return get_pack("heidi_cpp")


@pytest.fixture(scope="module")
def generated(pack):
    from tests.conftest import PAPER_IDL

    spec = parse(PAPER_IDL, filename="A.idl")
    return pack.generate(spec).files()


class TestFig3Golden:
    def test_header_matches_golden(self, generated):
        assert generated["A.hh"] == FIG3_GOLDEN

    def test_no_corba_types_anywhere(self, generated):
        """The defining property of the custom mapping (paper §3.1):
        'no CORBA-specific types are utilized'."""
        for text in generated.values():
            assert "CORBA::" not in text
            assert "_var" not in text
            assert "_ptr" not in text


class TestMappingRules:
    def test_type_table_matches_table1_alternate_column(self, pack):
        assert pack.type_table["long"] == "long"
        assert pack.type_table["boolean"] == "XBool"
        assert pack.type_table["float"] == "float"

    def test_class_name_mapping(self):
        from repro.mappings.heidi_cpp import map_class_name

        assert map_class_name("Heidi::A") == "HdA"
        assert map_class_name("Status") == "HdStatus"

    def test_default_value_mapping(self):
        from repro.mappings.heidi_cpp import map_default

        assert map_default("TRUE", None) == "XTrue"
        assert map_default("FALSE", None) == "XFalse"
        assert map_default("Heidi::Start", None) == "Start"
        assert map_default("0", None) == "0"


class TestStubsAndSkeletons:
    def test_stub_reflects_inheritance(self, generated):
        text = generated["A_stubs.hh"]
        assert "class HdA_stub : virtual public HdA, virtual public HdS_stub" in text

    def test_baseless_stub_inherits_hdstub(self, generated):
        text = generated["A_stubs.hh"]
        assert "class HdS_stub : virtual public HdS, virtual public HdStub" in text

    def test_incopy_marshals_by_value(self, generated):
        text = generated["A_stubs.cc"]
        assert "call.putObjectByValue(s);" in text

    def test_skeleton_delegates_not_inherits(self, generated):
        """Fig. 2: the skeleton holds an impl pointer; it does NOT
        inherit the abstract interface class."""
        text = generated["A_skels.hh"]
        assert "HdA* impl_;" in text
        assert "class HdA_skel : public HdS_skel" in text
        assert "virtual public HdA" not in text

    def test_skeleton_recursive_dispatch(self, generated):
        text = generated["A_skels.cc"]
        assert "if (HdS_skel::dispatch(call, reply)) return XTrue;" in text

    def test_skeleton_dispatch_uses_string_comparison(self, generated):
        """The generated C++ uses the strcmp chain the paper criticises —
        the optimized dispatchers live in the runtime and benches."""
        text = generated["A_skels.cc"]
        assert 'strcmp(op, "f")' in text


class TestAdditionalConstructs:
    def test_struct_generation(self):
        spec = parse("module M { struct P { long x; string s; }; };")
        files = get_pack("heidi_cpp").generate(spec).files()
        header = files["generated.hh"]
        assert "struct HdP {" in header
        assert "long x;" in header
        assert "HdString s;" in header

    def test_multiple_inheritance_class_line(self):
        spec = parse(
            "interface A { }; interface B { }; interface C : A, B { };"
        )
        files = get_pack("heidi_cpp").generate(spec).files()
        assert (
            "class HdC : virtual public HdA, virtual public HdB"
            in files["generated.hh"]
        )

    def test_writable_attribute_gets_setter(self):
        spec = parse("interface I { attribute long level; };")
        files = get_pack("heidi_cpp").generate(spec).files()
        header = files["generated.hh"]
        assert "virtual long GetLevel() = 0;" in header
        assert "virtual void SetLevel(long) = 0;" in header


class TestMarshalHelpers:
    """The per-interface marshal helpers Fig. 3 omits (paper §3.1)."""

    def test_marshal_file_generated(self, generated):
        assert "A_marshal.cc" in generated

    def test_serializable_dynamic_check(self, generated):
        text = generated["A_marshal.cc"]
        assert "HdIsA(obj, HdSerializable::TypeId)" in text
        assert "((HdSerializable*) obj)->marshal(call);" in text

    def test_helpers_per_interface(self, generated):
        text = generated["A_marshal.cc"]
        assert "void HdMarshalHdA(HdCall& call, HdA* obj" in text
        assert "HdA* HdUnmarshalHdA(HdCall& call)" in text
        assert "void HdMarshalHdS(HdCall& call, HdS* obj" in text

    def test_unmarshal_uses_reference_type_information(self, generated):
        """'the type information contained in the object reference is
        utilized to create a stub of the appropriate type'."""
        text = generated["A_marshal.cc"]
        assert "HdCreateStub(ref)" in text


class TestGeneratedCppCompiles:
    """The generated C++ is real C++: g++ accepts it against the
    pack's runtime headers (the 'generic ORB functionality provided by
    an ORB library' of §4.2)."""

    gpp = __import__("shutil").which("g++")

    @pytest.mark.skipif(gpp is None, reason="g++ not installed")
    @pytest.mark.parametrize("source", ["A_stubs.cc", "A_skels.cc",
                                        "A_marshal.cc"])
    def test_paper_example_compiles(self, generated, tmp_path, source):
        import subprocess

        for name, text in generated.items():
            target = tmp_path / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        result = subprocess.run(
            ["g++", "-fsyntax-only", "-I", str(tmp_path),
             "-I", str(tmp_path / "runtime"), str(tmp_path / source)],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr

    @pytest.mark.skipif(gpp is None, reason="g++ not installed")
    def test_multiple_inheritance_compiles(self, tmp_path):
        import subprocess

        spec = parse(
            "interface Alpha { void fa(); };"
            "interface Beta { long fb(in string s); };"
            "interface Gamma : Alpha, Beta { void fg(in Gamma g); };",
            filename="mi.idl",
        )
        sink = get_pack("heidi_cpp").generate(spec)
        sink.write_to(str(tmp_path))
        for source in ("mi_stubs.cc", "mi_skels.cc", "mi_marshal.cc"):
            result = subprocess.run(
                ["g++", "-fsyntax-only", "-I", str(tmp_path),
                 "-I", str(tmp_path / "runtime"), str(tmp_path / source)],
                capture_output=True, text=True, timeout=120,
            )
            assert result.returncode == 0, (source, result.stderr)

    def test_runtime_headers_shipped(self, generated):
        for header in ("runtime/HdTypes.hh", "runtime/HdStub.hh",
                       "runtime/HdSkel.hh", "runtime/HdSerializable.hh"):
            assert header in generated

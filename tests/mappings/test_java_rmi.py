"""Tests for the HeidiRMI Java mapping pack (paper §4.2).

Beyond golden checks, the generated Java is compiled with javac and run
as a live client of the Python HeidiRMI ORB when a JDK is installed.
"""

import os
import shutil
import subprocess

import pytest

from repro.idl import parse
from repro.mappings import get_pack

javac = shutil.which("javac")
java = shutil.which("java")
needs_jdk = pytest.mark.skipif(javac is None or java is None,
                               reason="JDK not installed")


@pytest.fixture(scope="module")
def pack():
    return get_pack("java_rmi")


@pytest.fixture(scope="module")
def generated(pack):
    from tests.conftest import PAPER_IDL

    spec = parse(PAPER_IDL, filename="A.idl")
    return pack.generate(spec).files()


class TestStructure:
    def test_one_file_per_interface(self, generated):
        for name in ("HdA.java", "HdS.java", "HdA_stub.java",
                     "HdS_stub.java", "HdStatus.java"):
            assert name in generated

    def test_runtime_library_shipped(self, generated):
        for name in ("HdCall.java", "HdConnector.java", "HdObjRef.java",
                     "HdStub.java", "HdWire.java", "HdRemoteException.java"):
            assert name in generated

    def test_enum_as_int_constants(self, generated):
        """Pre-Java-5: enums are final int constants plus the MEMBERS
        name table the wire format needs."""
        text = generated["HdStatus.java"]
        assert "public static final int Start = 0;" in text
        assert "public static final int Stop = 1;" in text
        assert 'public static final String[] MEMBERS = {"Start", "Stop"};' in text

    def test_class_naming_matches_cpp_mapping(self, generated):
        """§4.2: 'similar to the HeidiRMI C++ mapping'."""
        assert "public abstract class HdA extends HdS" in generated["HdA.java"]

    def test_stub_chain(self, generated):
        assert "public class HdA_stub extends HdS_stub" in generated["HdA_stub.java"]
        assert "public class HdS_stub extends HdStub" in generated["HdS_stub.java"]


class TestNoDefaultParameters:
    def test_defaults_are_dropped(self, generated):
        """'The IDL-Java mapping ... does not support default
        parameters as the corresponding C++ mapping does.'"""
        text = generated["HdA.java"]
        assert "= 0" not in text.replace("== 0", "")
        assert "p(int l);" in text


class TestFlattenedMultipleInheritance:
    SOURCE = """
    interface Alpha { void fa(); };
    interface Beta { long fb(); readonly attribute long size; };
    interface Gamma : Alpha, Beta { void fg(); };
    """

    @pytest.fixture(scope="class")
    def mi_files(self):
        return get_pack("java_rmi").generate(
            parse(self.SOURCE, filename="mi.idl")
        ).files()

    def test_extends_first_base_only(self, mi_files):
        text = mi_files["HdGamma.java"]
        assert "extends HdAlpha" in text
        assert "extends HdAlpha, HdBeta" not in text

    def test_secondary_base_methods_expanded(self, mi_files):
        text = mi_files["HdGamma.java"]
        assert "public abstract int fb();" in text
        assert "expanded from a secondary IDL base" in text

    def test_secondary_base_attributes_expanded(self, mi_files):
        assert "public abstract int getSize();" in mi_files["HdGamma.java"]

    def test_stub_expands_secondary_operations(self, mi_files):
        """The stub must also re-implement the expanded operations, or
        the Java client could not call them."""
        text = mi_files["HdGamma_stub.java"]
        assert 'getRequestCall(this, "fb", false)' in text

    @needs_jdk
    def test_mi_output_compiles(self, mi_files, tmp_path):
        _compile_all(mi_files, tmp_path)


def _compile_all(files, directory):
    for name, text in files.items():
        (directory / name).write_text(text)
    java_files = [str(directory / n) for n in files if n.endswith(".java")]
    result = subprocess.run(
        ["javac", "-d", str(directory)] + java_files,
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return directory


class TestJavacCompiles:
    @needs_jdk
    def test_paper_example_compiles(self, generated, tmp_path):
        _compile_all(generated, tmp_path)

    @needs_jdk
    def test_structs_and_sequences_compile(self, tmp_path):
        files = get_pack("java_rmi").generate(parse(
            """
            struct Point { long x; double y; string label; };
            interface Board {
              Point move(in Point p);
              long total(in sequence<long> xs);
              sequence<string> names();
              oneway void nudge(in string n);
              attribute string title;
            };
            """, filename="Board.idl"
        )).files()
        _compile_all(files, tmp_path)


MAIN_JAVA = """
import java.util.Vector;

public class Main {
    public static void main(String[] args) throws Exception {
        HdObjRef ref = HdObjRef.parse(args[0]);
        HdConnector connector = HdConnector.forRef(ref);
        HdCalc_stub calc = new HdCalc_stub(ref, connector);
        System.out.println("ADD=" + calc.add(19, 23));
        System.out.println("GREET=" + calc.greet("java"));
        Vector<Long> xs = new Vector<Long>();
        xs.add(5L); xs.add(6L); xs.add(7L);
        System.out.println("SUM=" + calc.sum(xs));
        System.out.println("MODE=" + HdMode.MEMBERS[calc.flip(HdMode.Up)]);
        calc.setLabel("from-java");
        System.out.println("LABEL=" + calc.getLabel());
        try {
            calc.fail();
            System.out.println("NOEXC");
        } catch (HdRemoteException e) {
            System.out.println("EXC=" + e.repoId);
        }
        connector.close();
    }
}
"""

CALC_IDL = """\
enum Mode { Up, Down };
exception Broken { string why; };
interface Calc {
  long add(in long a, in long b);
  string greet(in string name);
  long sum(in sequence<long> xs);
  Mode flip(in Mode m);
  void fail() raises (Broken);
  attribute string label;
};
"""


class TestLiveJavaClient:
    """The §4.2 experience, live: a Java program drives the Python ORB."""

    @needs_jdk
    def test_java_client_calls_python_server(self, tmp_path):
        from repro.heidirmi import Orb
        from repro.mappings.python_rmi import generate_module

        ns = generate_module(parse(CALC_IDL, filename="Calc.idl"))

        class CalcImpl:
            _hd_type_id_ = "IDL:Calc:1.0"

            def __init__(self):
                self.label = "initial"

            def add(self, a, b):
                return a + b

            def greet(self, name):
                return f"hello {name}"

            def sum(self, xs):
                return sum(xs)

            def flip(self, m):
                Mode = ns["Mode"]
                return Mode.Down if m == Mode.Up else Mode.Up

            def fail(self):
                raise ns["Broken"](why="intentional")

            def get_label(self):
                return self.label

            def set_label(self, value):
                self.label = value

        files = get_pack("java_rmi").generate(
            parse(CALC_IDL, filename="Calc.idl")
        ).files()
        directory = _compile_all(files, tmp_path)
        (directory / "Main.java").write_text(MAIN_JAVA)
        compile_result = subprocess.run(
            ["javac", "-cp", str(directory), "-d", str(directory),
             str(directory / "Main.java")],
            capture_output=True, text=True, timeout=300,
        )
        assert compile_result.returncode == 0, compile_result.stderr

        server = Orb(transport="tcp", protocol="text").start()
        impl = CalcImpl()
        ref = server.register(impl)
        try:
            run_result = subprocess.run(
                ["java", "-cp", str(directory), "Main", ref.stringify()],
                capture_output=True, text=True, timeout=120,
            )
            assert run_result.returncode == 0, run_result.stderr
            out = run_result.stdout
            assert "ADD=42" in out
            assert "GREET=hello java" in out
            assert "SUM=18" in out
            assert "MODE=Down" in out
            assert "LABEL=from-java" in out
            assert "EXC=IDL:Broken:1.0" in out
            assert impl.label == "from-java"
        finally:
            server.stop()

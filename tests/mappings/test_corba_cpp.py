"""Tests for the CORBA-prescribed C++ mapping pack (Tables 1–2, Fig. 1)."""

import pytest

from repro.idl import parse
from repro.mappings import get_pack
from repro.mappings.corba_cpp import CORBA_TYPE_TABLE, class_hierarchy


@pytest.fixture(scope="module")
def pack():
    return get_pack("corba_cpp")


@pytest.fixture(scope="module")
def generated(pack):
    from tests.conftest import PAPER_IDL

    spec = parse(PAPER_IDL, filename="A.idl")
    return pack.generate(spec).files()


class TestTable1:
    """Table 1's prescribed column comes straight from the pack."""

    def test_prescribed_types(self):
        assert CORBA_TYPE_TABLE["long"] == "CORBA::Long"
        assert CORBA_TYPE_TABLE["boolean"] == "CORBA::Boolean"
        assert CORBA_TYPE_TABLE["float"] == "CORBA::Float"

    def test_table1_contrast_with_heidi(self):
        heidi = get_pack("heidi_cpp").type_table
        for idl_type in ("long", "boolean", "float"):
            assert CORBA_TYPE_TABLE[idl_type] != heidi[idl_type] or idl_type != "boolean"
        assert heidi["boolean"] == "XBool"
        assert CORBA_TYPE_TABLE["boolean"] == "CORBA::Boolean"


class TestTable2Declarators:
    """Table 2: A_var / A_ptr versus plain legacy declarators."""

    def test_ptr_and_var_typedefs_generated(self, generated):
        header = generated["A.hh"]
        assert "typedef Heidi_A* Heidi_A_ptr;" in header
        assert "Heidi_A_var" in header

    def test_parameters_use_ptr(self, generated):
        header = generated["A.hh"]
        assert "virtual void f(Heidi_A_ptr a) = 0;" in header


class TestFig1Hierarchy:
    """Fig. 1: stub and skeleton INHERIT from the interface class."""

    def test_interface_inherits_corba_object(self, generated):
        edges = class_hierarchy(generated["A.hh"])
        assert "CORBA::Object" in edges["Heidi_A"]

    def test_stub_inherits_interface(self, generated):
        edges = class_hierarchy(generated["A.hh"])
        assert "Heidi_A" in edges["Heidi_A_stub"]

    def test_skeleton_inherits_interface_and_servant(self, generated):
        edges = class_hierarchy(generated["A_poa.hh"])
        assert "Heidi_A" in edges["POA_Heidi_A"]
        assert any("ServantBase" in base for base in edges["POA_Heidi_A"])

    def test_tie_inherits_skeleton(self, generated):
        edges = class_hierarchy(generated["A_poa.hh"])
        assert "POA_Heidi_A" in edges["POA_Heidi_A_tie"]

    def test_skeleton_reflects_idl_inheritance(self, generated):
        edges = class_hierarchy(generated["A_poa.hh"])
        assert "POA_Heidi_S" in edges["POA_Heidi_A"]


class TestExtensionDegradation:
    """The prescribed mapping cannot express the HeidiRMI extensions."""

    def test_default_parameters_dropped(self, generated):
        header = generated["A.hh"]
        assert "= 0)" not in header.replace(") = 0;", "")
        assert "l = 0" not in header

    def test_incopy_degrades_to_reference_with_note(self, generated):
        header = generated["A.hh"]
        assert "incopy not expressible" in header

    def test_tie_note_about_corba_types(self, generated):
        """§3: ties alone don't free the impl from CORBA data types."""
        poa = generated["A_poa.hh"]
        assert "must still use CORBA data types" in poa


class TestGeneratedCppCompiles:
    """The prescribed mapping's output is real C++ too: g++ accepts it
    against the shipped CORBA.h/PortableServer.h stand-ins."""

    gpp = __import__("shutil").which("g++")

    @pytest.mark.skipif(gpp is None, reason="g++ not installed")
    def test_paper_example_compiles(self, generated, tmp_path):
        import subprocess

        for name, text in generated.items():
            target = tmp_path / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        result = subprocess.run(
            ["g++", "-fsyntax-only", "-I", str(tmp_path),
             "-I", str(tmp_path / "runtime"), str(tmp_path / "A_poa.cc")],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr

    def test_vendor_headers_shipped(self, generated):
        assert "runtime/CORBA.h" in generated
        assert "runtime/PortableServer.h" in generated

"""Tests for the live Python mapping pack (generation-side).

The runtime behaviour of generated code is exercised end-to-end in
tests/integration/; these tests pin the generated *source*.
"""

import pytest

from repro.idl import parse
from repro.mappings import get_pack
from repro.mappings.python_rmi import generate_module


@pytest.fixture(scope="module")
def generated_source():
    from tests.conftest import PAPER_IDL

    spec = parse(PAPER_IDL, filename="A.idl")
    return get_pack("python_rmi").generate(spec).files()["A_rmi.py"]


class TestGeneratedSource:
    def test_compiles(self, generated_source):
        compile(generated_source, "A_rmi.py", "exec")

    def test_enum_class(self, generated_source):
        assert "class Heidi_Status:" in generated_source
        assert "MEMBERS = ('Start', 'Stop',)" in generated_source
        assert "Start = 0" in generated_source

    def test_abstract_interface_class_is_delegation_friendly(self, generated_source):
        # The abstract class exists but nothing forces the impl to use it.
        assert "class Heidi_A(Heidi_S):" in generated_source
        assert "raise NotImplementedError" in generated_source

    def test_stub_mirrors_idl_inheritance(self, generated_source):
        assert "class Heidi_A_stub(Heidi_S_stub):" in generated_source

    def test_skeleton_parent_chain(self, generated_source):
        assert "_hd_parent_skels_ = (Heidi_S_skel, )" in generated_source

    def test_default_parameters_in_stub_signature(self, generated_source):
        assert "def p(self, l=0):" in generated_source
        assert "def q(self, s=Heidi_Status.Start):" in generated_source
        assert "def s(self, b=True):" in generated_source

    def test_incopy_direction_in_stub(self, generated_source):
        assert "self._put_object(call, s, 'incopy')" in generated_source

    def test_attribute_methods(self, generated_source):
        assert "def get_button(self):" in generated_source
        assert "'_get_button'" in generated_source
        # readonly: no setter
        assert "def set_button" not in generated_source

    def test_registration_calls(self, generated_source):
        assert "GLOBAL_TYPES.register_interface(" in generated_source
        assert "'IDL:Heidi/A:1.0'" in generated_source

    def test_operations_table(self, generated_source):
        assert "('f', '_op_f')" in generated_source
        assert "('_get_button', '_op_get_button')" in generated_source


class TestGenerateModule:
    def test_namespace_has_all_classes(self):
        spec = parse(
            "module Z { enum E {A, B}; struct P { long x; }; "
            "exception Bad { string m; }; interface I { void f(); }; };"
        )
        ns = generate_module(spec)
        for name in ("Z_E", "Z_P", "Z_Bad", "Z_I", "Z_I_stub", "Z_I_skel"):
            assert name in ns, name

    def test_struct_equality_and_repr(self):
        ns = generate_module(parse("struct P { long x; double y; };"))
        P = ns["P"]
        assert P(1, 2.0) == P(1, 2.0)
        assert P(1, 2.0) != P(2, 2.0)
        assert "x=1" in repr(P(1, 2.0))

    def test_exception_is_user_exception(self):
        from repro.heidirmi.exceptions_user import HdUserException

        ns = generate_module(parse("exception Oops { string why; };"))
        exc = ns["Oops"](why="bad")
        assert isinstance(exc, HdUserException)
        assert exc.why == "bad"
        assert exc._hd_repo_id_ == "IDL:Oops:1.0"

    def test_union_class_generated(self):
        ns = generate_module(parse(
            "union U switch (long) { case 1: long a; default: string s; }; "
            "interface I { U pick(in U u); };"
        ))
        U = ns["U"]
        value = U(discriminator=1, value=42)
        assert value == U(1, 42)
        assert "discriminator=1" in repr(value)

    def test_unsupported_type_reports_clearly(self):
        from repro.heidirmi.errors import MarshalError

        spec = parse("interface I { void f(in fixed<9,2> amount); };")
        with pytest.raises(MarshalError, match="does not support"):
            generate_module(spec)

    def test_nested_sequences(self):
        spec = parse(
            "typedef sequence<sequence<long>> Matrix; "
            "interface M { long cells(in Matrix m); };"
        )
        ns = generate_module(spec)
        assert "M_stub" in ns

    def test_oneway_generates_no_reply_read(self):
        spec = parse("interface I { oneway void fire(in string m); };")
        source = get_pack("python_rmi").generate(spec).files()["generated_rmi.py"]
        assert "oneway=True" in source
        fire_body = source.split("def fire", 1)[1].split("def ", 1)[0]
        assert "reply" not in fire_body


class TestClientOnlyTemplate:
    """The §4.2 minimal-footprint variant: stubs without skeletons."""

    def test_no_skeleton_classes_generated(self):
        from repro.mappings import get_pack

        spec = parse("interface Echo { string echo(in string s); };",
                     filename="Echo.idl")
        files = get_pack("python_rmi").generate(
            spec, template_name="client_only.tmpl"
        ).files()
        source = files["Echo_rmi.py"]
        assert "Echo_stub" in source
        assert "Echo_skel" not in source
        assert "HdSkel" not in source
        compile(source, "Echo_rmi.py", "exec")

    def test_client_only_stub_calls_full_server(self):
        """Code from the client-only template interoperates with a
        server generated from the full template."""
        from repro.heidirmi import Orb
        from repro.mappings import get_pack

        idl = "interface Mini { long twice(in long x); };"
        full_ns = generate_module(parse(idl, filename="Mini.idl"))

        client_files = get_pack("python_rmi").generate(
            parse(idl, filename="Mini.idl"),
            template_name="client_only.tmpl",
        ).files()
        client_ns = {"__name__": "client_only_generated"}
        exec(compile(client_files["Mini_rmi.py"], "Mini_rmi.py", "exec"),
             client_ns)

        class MiniImpl:
            _hd_type_id_ = "IDL:Mini:1.0"

            def twice(self, x):
                return 2 * x

        server = Orb(transport="inproc", protocol="text").start()
        client = Orb(transport="inproc", protocol="text")
        try:
            ref = server.register(MiniImpl())
            stub = client_ns["Mini_stub"](ref, client)
            assert stub.twice(21) == 42
        finally:
            client.stop()
            server.stop()


class TestImplScaffoldTemplate:
    """§6: templates 'generate the framework for object implementations'."""

    def _generate(self, tmp_path):
        import os
        import sys

        from tests.conftest import PAPER_IDL

        spec = parse(PAPER_IDL, filename="A.idl")
        pack = get_pack("python_rmi")
        pack.generate(spec).write_to(str(tmp_path))
        pack.generate(spec, template_name="impl_scaffold.tmpl").write_to(
            str(tmp_path)
        )
        sys.path.insert(0, str(tmp_path))
        try:
            import importlib

            module = importlib.import_module("A_impl")
            importlib.reload(module)
            return module
        finally:
            sys.path.remove(str(tmp_path))

    def test_scaffold_imports_and_registers(self, tmp_path):
        module = self._generate(tmp_path)
        impl_class = module.Heidi_AImpl
        assert impl_class._hd_type_id_ == "IDL:Heidi/A:1.0"

    def test_scaffold_methods_raise_not_implemented(self, tmp_path):
        module = self._generate(tmp_path)
        impl = module.Heidi_AImpl()
        with pytest.raises(NotImplementedError):
            impl.f(None)
        with pytest.raises(NotImplementedError):
            impl.get_button()

    def test_scaffold_preserves_default_parameters(self, tmp_path):
        module = self._generate(tmp_path)
        import inspect

        signature = inspect.signature(module.Heidi_AImpl.p)
        assert signature.parameters["l"].default == 0

    def test_filled_scaffold_serves_remote_calls(self, tmp_path):
        """A scaffold with one method filled in is a working servant."""
        from repro.heidirmi import Orb

        module = self._generate(tmp_path)

        class Done(module.Heidi_AImpl):
            def p(self, l=0):
                self.last = l

        server = Orb(transport="inproc", protocol="text").start()
        client = Orb(transport="inproc", protocol="text")
        try:
            impl = Done()
            stub = client.resolve(server.register(impl).stringify())
            stub.p(7)
            assert impl.last == 7
        finally:
            client.stop()
            server.stop()

"""Tests for the mapping-pack registry."""

import pytest

from repro.mappings import MappingPack, all_packs, get_pack
from repro.mappings.registry import register_pack


class TestRegistry:
    def test_all_builtin_packs_present(self):
        names = all_packs()
        for expected in ("heidi_cpp", "corba_cpp", "java_rmi", "tcl_orb",
                         "python_rmi"):
            assert expected in names

    def test_get_pack_returns_fresh_instances(self):
        assert get_pack("heidi_cpp") is not get_pack("heidi_cpp")

    def test_unknown_pack_raises_with_choices(self):
        with pytest.raises(KeyError, match="heidi_cpp"):
            get_pack("nonexistent")

    def test_custom_pack_registration(self):
        @register_pack
        class TestingPack(MappingPack):
            name = "testing_pack_tmp"
            language = "None"

        try:
            assert "testing_pack_tmp" in all_packs()
            assert isinstance(get_pack("testing_pack_tmp"), TestingPack)
        finally:
            from repro.mappings import registry

            registry._PACKS.pop("testing_pack_tmp", None)

    def test_describe(self):
        info = get_pack("heidi_cpp").describe()
        assert info["name"] == "heidi_cpp"
        assert "main.tmpl" in info["templates"]
        assert "CPP::MapClassName" in info["maps"]

    def test_every_pack_has_type_table_and_templates(self):
        for name in all_packs():
            pack = get_pack(name)
            assert pack.type_table, name
            assert pack.describe()["templates"], name

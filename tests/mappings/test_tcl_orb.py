"""Tests for the IDL-Tcl mapping pack — pins the paper's Fig. 10."""

import shutil
import subprocess

import pytest

from repro.idl import parse
from repro.mappings import get_pack

RECEIVER_IDL = """\
interface Receiver {
  void print(in string text);
};
"""

#: Fig. 10's ReceiverStub/ReceiverSkel, as this pack generates them.
FIG10_GOLDEN = """\
if {[info vars {IDL:Receiver:1.0}] ne ""} return
set {IDL:Receiver:1.0} 1
BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"
class ReceiverStub {
    inherit Stub
    constructor {ior connector} {
        Stub::constructor $ior $connector
    } {}
    public method print {text} {
        set c [$pb_connector_ getRequestCall $this "print" 0]
        $c insertString $text
        $c send
        # void return
        $c release
    }
}

class ReceiverSkel {
    inherit Skel
    constructor {implObj} {
        Skel::constructor $implObj
    } {}
    public method print {c} {
        set text [$c extractString]
        $pb_obj_ print $text
        # void return
    }
}
"""

tclsh = shutil.which("tclsh")
needs_tclsh = pytest.mark.skipif(tclsh is None, reason="tclsh not installed")


@pytest.fixture(scope="module")
def pack():
    return get_pack("tcl_orb")


@pytest.fixture(scope="module")
def receiver_files(pack):
    spec = parse(RECEIVER_IDL, filename="Receiver.idl")
    return pack.generate(spec).files()


class TestFig10Golden:
    def test_receiver_matches_golden(self, receiver_files):
        assert receiver_files["Receiver.tcl"] == FIG10_GOLDEN

    def test_fig10_shape_markers(self, receiver_files):
        """The Fig. 10 idioms, individually."""
        text = receiver_files["Receiver.tcl"]
        assert 'BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"' in text
        assert "inherit Stub" in text
        assert 'getRequestCall $this "print" 0' in text
        assert "$c insertString $text" in text
        assert "$c send" in text
        assert "$c release" in text
        assert "set text [$c extractString]" in text
        assert "$pb_obj_ print $text" in text

    def test_orb_library_shipped(self, receiver_files):
        assert "orb.tcl" in receiver_files
        assert "namespace eval BOA" in receiver_files["orb.tcl"]


class TestOrbLibrary:
    def test_size_in_the_700_line_ballpark(self, pack):
        """§4.2: 'about ... 700 lines of tcl code'."""
        from repro.footprint import count_lines

        counts = count_lines(pack.orb_library_source(), "tcl")
        assert 300 <= counts.total <= 1100

    @needs_tclsh
    def test_orb_library_sources_cleanly(self, pack, tmp_path):
        orb = tmp_path / "orb.tcl"
        orb.write_text(pack.orb_library_source())
        script = f'source "{orb}"\nputs SOURCED_OK\n'
        result = subprocess.run(
            [tclsh], input=script, capture_output=True, text=True, timeout=30
        )
        assert "SOURCED_OK" in result.stdout, result.stderr

    @needs_tclsh
    def test_generated_stub_sources_cleanly(self, pack, receiver_files, tmp_path):
        for name, text in receiver_files.items():
            (tmp_path / name).write_text(text)
        script = (
            f'source "{tmp_path}/orb.tcl"\n'
            f'source "{tmp_path}/Receiver.tcl"\n'
            "puts CLASSES_OK\n"
        )
        result = subprocess.run(
            [tclsh], input=script, capture_output=True, text=True, timeout=30
        )
        assert "CLASSES_OK" in result.stdout, result.stderr


class TestWiderInterfaces:
    def test_typed_inserts_and_extracts(self):
        spec = parse(
            "interface Calc { double mul(in double a, in long b); "
            "oneway void fire(in string msg); };"
        )
        files = get_pack("tcl_orb").generate(spec).files()
        text = files["Calc.tcl"]
        assert "$c insertDouble $a" in text
        assert "$c insertLong $b" in text
        assert "set result [$c extractDouble]" in text
        assert 'getRequestCall $this "fire" 1' in text  # oneway flag

    def test_interface_inheritance(self):
        spec = parse("interface Base { void b(); }; interface Derived : Base { };")
        files = get_pack("tcl_orb").generate(spec).files()
        text = files["Derived.tcl"]
        assert "inherit BaseStub" in text
        assert "BaseSkel::constructor $implObj" in text

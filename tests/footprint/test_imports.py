"""Tests for the static import-closure analysis."""

from repro.footprint.imports import import_closure, module_loc, subset_report


class TestClosure:
    def test_closure_includes_root(self):
        closure = import_closure(["repro.heidirmi.textwire"])
        assert "repro.heidirmi.textwire" in closure

    def test_closure_follows_internal_imports(self):
        closure = import_closure(["repro.heidirmi.orb"])
        for expected in (
            "repro.heidirmi.call",
            "repro.heidirmi.connection",
            "repro.heidirmi.protocol",
            "repro.heidirmi.transport",
        ):
            assert expected in closure

    def test_lazy_imports_excluded(self):
        """The text-only ORB must not statically pull in GIOP — that lazy
        import is what keeps the minimal footprint minimal (§4.2)."""
        closure = import_closure(["repro.heidirmi.orb"])
        assert not any(module.startswith("repro.giop") for module in closure)

    def test_giop_adds_only_giop_modules(self):
        base = set(import_closure(["repro.heidirmi.orb"]))
        full = set(import_closure(["repro.heidirmi.orb", "repro.giop.iiop"]))
        extra = full - base
        assert extra
        # GIOP may only pull in its own modules plus its sans-I/O state
        # machine (repro.wire.giop); nothing else may ride along.
        assert all(
            module.startswith("repro.giop") or module == "repro.wire.giop"
            for module in extra
        )

    def test_prefix_restriction(self):
        closure = import_closure(["repro.heidirmi.orb"], prefix="repro.heidirmi")
        assert all(module.startswith("repro.heidirmi") for module in closure)

    def test_string_root_accepted(self):
        assert import_closure("repro.heidirmi.errors") == ["repro.heidirmi.errors"]


class TestReport:
    def test_module_loc_positive(self):
        assert module_loc("repro.heidirmi.orb") > 100

    def test_missing_module_is_zero(self):
        assert module_loc("repro.nonexistent") == 0

    def test_subset_report_totals(self):
        report = subset_report(["repro.heidirmi.orb"])
        assert report["<total>"] == sum(
            loc for module, loc in report.items() if module != "<total>"
        )
        assert report["<total>"] > 500

    def test_minimal_smaller_than_full(self):
        minimal = subset_report(["repro.heidirmi.orb"])["<total>"]
        full = subset_report(["repro.heidirmi.orb", "repro.giop.iiop"])["<total>"]
        assert minimal < full

"""Tests for line counting."""

import pytest

from repro.footprint.loc import (
    LineCounts,
    count_lines,
    count_package_lines,
    language_for,
)


class TestCountLines:
    def test_empty_text(self):
        counts = count_lines("", "python")
        assert counts.total == 0
        assert counts.code == 0

    def test_code_only(self):
        counts = count_lines("a = 1\nb = 2\n", "python")
        assert counts == LineCounts(total=2, blank=0, comment=0)
        assert counts.code == 2

    def test_blank_lines(self):
        counts = count_lines("a = 1\n\n\nb = 2\n", "python")
        assert counts.blank == 2

    def test_python_hash_comments(self):
        counts = count_lines("# heading\nx = 1  # trailing not counted\n",
                             "python")
        assert counts.comment == 1
        assert counts.code == 1

    def test_python_docstring_block(self):
        text = '"""Module\ndocstring.\n"""\nx = 1\n'
        counts = count_lines(text, "python")
        assert counts.comment == 3
        assert counts.code == 1

    def test_tcl_comments(self):
        counts = count_lines("# orb.tcl\nproc f {} { }\n", "tcl")
        assert counts.comment == 1
        assert counts.code == 1

    def test_cpp_line_and_block_comments(self):
        text = "// one\n/* two\nthree */\nint x;\n"
        counts = count_lines(text, "cpp")
        assert counts.comment == 3
        assert counts.code == 1

    def test_cpp_single_line_block(self):
        counts = count_lines("/* inline */\nint x;\n", "cpp")
        assert counts.comment == 1
        assert counts.code == 1

    def test_unknown_language_raises(self):
        with pytest.raises(ValueError):
            count_lines("x", "cobol")

    def test_counts_add(self):
        total = LineCounts(2, 1, 0) + LineCounts(3, 0, 2)
        assert total == LineCounts(5, 1, 2)


class TestLanguageDetection:
    @pytest.mark.parametrize("path,language", [
        ("a.py", "python"),
        ("orb.tcl", "tcl"),
        ("x.hh", "cpp"),
        ("x.cc", "cpp"),
        ("Y.java", "java"),
        ("a.idl", "idl"),
        ("notes.xyz", "text"),
    ])
    def test_extension_mapping(self, path, language):
        assert language_for(path) == language


class TestPackageCounting:
    def test_counts_this_repository(self):
        import repro
        import os

        root = os.path.dirname(repro.__file__)
        total, per_file = count_package_lines(root)
        assert total.code > 3000
        assert any(path.endswith("orb.py") for path in per_file)

    def test_suffix_filter(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.txt").write_text("not counted\n")
        total, per_file = count_package_lines(str(tmp_path), suffixes=(".py",))
        assert total.total == 1
        assert list(per_file) == ["a.py"]

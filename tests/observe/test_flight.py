"""Flight recorder: ring capture, postmortem bundles, deterministic replay.

The acceptance bar from the issue: live captures replay identically
through fresh wire machines on every protocol, and a chaos-killed
channel leaves a replayable bundle whose decoded events match what the
live tap recorded.  The summary-format coupling between the
direct-parse taps and the ``repro.wire.events`` reprs is pinned here —
if an event repr changes, these tests name the drift.
"""

import asyncio
import io
import json

import pytest

from repro.heidirmi.call import Call
from repro.heidirmi.errors import CommunicationError, ProtocolError
from repro.heidirmi.protocol import get_protocol
from repro.observe import FlightControl, Observer
from repro.observe import cli as observe_cli
from repro.observe.flight import (
    DIR_IN,
    DIR_OUT,
    load_bundle,
    render_replay,
    replay_bundle,
)
from repro.resilience import FaultPlan
from repro.wire import events as wire_events
from repro.wire.text import Text2Wire, parse_reply2_line, parse_request2_line

from tests.resilience.rig import make_pair, stop_pair

PROTOCOLS = ("text", "text2", "giop")


def flight_observer(spool_dir=None, **kwargs):
    return Observer(flight=FlightControl(spool_dir=spool_dir, **kwargs))


def client_recorder(client, stub):
    """The flight recorder on the client's live channel to *stub*."""
    communicator = client.connections.acquire(stub._hd_ref.bootstrap)
    return communicator.channel.flight


# -- the ring ---------------------------------------------------------------


class TestRingCapture:
    def test_ring_is_bounded_and_ordered(self):
        control = FlightControl(capacity=4)
        recorder = control.new_recorder("text2", "client")
        for index in range(10):
            recorder.record_out(b"RET2 %d OK 1\n" % index)
        records = recorder.snapshot()
        assert len(records) == 4
        assert [record.seq for record in records] == [6, 7, 8, 9]
        assert all(record.direction == DIR_OUT for record in records)
        assert records[0].summary.endswith("bytes")

    def test_frame_truncation_is_detectable(self):
        control = FlightControl(max_frame_bytes=8)
        recorder = control.new_recorder("text2", "client")
        recorder.record_out(b"x" * 32)
        record = recorder.snapshot()[0]
        assert record.truncated
        assert record.frame_len == 32
        assert len(record.frame) == 8

    def test_direct_request_tap_matches_event_repr(self):
        recorder = FlightControl().new_recorder("text2", "server")
        line = b"CALL2 7 obj42 mul 3 4"
        call = parse_request2_line(line.decode())
        recorder.record_request(bytearray(line), call)
        record = recorder.snapshot()[0]
        assert record.summary == repr(wire_events.RequestReceived(call))
        assert bytes(record.frame) == line + b"\n"
        assert record.role == "server"

    def test_direct_reply_tap_matches_event_repr(self):
        recorder = FlightControl().new_recorder("text2", "client")
        line = b"RET2 7 OK 12"
        reply = parse_reply2_line(line.decode())
        recorder.record_reply(bytearray(line), reply)
        record = recorder.snapshot()[0]
        assert record.summary == repr(wire_events.ReplyReceived(reply))
        assert bytes(record.frame) == line + b"\n"

    def test_violation_tap_matches_machine_decoding(self):
        # The direct path records the parse error; a fresh machine fed
        # the same line must produce the identical WireViolation repr —
        # this is exactly what replay will compare.
        recorder = FlightControl().new_recorder("text2", "server")
        line = b"GIBBERISH x y"
        with pytest.raises(ProtocolError) as excinfo:
            parse_request2_line(line.decode())
        recorder.record_violation(bytearray(line), str(excinfo.value),
                                  "server")
        machine_event = Text2Wire("server").feed_line(bytearray(line))
        assert recorder.snapshot()[0].summary == repr(machine_event)

    def test_machine_tap_records_event_and_frame(self):
        recorder = FlightControl().new_recorder("text2", "client")
        machine = Text2Wire("client")
        machine.tap = recorder
        event = machine.feed_line(bytearray(b"RET2 5 OK 1"))
        record = recorder.snapshot()[-1]
        assert record.summary == repr(event)
        assert bytes(record.frame) == b"RET2 5 OK 1\n"


# -- replay determinism -----------------------------------------------------


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestReplayDeterminism:
    def test_live_capture_replays_identically(self, protocol_name):
        server, client, stub, impl = make_pair(
            protocol=protocol_name,
            multiplex=protocol_name != "text",
            server_kwargs={"observer": flight_observer()},
            client_kwargs={"observer": flight_observer()},
        )
        try:
            for index in range(6):
                assert stub.echo(f"tok{index}") == f"ack:tok{index}"
            stub.note("fire-and-forget")
            assert stub.echo("after") == "ack:after"
            recorder = client_recorder(client, stub)
            bundle = recorder.control.build_bundle(
                recorder, "test", "manual snapshot"
            )
        finally:
            stop_pair(server, client)

        replayed = replay_bundle(bundle)
        inbound = [item for item in replayed
                   if item.record["dir"] == DIR_IN]
        outbound = [item for item in replayed
                    if item.record["dir"] == DIR_OUT]
        assert len(inbound) >= 7  # one reply per two-way call
        assert all(item.matches_live is True for item in inbound)
        # Outbound frames decode through the opposite role's machine;
        # a coalesced burst may hold several events per record.
        assert outbound
        assert all(item.events for item in outbound)

    def test_aio_capture_replays_identically(self, protocol_name):
        # The coroutine client shares the recorder machinery: inbound
        # events land through the machine tap, outbound frames through
        # record_out, and the same bundle replays the same way.
        from repro.wire.aio import AioClientConnection, get_event_loop

        server, client, stub, impl = make_pair(
            protocol=protocol_name,
            multiplex=protocol_name != "text",
            transport="tcp",
        )
        reference = stub._hd_ref
        protocol = get_protocol(protocol_name)
        control = FlightControl()

        async def drive():
            connection = await AioClientConnection.open(
                protocol, reference.host, reference.port, flight=control
            )
            for index in range(4):
                call = Call(reference.stringify(), "echo",
                            marshaller=protocol.new_marshaller())
                call.put_string(f"aio{index}")
                call.put_long(0)
                reply = await connection.invoke(call)
                assert reply.get_string() == f"ack:aio{index}"
            bundle = control.build_bundle(
                connection._flight, "test", "aio snapshot"
            )
            await connection.close()
            return bundle

        try:
            bundle = asyncio.run_coroutine_threadsafe(
                drive(), get_event_loop()
            ).result(30)
        finally:
            stop_pair(server, client)

        replayed = replay_bundle(bundle)
        inbound = [item for item in replayed
                   if item.record["dir"] == DIR_IN]
        outbound = [item for item in replayed
                    if item.record["dir"] == DIR_OUT]
        assert len(inbound) >= 4
        assert all(item.matches_live is True for item in inbound)
        assert outbound
        assert all(item.events for item in outbound)

    def test_bundle_survives_json_round_trip(self, protocol_name):
        server, client, stub, impl = make_pair(
            protocol=protocol_name,
            multiplex=protocol_name != "text",
            client_kwargs={"observer": flight_observer()},
        )
        try:
            for index in range(3):
                stub.echo(f"rt{index}")
            recorder = client_recorder(client, stub)
            bundle = recorder.control.build_bundle(recorder, "test", "rt")
        finally:
            stop_pair(server, client)

        # The spool writes JSON; what comes back must replay the same.
        revived = json.loads(json.dumps(bundle))
        live = [item.matches_live for item in replay_bundle(bundle)]
        again = [item.matches_live for item in replay_bundle(revived)]
        assert live == again
        assert all(flag is not False for flag in live)


# -- chaos postmortem -------------------------------------------------------


class TestChaosPostmortem:
    def _kill_and_collect(self, tmp_path):
        plan = FaultPlan(script={("send", 4): "disconnect"})
        server, client, stub, impl = make_pair(
            protocol="text2",
            multiplex=True,
            plan=plan,
            client_kwargs={"observer": flight_observer(str(tmp_path))},
        )
        try:
            with pytest.raises(CommunicationError):
                for index in range(50):
                    stub.echo(f"tok{index}")
        finally:
            stop_pair(server, client)
        bundles = sorted(tmp_path.glob("postmortem-*.json"))
        assert bundles, "chaos-killed channel left no postmortem bundle"
        return bundles

    def test_chaos_killed_channel_leaves_replayable_bundle(self, tmp_path):
        bundles = self._kill_and_collect(tmp_path)
        bundle = load_bundle(bundles[0])
        # Whoever notices the death first spools it: the failed sender
        # (send-failed) or the demux loop seeing the torn stream.
        assert bundle["reason"]["kind"] in (
            "send-failed", "recv-failed", "peer-closed"
        )
        assert bundle["channel"]["protocol"] == "text2"
        assert bundle["channel"]["side"] == "client"
        replayed = replay_bundle(bundle)
        assert replayed
        inbound = [item for item in replayed
                   if item.record["dir"] == DIR_IN]
        assert inbound
        assert all(item.matches_live is True for item in inbound)
        assert "replay matches the live capture" in render_replay(bundle)

    def test_replay_cli_accepts_the_bundle(self, tmp_path):
        bundles = self._kill_and_collect(tmp_path)
        out = io.StringIO()
        assert observe_cli.replay(str(bundles[0]), out=out) == 0
        assert "replay matches the live capture" in out.getvalue()

    def test_replay_cli_flags_a_tampered_bundle(self, tmp_path):
        bundles = self._kill_and_collect(tmp_path)
        bundle = load_bundle(bundles[0])
        for record in bundle["events"]:
            if record["dir"] == DIR_IN:
                record["summary"] = "ReplyReceived('FORGED', id=999)"
                break
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(bundle), encoding="utf-8")
        out = io.StringIO()
        assert observe_cli.replay(str(tampered), out=out) == 1
        assert "decoded differently" in out.getvalue()


class TestPostmortemHygiene:
    def test_orderly_close_leaves_no_bundle(self, tmp_path):
        server, client, stub, impl = make_pair(
            protocol="text2",
            multiplex=True,
            server_kwargs={"observer": flight_observer(str(tmp_path))},
            client_kwargs={"observer": flight_observer(str(tmp_path))},
        )
        stub.echo("clean")
        stop_pair(server, client)
        assert list(tmp_path.glob("postmortem-*.json")) == []

    def test_death_is_logged_even_without_a_spool_dir(self):
        control = FlightControl()  # spool_dir=None: log only
        recorder = control.new_recorder("text2", "client", peer="peer:1")
        recorder.record_out(b"CALL2 1 obj op\n")
        error = CommunicationError("boom", kind="recv-failed")
        assert recorder.postmortem(error) is None
        assert control.bundles_written == 0
        entries = list(control.recent_errors)
        assert len(entries) == 1
        assert entries[0]["kind"] == "recv-failed"
        assert entries[0]["bundle"] is None

    def test_postmortem_spools_once_per_channel(self, tmp_path):
        control = FlightControl(spool_dir=str(tmp_path))
        recorder = control.new_recorder("text2", "client")
        recorder.record_out(b"CALL2 1 obj op\n")
        error = CommunicationError("boom", kind="recv-failed")
        first = recorder.postmortem(error)
        assert first is not None
        # The demux loop and the cache discard both report the same
        # death; only the first trigger writes.
        assert recorder.postmortem(error) is None
        assert control.bundles_written == 1

"""Tests for spans, trace contexts and exporters."""

import json
import time

from repro.observe import (
    InMemoryExporter,
    JsonLinesExporter,
    Observer,
    TraceContext,
    load_spans,
    new_span_id,
    new_trace_id,
)
from repro.observe import activate, current, restore


class TestTraceContext:
    def test_token_round_trip(self):
        context = TraceContext(new_trace_id(), new_span_id())
        parsed = TraceContext.parse(context.token())
        assert parsed == context

    def test_parse_rejects_malformed(self):
        for bad in (None, "", "nodash", "-", "xyz-123", "12-", "-34",
                    "DEAD-BEEF", 42):
            assert TraceContext.parse(bad) is None

    def test_ids_are_hex_of_expected_width(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_activate_restore(self):
        assert current() is None
        context = TraceContext(new_trace_id(), new_span_id())
        previous = activate(context)
        try:
            assert current() is context
        finally:
            restore(previous)
        assert current() is None


class TestSpan:
    def test_stages_sum_exactly_to_duration(self):
        observer = Observer()
        span = observer.start_span("client", "echo")
        span.stage("marshal")
        time.sleep(0.002)
        span.stage("send")
        span.finish()
        assert sum(span.stage_durations().values()) == span.duration_us

    def test_finish_is_idempotent(self):
        observer = Observer()
        span = observer.start_span("client", "echo")
        span.finish()
        first = span.duration_us
        span.finish()
        assert span.duration_us == first
        assert len(observer.exporter.snapshot()) == 1

    def test_parent_links_trace(self):
        observer = Observer()
        parent = observer.start_span("client", "echo")
        child = observer.start_span("server", "echo",
                                    parent=parent.context.token())
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_thread_local_parent(self):
        observer = Observer()
        outer = observer.start_span("server", "echo")
        previous = activate(outer.context)
        try:
            nested = observer.start_span("client", "relay")
        finally:
            restore(previous)
        assert nested.trace_id == outer.trace_id
        assert nested.parent_id == outer.span_id

    def test_fail_records_error_kind(self):
        from repro.heidirmi.errors import CommunicationError

        observer = Observer()
        span = observer.start_span("client", "echo")
        span.finish(error=CommunicationError("nope", kind="connect-refused"))
        record = observer.exporter.snapshot()[0]
        assert record["attrs"]["error.kind"] == "connect-refused"
        assert "nope" in record["error"]

    def test_to_dict_shape(self):
        observer = Observer()
        span = observer.start_span("client", "echo", protocol="text")
        span.stage("send")
        span.finish()
        record = span.to_dict()
        assert record["name"] == "client"
        assert record["operation"] == "echo"
        assert record["attrs"]["protocol"] == "text"
        assert record["stages"][0][0] == "send"
        json.dumps(record)  # must be JSON-serializable as-is


class TestExporters:
    def test_in_memory_snapshot_and_clear(self):
        exporter = InMemoryExporter()
        exporter.export({"a": 1})
        assert exporter.snapshot() == [{"a": 1}]
        exporter.clear()
        assert exporter.snapshot() == []

    def test_json_lines_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonLinesExporter(str(path))
        observer = Observer(exporter=exporter)
        observer.start_span("client", "echo").finish()
        observer.start_span("server", "echo").finish()
        observer.close()
        spans = load_spans(str(path))
        assert [span["name"] for span in spans] == ["client", "server"]

    def test_load_spans_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n\n{"name": "ok2"}\n')
        assert [span["name"] for span in load_spans(str(path))] == \
            ["ok", "ok2"]

    def test_observer_snapshot_combines_metrics_and_spans(self):
        observer = Observer()
        observer.metrics.counter("c").inc()
        observer.start_span("client", "echo").finish()
        snap = observer.snapshot()
        assert snap["metrics"]["c"][0]["value"] == 1
        assert len(snap["spans"]) == 1

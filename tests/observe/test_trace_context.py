"""Trace-context propagation: wire round-trips and interop.

Protocol level: the ``ctx=`` token (text/text2) and the HDTC
ServiceContext entry (GIOP) must survive a send/recv round trip, and
its absence must parse exactly as before.  ORB level: a traced client
must interoperate with an untraced server and vice versa — the context
is an *optional* service context, never a protocol requirement.
"""

import socket

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.call import Call
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.serialize import TypeRegistry
from repro.heidirmi.transport import Channel
from repro.observe import Observer

TYPE_ID = "IDL:ObserveTest/Echo:1.0"
TARGET = f"@inproc:ctx-test:1#7#{TYPE_ID}"
TOKEN = "00112233445566ff-89abcdef"


@pytest.fixture
def channel_pair():
    client_sock, server_sock = socket.socketpair()
    client = Channel(client_sock, peer="test-client")
    server = Channel(server_sock, peer="test-server")
    yield client, server
    client.close()
    server.close()


def _request(protocol, trace_context=None, oneway=False):
    call = Call(TARGET, "echo", marshaller=protocol.new_marshaller(),
                oneway=oneway)
    call.put_string("hello")
    call.trace_context = trace_context
    return call


class TestWireRoundTrip:
    @pytest.mark.parametrize("name", ["text", "text2", "giop"])
    def test_context_round_trips(self, channel_pair, name):
        client, server = channel_pair
        protocol = get_protocol(name)
        protocol.send_request(client, _request(protocol, TOKEN))
        received = protocol.recv_request(server)
        assert received.trace_context == TOKEN
        assert received.target == TARGET
        assert received.operation == "echo"
        assert received.get_string() == "hello"

    @pytest.mark.parametrize("name", ["text", "text2", "giop"])
    def test_untraced_request_parses_unchanged(self, channel_pair, name):
        client, server = channel_pair
        protocol = get_protocol(name)
        protocol.send_request(client, _request(protocol))
        received = protocol.recv_request(server)
        assert received.trace_context is None
        assert received.target == TARGET
        assert received.get_string() == "hello"

    @pytest.mark.parametrize("name", ["text", "text2"])
    def test_context_rides_oneways(self, channel_pair, name):
        client, server = channel_pair
        protocol = get_protocol(name)
        protocol.send_request(client, _request(protocol, TOKEN, oneway=True))
        received = protocol.recv_request(server)
        assert received.oneway
        assert received.trace_context == TOKEN

    def test_text_line_shape(self, channel_pair):
        """The token sits between the verb and the target, ctx=-prefixed."""
        client, server = channel_pair
        protocol = get_protocol("text")
        protocol.send_request(client, _request(protocol, TOKEN))
        line = server.recv_line().decode("ascii")
        verb, ctx, target = line.split()[:3]
        assert verb == "CALL"
        assert ctx == f"ctx={TOKEN}"
        assert target.startswith("@")

    def test_giop_unknown_service_contexts_are_skipped(self, channel_pair):
        """Foreign ServiceContext ids must not confuse the parser."""
        from repro.giop.cdr import CdrEncoder
        from repro.giop.messages import (
            GIOP_HEADER_SIZE,
            MSG_REQUEST,
            SERVICE_CONTEXT_TRACE,
            RequestHeader,
            ServiceContext,
            frame_message,
        )

        client, server = channel_pair
        # A hand-framed request carrying a foreign context entry before
        # the HDTC one: the parser must skip it and still find ours.
        header = RequestHeader(
            request_id=9,
            object_key=TARGET.encode("utf-8"),
            operation="echo",
            service_context=[
                ServiceContext(0x12345678, b"opaque-foreign-data"),
                ServiceContext(SERVICE_CONTEXT_TRACE, TOKEN.encode("ascii")),
            ],
        )
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        header.encode(encoder)
        encoder.string("hello")  # the echo parameter
        client.send(frame_message(MSG_REQUEST, encoder.data()))
        received = get_protocol("giop").recv_request(server)
        assert received.trace_context == TOKEN
        assert received.get_string() == "hello"


class _Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, text):
        call = self._new_call("echo")
        call.put_string(text)
        return self._invoke(call).get_string()


class _Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"),)

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string()))


class _EchoImpl:
    def echo(self, text):
        return text.upper()


def _registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=_Echo_stub,
                             skeleton_class=_Echo_skel)
    return types


def _orb(protocol, observer=None, multiplex=False):
    return Orb(transport="inproc", protocol=protocol, types=_registry(),
               observer=observer, multiplex=multiplex)


def _wait_spans(observer, n, timeout=2.0):
    """Spans finish on server/demux threads; poll briefly for export."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


@pytest.mark.parametrize("protocol,multiplex", [
    ("text", False), ("text2", True), ("giop", True),
])
class TestInterop:
    def test_traced_client_untraced_server(self, protocol, multiplex):
        client_observer = Observer()
        server = _orb(protocol).start()
        client = _orb(protocol, observer=client_observer,
                      multiplex=multiplex)
        try:
            ref = server.register(_EchoImpl(), type_id=TYPE_ID)
            stub = client.resolve(ref.stringify())
            assert stub.echo("hi") == "HI"
            spans = _wait_spans(client_observer, 1)
            assert len(spans) == 1
            assert spans[0]["name"] == "client"
        finally:
            client.stop()
            server.stop()

    def test_untraced_client_traced_server(self, protocol, multiplex):
        server_observer = Observer()
        server = _orb(protocol, observer=server_observer).start()
        client = _orb(protocol, multiplex=multiplex)
        try:
            ref = server.register(_EchoImpl(), type_id=TYPE_ID)
            stub = client.resolve(ref.stringify())
            assert stub.echo("hi") == "HI"
            spans = _wait_spans(server_observer, 1)
            assert len(spans) == 1
            span = spans[0]
            assert span["name"] == "server"
            # No wire context: the server span is a trace root.
            assert span["parent_id"] is None
        finally:
            client.stop()
            server.stop()

    def test_both_traced_links_spans(self, protocol, multiplex):
        client_observer, server_observer = Observer(), Observer()
        server = _orb(protocol, observer=server_observer).start()
        client = _orb(protocol, observer=client_observer,
                      multiplex=multiplex)
        try:
            ref = server.register(_EchoImpl(), type_id=TYPE_ID)
            stub = client.resolve(ref.stringify())
            assert stub.echo("hi") == "HI"
            client_span = _wait_spans(client_observer, 1)[0]
            server_span = _wait_spans(server_observer, 1)[0]
            assert server_span["trace_id"] == client_span["trace_id"]
            assert server_span["parent_id"] == client_span["span_id"]
        finally:
            client.stop()
            server.stop()

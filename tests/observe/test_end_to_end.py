"""End-to-end observability over live ORBs.

The acceptance bar from the issue: a single traced call over a
multiplexed ``text2`` connection yields a linked client + server span
pair whose per-stage timings sum to within 10% of the measured
wall-clock latency (by construction they sum *exactly* to each span's
duration), and the metric catalogue fills in.
"""

import time

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import CommunicationError, RemoteError
from repro.heidirmi.serialize import TypeRegistry
from repro.observe import Observer

TYPE_ID = "IDL:ObserveE2E/Echo:1.0"


class _Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, text):
        call = self._new_call("echo")
        call.put_string(text)
        return self._invoke(call).get_string()

    def boom(self):
        return self._invoke(self._new_call("boom"))


class _Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"), ("boom", "_op_boom"))

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string()))

    def _op_boom(self, call, reply):
        self.impl.boom()


class _EchoImpl:
    def echo(self, text):
        return text

    def boom(self):
        raise RuntimeError("kaboom")


def _registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=_Echo_stub,
                             skeleton_class=_Echo_skel)
    return types


def _metric(metrics, name, **labels):
    """Pick the snapshot entry for *name* whose labels include *labels*."""
    for entry in metrics[name]:
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            return entry
    raise AssertionError(f"no {name} entry with labels {labels}")


def _wait_spans(observer, n, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


@pytest.fixture
def traced_pair():
    """Multiplexed text2 server+client, both observed; yields everything."""
    server_observer, client_observer = Observer(), Observer()
    server = Orb(transport="inproc", protocol="text2", types=_registry(),
                 observer=server_observer).start()
    client = Orb(transport="inproc", protocol="text2", types=_registry(),
                 multiplex=True, observer=client_observer)
    ref = server.register(_EchoImpl(), type_id=TYPE_ID)
    stub = client.resolve(ref.stringify())
    yield stub, client_observer, server_observer
    client.stop()
    server.stop()


class TestSingleCall:
    def test_linked_spans_with_exact_stage_sums(self, traced_pair):
        stub, client_observer, server_observer = traced_pair
        before = time.perf_counter()
        assert stub.echo("hello") == "hello"
        wall_us = (time.perf_counter() - before) * 1_000_000
        client_span = _wait_spans(client_observer, 1)[0]
        server_span = _wait_spans(server_observer, 1)[0]

        # Linked: same trace, server parented on the client span.
        assert server_span["trace_id"] == client_span["trace_id"]
        assert server_span["parent_id"] == client_span["span_id"]

        # Stage sums equal each span's duration exactly (the residual
        # tail stage guarantees it) — well inside the 10% budget.
        for span in (client_span, server_span):
            stage_sum = sum(us for _, us in span["stages"])
            assert stage_sum == span["duration_us"]

        # The client span covers the call but cannot exceed the
        # measured wall clock around it by more than scheduling noise.
        assert client_span["duration_us"] <= wall_us * 1.10
        stage_names = [name for name, _ in client_span["stages"]]
        assert stage_names[:3] == ["marshal", "send", "wait"]
        server_stage_names = [name for name, _ in server_span["stages"]]
        assert server_stage_names[0] == "select"
        assert "dispatch" in server_stage_names

    def test_metric_catalogue_fills_in(self, traced_pair):
        stub, client_observer, server_observer = traced_pair
        for _ in range(5):
            stub.echo("x")
        _wait_spans(client_observer, 5)
        _wait_spans(server_observer, 5)
        client_metrics = client_observer.metrics.snapshot()
        server_metrics = server_observer.metrics.snapshot()

        invoke = _metric(client_metrics, "rpc.invoke_us",
                         protocol="text2", operation="echo")
        assert invoke["count"] == 5
        assert client_metrics["connection_cache.hits"][0]["value"] == 4
        assert client_metrics["connection_cache.misses"][0]["value"] == 1
        assert _metric(client_metrics, "channel.bytes_sent",
                       side="client")["value"] > 0
        assert _metric(client_metrics, "channel.bytes_received",
                       side="client")["value"] > 0

        dispatch = _metric(server_metrics, "rpc.dispatch_us",
                           protocol="text2", operation="echo")
        assert dispatch["count"] == 5
        assert server_metrics["rpc.requests"][0]["value"] == 5
        assert _metric(server_metrics, "channel.bytes_received",
                       side="server")["value"] > 0

    def test_implementation_error_is_tagged(self, traced_pair):
        stub, client_observer, server_observer = traced_pair
        with pytest.raises(RemoteError):
            stub.boom()
        server_span = _wait_spans(server_observer, 1)[0]
        assert "kaboom" in server_span["error"]
        client_span = _wait_spans(client_observer, 1)[0]
        assert client_span["attrs"]["status"] == "ERR"


class TestBurst:
    def test_pipelined_bulk_calls_all_produce_spans(self, traced_pair):
        stub, client_observer, server_observer = traced_pair
        orb = stub._hd_orb
        calls = []
        for index in range(8):
            call = orb.create_call(stub.reference, "echo")
            call.put_string(str(index))
            calls.append(call)
        replies = orb.invoke_bulk(stub.reference, calls)
        assert [reply.get_string() for reply in replies] == \
            [str(index) for index in range(8)]
        client_spans = _wait_spans(client_observer, 8)
        assert len(client_spans) == 8
        server_spans = _wait_spans(server_observer, 8)
        assert len(server_spans) == 8
        client_ids = {span["span_id"] for span in client_spans}
        assert {span["parent_id"] for span in server_spans} == client_ids


class TestErrorKinds:
    def test_connect_refused_kind(self):
        observer = Observer()
        client = Orb(transport="inproc", protocol="text2", multiplex=True,
                     types=_registry(), observer=observer)
        try:
            with pytest.raises(CommunicationError) as excinfo:
                client.resolve(
                    f"@inproc:nobody-home:59999#1#{TYPE_ID}"
                ).echo("x")
            assert excinfo.value.kind == "connect-refused"
        finally:
            client.stop()

    def test_uncorrelatable_error_has_peer_protocol_kind(self, traced_pair):
        from concurrent.futures import Future

        stub, client_observer, _ = traced_pair
        stub.echo("warm")  # establish the shared communicator
        client = stub._hd_orb
        shared = client.connections.acquire(stub._hd_ref.bootstrap)
        future = Future()
        with shared._pending_lock:
            shared._pending[999] = future
        shared._ensure_reader()
        # An id the server cannot parse back out: its RET2 0 ERR reply
        # cannot name the request, so every waiter fails together.
        shared.channel.send(b"CALL2 notanumber target op\n")
        with pytest.raises(CommunicationError) as excinfo:
            future.result(timeout=15)
        assert excinfo.value.kind == "peer-protocol-error"
        # The per-kind channel error counter saw it too.
        errors = client_observer.metrics.snapshot()["channel.errors"]
        kinds = {entry["labels"]["kind"] for entry in errors}
        assert "peer-protocol-error" in kinds

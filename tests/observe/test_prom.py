"""Prometheus exposition: text rendering, the HTTP endpoint, the CLI.

``render_prometheus`` is pinned against the text format scrapers
parse (TYPE lines, label rendering, cumulative histogram buckets);
``MetricsServer`` and ``python -m repro.observe serve --oneshot`` are
exercised over real HTTP on an ephemeral port.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

from repro.observe import cli as observe_cli
from repro.observe.metrics import MetricsRegistry
from repro.observe.prom import MetricsServer, render_prometheus


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", op="echo").inc(3)
    gauge = registry.gauge("pending")
    gauge.set(5)
    gauge.set(2)
    histogram = registry.histogram("invoke.us", buckets=(100, 1000))
    histogram.record(50)
    histogram.record(500)
    histogram.record(5000)
    return registry


class TestRender:
    def test_counter_with_labels(self):
        text = render_prometheus(sample_registry())
        assert "# TYPE rpc_calls counter" in text
        assert 'rpc_calls{op="echo"} 3' in text

    def test_gauge_keeps_high_water_companion(self):
        text = render_prometheus(sample_registry())
        assert "# TYPE pending gauge" in text
        assert "pending 2" in text
        assert "pending_max 5" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(sample_registry())
        assert 'invoke_us_bucket{le="100"} 1' in text
        assert 'invoke_us_bucket{le="1000"} 2' in text
        assert 'invoke_us_bucket{le="+Inf"} 3' in text
        assert "invoke_us_sum 5550" in text
        assert "invoke_us_count 3" in text

    def test_accepts_a_plain_snapshot(self):
        snapshot = sample_registry().snapshot()
        assert render_prometheus(snapshot) == render_prometheus(
            sample_registry()
        )

    def test_observer_exposition_carries_wire_buffer_stats(self):
        # An Observer's registry mirrors the send-pool and frame-intern
        # counters via a collect hook, so every scrape sees live pool
        # state without the wire layer pushing metrics on its hot path.
        from repro.observe import Observer
        from repro.wire.bufferplan import FRAME_CACHE, SEND_POOL

        SEND_POOL.release(SEND_POOL.acquire())
        expected_hits = FRAME_CACHE.stats()["hits"]
        expected_size = SEND_POOL.stats()["size"]
        text = render_prometheus(Observer().metrics)
        assert f"wire_send_pool_size {expected_size}" in text
        assert f"wire_frame_cache_hits {expected_hits}" in text
        assert "# TYPE wire_frame_cache_evictions gauge" in text

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("wire.bytes-sent").inc()
        assert "wire_bytes_sent 1" in render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestMetricsServer:
    def test_serves_live_registry_over_http(self):
        registry = sample_registry()
        server = MetricsServer(registry).start()
        try:
            host, port = server.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert 'rpc_calls{op="echo"} 3' in body
            # Live source: a scrape between updates sees current values.
            registry.counter("rpc.calls", op="echo").inc()
            with urllib.request.urlopen(
                f"http://{host}:{port}/", timeout=10
            ) as response:
                assert 'rpc_calls{op="echo"} 4' in response.read().decode()
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = MetricsServer(sample_registry()).start()
        try:
            host, port = server.address
            try:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10
                )
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:
                raise AssertionError("expected a 404")
        finally:
            server.stop()


class TestServeCli:
    def _scrape_oneshot(self, path=None):
        out = io.StringIO()
        result = {}

        def run():
            result["exit"] = observe_cli.serve(
                path, oneshot=True, out=out
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        url = None
        while time.monotonic() < deadline:
            text = out.getvalue()
            if "http://" in text and text.endswith("\n"):
                url = text.split("http://", 1)[1].split()[0]
                break
            time.sleep(0.02)
        assert url, "serve never announced its address"
        with urllib.request.urlopen(f"http://{url}", timeout=10) as response:
            body = response.read().decode("utf-8")
        thread.join(timeout=10)
        assert result["exit"] == 0
        return body

    def test_serves_a_postmortem_bundle(self, tmp_path):
        bundle = {
            "version": 1,
            "reason": {"kind": "send-failed", "message": "boom"},
            "observer": {
                "metrics": sample_registry().snapshot(),
                "spans": [],
            },
            "events": [],
        }
        path = tmp_path / "postmortem-1-0001-send-failed.json"
        path.write_text(json.dumps(bundle), encoding="utf-8")
        body = self._scrape_oneshot(str(path))
        assert 'rpc_calls{op="echo"} 3' in body

    def test_serves_a_bare_metrics_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(sample_registry().snapshot()), encoding="utf-8"
        )
        assert "pending_max 5" in self._scrape_oneshot(str(path))

"""Tests for the metrics registry and its instruments."""

import threading

import pytest

from repro.observe import (
    ChannelMeter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_incs_are_not_lost(self):
        counter = Counter()
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_snapshot(self):
        counter = Counter()
        counter.inc(3)
        assert counter.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 5

    def test_add(self):
        gauge = Gauge()
        gauge.add(3)
        gauge.add(-1)
        assert gauge.value == 2
        assert gauge.max == 3


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = Histogram()
        for value in (10, 200, 3000):
            histogram.record(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 3210
        assert snap["min"] == 10
        assert snap["max"] == 3000
        assert snap["mean"] == pytest.approx(1070)

    def test_overflow_bucket(self):
        histogram = Histogram(buckets=(10, 100))
        histogram.record(10_000)
        assert histogram.snapshot()["overflow"] == 1

    def test_quantile_estimate(self):
        histogram = Histogram()
        for _ in range(99):
            histogram.record(80)
        histogram.record(40_000)
        assert histogram.quantile(0.5) == 100  # bucket upper bound of 80
        assert histogram.quantile(0.999) == 40_000

    def test_empty_quantile_is_none(self):
        assert Histogram().quantile(0.5) is None


class TestRegistry:
    def test_same_name_and_labels_memoize(self):
        registry = MetricsRegistry()
        a = registry.counter("x", op="echo")
        b = registry.counter("x", op="echo")
        assert a is b

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("x", op="echo")
        b = registry.counter("x", op="noop")
        assert a is not b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_groups_by_name(self):
        registry = MetricsRegistry()
        registry.counter("calls", op="a").inc(2)
        registry.counter("calls", op="b").inc(3)
        registry.gauge("depth").set(7)
        snap = registry.snapshot()
        assert {entry["labels"]["op"]: entry["value"]
                for entry in snap["calls"]} == {"a": 2, "b": 3}
        assert snap["depth"][0]["value"] == 7

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestChannelMeter:
    def test_meter_feeds_counters(self):
        sent, received = Counter(), Counter()
        meter = ChannelMeter(sent, received)
        meter.sent(100)
        meter.received(40)
        meter.sent(1)
        assert sent.value == 101
        assert received.value == 40

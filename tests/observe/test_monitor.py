"""ORBMonitor: live ORB introspection served over the ORB itself.

The dogfooding acceptance: an Orb built with ``monitor=True`` answers
``snapshot``/``health``/``recent_errors`` as ordinary remote calls on a
real channel, with no type-registry setup on either side — and the
monitoring traffic itself flows through the same observability
machinery (flight recorder, metrics) as any other request.
"""

import pytest

from repro.heidirmi import Orb
from repro.observe import FlightControl, Observer
from repro.observe.monitor import (
    MONITOR_OID,
    MONITOR_TYPE_ID,
    monitor_stub,
)


def make_monitored(protocol="text2", server_observer=None,
                   client_observer=None):
    server = Orb(transport="inproc", protocol=protocol,
                 observer=server_observer, monitor=True).start()
    # The classic text protocol has no request ids to multiplex on.
    client = Orb(transport="inproc", protocol=protocol,
                 multiplex=protocol != "text",
                 observer=client_observer)
    host, port = server.address
    stub = monitor_stub(client, host, port, transport="inproc")
    return server, client, stub


class TestMonitorOverTheOrb:
    def test_health_round_trips_over_text2(self):
        server, client, stub = make_monitored()
        try:
            health = stub.health()
        finally:
            client.stop()
            server.stop()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["orb"]["protocol"] == "text2"
        assert health["orb"]["transport"] == "inproc"

    def test_snapshot_round_trips_over_text2(self):
        observer = Observer(flight=FlightControl())
        server, client, stub = make_monitored(server_observer=observer)
        try:
            snapshot = stub.snapshot()
        finally:
            client.stop()
            server.stop()
        # The monitor itself is a registered object, so the table the
        # snapshot reports is never empty.
        assert snapshot["orb"]["objects"] >= 1
        assert snapshot["orb"]["protocol"] == "text2"
        assert snapshot["orb"]["active_connections"] >= 1
        # The serving Orb's observer state rides along: metrics, spans
        # and the flight recorder's spool summary.
        assert "metrics" in snapshot
        assert snapshot["flight"]["bundles_written"] == 0

    def test_health_reports_wire_buffer_stats(self):
        # The zero-copy emission layer's send pool and frame-intern
        # cache surface through health, so an operator can see pool
        # reuse and intern hit rates from a plain remote call.
        server, client, stub = make_monitored(protocol="giop")
        try:
            # The health call itself rides the GIOP emitter, so the
            # counters are live by the time the reply is decoded.
            buffers = stub.health()["orb"]["wire_buffers"]
        finally:
            client.stop()
            server.stop()
        for store in ("send_pool", "frame_cache"):
            counters = buffers[store]
            for key in ("size", "hits", "misses", "evictions"):
                assert counters[key] >= 0
        assert buffers["send_pool"]["hits"] + \
            buffers["send_pool"]["misses"] > 0

    @pytest.mark.parametrize("protocol_name", ("text", "text2", "giop"))
    def test_every_protocol_serves_the_monitor(self, protocol_name):
        server, client, stub = make_monitored(protocol=protocol_name)
        try:
            assert stub.health()["orb"]["protocol"] == protocol_name
        finally:
            client.stop()
            server.stop()

    def test_recent_errors_starts_empty(self):
        observer = Observer(flight=FlightControl())
        server, client, stub = make_monitored(server_observer=observer)
        try:
            assert stub.recent_errors() == []
        finally:
            client.stop()
            server.stop()

    def test_monitor_calls_appear_in_the_client_flight_ring(self):
        # Dogfooding: the monitoring RPC is ordinary traffic, so the
        # client's own flight recorder captures its replies.
        client_observer = Observer(flight=FlightControl())
        server, client, stub = make_monitored(
            client_observer=client_observer
        )
        try:
            stub.health()
            communicator = client.connections.acquire(
                stub._hd_ref.bootstrap
            )
            records = communicator.channel.flight.snapshot()
        finally:
            client.stop()
            server.stop()
        assert any(record.kind == "ReplyReceived" for record in records)
        assert any("health" in record.summary for record in records
                   if record.kind == "RequestReceived") or any(
            b"health" in bytes(record.frame) for record in records
        )


class TestMonitorRegistration:
    def test_registered_only_when_asked(self):
        plain = Orb(transport="inproc", protocol="text2").start()
        monitored = Orb(transport="inproc", protocol="text2",
                        monitor=True).start()
        try:
            assert MONITOR_OID not in plain._objects
            assert MONITOR_OID in monitored._objects
        finally:
            plain.stop()
            monitored.stop()

    def test_restart_registers_once(self):
        orb = Orb(transport="inproc", protocol="text2", monitor=True)
        orb.start()
        orb.stop()
        orb.start()
        try:
            entries = [oid for oid in orb._objects if oid == MONITOR_OID]
            assert entries == [MONITOR_OID]
        finally:
            orb.stop()

    def test_stub_needs_no_registry_entries(self):
        # monitor_stub builds the stub class directly and the server
        # dispatches through MonitorImpl._hd_skel_class_; neither side
        # consulted a TypeRegistry for the monitor interface.
        server, client, stub = make_monitored()
        try:
            assert stub._hd_type_id_ == MONITOR_TYPE_ID
            assert stub.health()["status"] == "ok"
        finally:
            client.stop()
            server.stop()


class TestResilienceHealth:
    """The health document's overload/drain/breaker/budget section."""

    def test_admission_and_shed_counters_surface_remotely(self):
        import threading
        import time

        from repro.observe import render_prometheus
        from repro.resilience import AdmissionPolicy

        from tests.resilience.rig import TYPE_ID, EchoImpl, registry

        observer = Observer()
        server = Orb(transport="tcp", protocol="text2", types=registry(),
                     observer=observer, monitor=True,
                     admission=AdmissionPolicy(max_queue_depth=1,
                                               latency_target=60.0)).start()
        client = Orb(transport="tcp", protocol="text2", types=registry(),
                     multiplex=False)
        try:
            echo = client.resolve(
                server.register(EchoImpl(), type_id=TYPE_ID).stringify()
            )
            # Occupy the single admission slot, then get shed.
            slow = threading.Thread(
                target=lambda: echo.echo("slow", delay_ms=300), daemon=True
            )
            slow.start()
            time.sleep(0.1)
            with pytest.raises(Exception):
                echo.echo("excess")
            slow.join(timeout=5)

            host, port = server.address
            stub = monitor_stub(client, host, port, transport="tcp")
            health = stub.health()
            assert health["status"] == "ok"
            resilience = health["resilience"]
            assert resilience["draining"] is False
            admission = resilience["admission"]
            assert admission["max_queue_depth"] == 1
            assert admission["shed"]["depth"] == 1
            assert admission["accepted"] >= 1
            assert resilience["retry_budgets"] == {}
            # The shed also landed in the metrics registry, so the
            # Prometheus exposition carries it.
            exposition = render_prometheus(observer.metrics)
            assert 'overload_shed{reason="admission"} 1' in exposition
        finally:
            client.stop()
            server.stop()

    def test_draining_flag_flips_the_status(self):
        from repro.observe.monitor import MonitorImpl

        orb = Orb(transport="inproc", protocol="text2").start()
        try:
            impl = MonitorImpl(orb)
            assert impl.health()["status"] == "ok"
            with orb._lock:
                orb._draining = True
            health = impl.health()
            assert health["status"] == "draining"
            assert health["resilience"]["draining"] is True
        finally:
            with orb._lock:
                orb._draining = False
            orb.stop()

    def test_breaker_and_budget_state_per_endpoint(self):
        from repro.resilience import (
            BreakerPolicy,
            ResiliencePolicy,
            RetryBudgetPolicy,
            RetryPolicy,
        )
        from repro.observe.monitor import MonitorImpl

        from tests.resilience.rig import make_pair, stop_pair

        server, client, stub, _ = make_pair(
            protocol="text2", client_kwargs={"resilience": ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2),
                breaker=BreakerPolicy(),
                retry_budget=RetryBudgetPolicy(capacity=4),
            )},
        )
        try:
            assert stub.echo("ok") == "ack:ok"
            resilience = MonitorImpl(client).health()["resilience"]
            assert len(resilience["breakers"]) == 1
            (breaker_state,) = resilience["breakers"].values()
            assert breaker_state["state"] == "closed"
            assert breaker_state["overloaded"] == 0
            (budget_state,) = resilience["retry_budgets"].values()
            assert budget_state["tokens"] == 4.0
            assert budget_state["denied"] == 0
        finally:
            stop_pair(server, client)

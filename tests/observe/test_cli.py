"""Tests for the ``python -m repro.observe`` trace-inspection CLI."""

import io
import json

import pytest

from repro.observe.cli import (
    format_span_line,
    main,
    percentile,
    render_summary,
    render_waterfall,
    summarize,
    tail,
)


def _span(name="client", operation="echo", duration_us=100, trace_id="t1",
          span_id="s1", parent_id=None, start=1000.0, stages=None,
          error=None):
    record = {
        "name": name, "operation": operation, "trace_id": trace_id,
        "span_id": span_id, "parent_id": parent_id, "start": start,
        "duration_us": duration_us,
        "stages": stages if stages is not None else [["send", 60],
                                                     ["wait", 40]],
    }
    if error:
        record["error"] = error
    return record


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_single_value(self):
        assert percentile([42], 0.99) == 42

    def test_median_interpolates(self):
        assert percentile([10, 20], 0.5) == 15

    def test_p99_of_uniform(self):
        values = list(range(1, 101))
        assert percentile(values, 0.99) == pytest.approx(99.01)


class TestSummarize:
    def test_groups_by_kind_and_operation(self):
        spans = [
            _span(duration_us=100),
            _span(duration_us=300),
            _span(name="server", duration_us=50),
        ]
        rows = summarize(spans)
        assert [(row["kind"], row["operation"]) for row in rows] == [
            ("client", "echo"), ("server", "echo"),
        ]
        client_row = rows[0]
        assert client_row["count"] == 2
        assert client_row["p50_us"] == 200
        assert client_row["mean_stages_us"] == {"send": 60, "wait": 40}

    def test_counts_errors(self):
        rows = summarize([_span(), _span(error="boom")])
        assert rows[0]["errors"] == 1

    def test_skips_unfinished_spans(self):
        assert summarize([_span(duration_us=None)]) == []

    def test_render_mentions_operation_and_count(self):
        text = render_summary([_span(), _span()])
        assert "echo" in text
        assert "2 spans" in text

    def test_render_empty(self):
        assert "no finished spans" in render_summary([])


class TestWaterfall:
    def test_renders_linked_trace(self):
        spans = [
            _span(name="client", span_id="c1", start=1000.0,
                  duration_us=1000,
                  stages=[["marshal", 100], ["send", 400], ["wait", 500]]),
            _span(name="server", span_id="s1", parent_id="c1",
                  start=1000.0002, duration_us=500,
                  stages=[["select", 100], ["dispatch", 400]]),
        ]
        text = render_waterfall(spans)
        assert "trace t1" in text
        assert "client:echo" in text
        assert "server:echo" in text
        assert "m=marshal" in text
        assert "d=dispatch" in text

    def test_defaults_to_last_trace(self):
        spans = [_span(trace_id="old"), _span(trace_id="new")]
        assert "trace new" in render_waterfall(spans)

    def test_explicit_trace_id(self):
        spans = [_span(trace_id="old"), _span(trace_id="new")]
        assert "trace old" in render_waterfall(spans, trace_id="old")

    def test_empty(self):
        assert "no spans" in render_waterfall([])


class TestTail:
    def test_format_span_line(self):
        line = format_span_line(_span(duration_us=1500))
        assert "client" in line
        assert "echo" in line
        assert "1.50ms" in line
        assert "trace=t1" in line

    def test_tail_reads_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            for index in range(3):
                handle.write(json.dumps(_span(span_id=f"s{index}")) + "\n")
        out = io.StringIO()
        assert tail(str(path), out=out) == 3
        assert len(out.getvalue().splitlines()) == 3

    def test_tail_limit(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            for index in range(5):
                handle.write(json.dumps(_span()) + "\n")
        assert tail(str(path), limit=2, out=io.StringIO()) == 2


class TestTailTolerance:
    """A live writer can crash or be caught mid-append; tail survives."""

    def test_malformed_record_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(_span(span_id="s0")) + "\n")
            handle.write("{this is not json\n")
            handle.write(json.dumps(_span(span_id="s1")) + "\n")
        out = io.StringIO()
        assert tail(str(path), out=out) == 2
        text = out.getvalue()
        assert len([line for line in text.splitlines()
                    if "trace=" in line]) == 2
        assert "1 malformed record(s) skipped" in text

    def test_truncated_final_line_counts_as_skipped(self, tmp_path):
        # A crashed writer leaves the file ending mid-record; without
        # --follow there is no remainder coming, so it is reported.
        path = tmp_path / "spans.jsonl"
        whole = json.dumps(_span())
        with open(path, "w") as handle:
            handle.write(whole + "\n")
            handle.write(whole[: len(whole) // 2])
        out = io.StringIO()
        assert tail(str(path), out=out) == 1
        assert "1 malformed record(s) skipped" in out.getvalue()

    def test_blank_lines_are_ignored_silently(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(_span()) + "\n\n\n")
            handle.write(json.dumps(_span()) + "\n")
        out = io.StringIO()
        assert tail(str(path), out=out) == 2
        assert "skipped" not in out.getvalue()

    def test_limit_reached_amid_garbage(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps(_span()) + "\n")
            handle.write("more garbage\n")
            handle.write(json.dumps(_span()) + "\n")
        out = io.StringIO()
        assert tail(str(path), limit=1, out=out) == 1
        assert "1 malformed record(s) skipped" in out.getvalue()


class TestMain:
    def _span_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(_span()) + "\n")
        return str(path)

    def test_summary_command(self, tmp_path, capsys):
        assert main(["summary", self._span_file(tmp_path)]) == 0
        assert "echo" in capsys.readouterr().out

    def test_waterfall_command(self, tmp_path, capsys):
        assert main(["waterfall", self._span_file(tmp_path)]) == 0
        assert "trace t1" in capsys.readouterr().out

    def test_tail_command(self, tmp_path, capsys):
        assert main(["tail", self._span_file(tmp_path)]) == 0
        assert "trace=t1" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path):
        assert main(["summary", str(tmp_path / "missing.jsonl")]) == 2

"""Tests for the EST-program emitter (paper Fig. 8) and its round-trip."""

from hypothesis import given, settings, strategies as st

from repro.est import build_est, emit_program, load_program
from repro.est.node import Ast
from repro.idl import parse


class TestEmitShape:
    def test_header_and_root_binding(self, paper_est):
        program = emit_program(paper_est)
        assert program.startswith("#!/usr/bin/env python3")
        assert "from repro.est.node import Ast" in program
        assert program.rstrip().endswith("ROOT = n0")

    def test_repository_id_comments(self, paper_est):
        """Fig. 8 annotates each node with its repository ID."""
        program = emit_program(paper_est)
        assert "# IDL:Heidi/Status:1.0" in program
        assert "# IDL:Heidi/A:1.0" in program
        assert "# IDL:Heidi/A/f:1.0" in program

    def test_depth_indexed_variables(self, paper_est):
        """Fig. 8 reuses n0/n1/n2... by depth, not one var per node."""
        program = emit_program(paper_est)
        assert "n0 = Ast('Root', 'Root')" in program
        assert "n1 = Ast('Heidi', 'Module', n0)" in program
        assert "n2 = Ast('Status', 'Enum', n1)" in program
        # The SSequence alias reuses n2 at the same depth.
        assert "n2 = Ast('SSequence', 'Alias', n1)" in program

    def test_add_prop_calls(self, paper_est):
        program = emit_program(paper_est)
        assert "n2.add_prop('members', ['Start', 'Stop'])" in program
        assert "n2.add_prop('Parent', 'Heidi_S')" in program
        assert "n4.add_prop('getType', 'in')" in program


class TestRoundTrip:
    def test_paper_est_roundtrip(self, paper_est):
        rebuilt = load_program(emit_program(paper_est))
        assert rebuilt.structurally_equal(paper_est)

    def test_empty_root_roundtrip(self):
        root = Ast("Root", "Root")
        assert load_program(emit_program(root)).structurally_equal(root)

    def test_special_characters_in_props(self):
        root = Ast("Root", "Root")
        node = Ast("x", "Const", root)
        node.add_prop("value", "a 'quoted' \"string\"\nwith newline")
        node.add_prop("numbers", [1, -2, 3.5])
        node.add_prop("flag", True)
        assert load_program(emit_program(root)).structurally_equal(root)

    def test_load_rejects_programs_without_root(self):
        import pytest

        with pytest.raises(ValueError):
            load_program("x = 1\n")


@st.composite
def random_est(draw):
    root = Ast("Root", "Root")
    for m_index in range(draw(st.integers(1, 3))):
        module = Ast(f"M{m_index}", "Module", root)
        for i_index in range(draw(st.integers(0, 3))):
            interface = Ast(f"I{i_index}", "Interface", module)
            interface.add_prop("repoId", f"IDL:M{m_index}/I{i_index}:1.0")
            for o_index in range(draw(st.integers(0, 3))):
                op = Ast(f"op{o_index}", "Operation", interface)
                op.add_prop("type", draw(st.sampled_from(["void", "long"])))
                for p_index in range(draw(st.integers(0, 2))):
                    param = Ast(f"p{p_index}", "Param", op)
                    param.add_prop(
                        "defaultParam",
                        draw(st.sampled_from(["", "0", "TRUE"])),
                    )
    return root


@given(random_est())
@settings(max_examples=50, deadline=None)
def test_random_est_roundtrip(est):
    assert load_program(emit_program(est)).structurally_equal(est)


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=40))
@settings(max_examples=50, deadline=None)
def test_arbitrary_string_props_roundtrip(value):
    root = Ast("Root", "Root")
    Ast("n", "Const", root).add_prop("value", value)
    assert load_program(emit_program(root)).structurally_equal(root)


def test_idl_to_est_program_equivalence():
    """Parsing IDL and evaluating the emitted program agree exactly."""
    source = """
    module Zoo {
      enum Species { Cat, Dog };
      struct Record { string name; Species kind; };
      interface Keeper {
        void feed(in Record r, in long amount = 3);
        readonly attribute long count;
      };
    };
    """
    est = build_est(parse(source))
    assert load_program(emit_program(est)).structurally_equal(est)


class TestExternalRepresentation:
    """The neutral external EST format (the C6 baseline)."""

    def test_paper_est_roundtrip(self, paper_est):
        from repro.est.emit import dump_external, parse_external

        rebuilt = parse_external(dump_external(paper_est))
        assert rebuilt.structurally_equal(paper_est)

    def test_line_shape(self, paper_est):
        from repro.est.emit import dump_external

        text = dump_external(paper_est)
        first = text.splitlines()[0]
        assert first == "N 0 'Root' 'Root'"
        assert any(line.startswith("P 'members'") for line in text.splitlines())

    def test_empty_input_rejected(self):
        import pytest as _pytest

        from repro.est.emit import parse_external

        with _pytest.raises(ValueError):
            parse_external("")

    def test_bad_tag_rejected(self):
        import pytest as _pytest

        from repro.est.emit import parse_external

        with _pytest.raises(ValueError):
            parse_external("X nonsense line")


@given(random_est())
@settings(max_examples=50, deadline=None)
def test_external_roundtrip_random(est):
    from repro.est.emit import dump_external, parse_external

    assert parse_external(dump_external(est)).structurally_equal(est)


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=30))
@settings(max_examples=50, deadline=None)
def test_external_roundtrip_arbitrary_strings(value):
    from repro.est.emit import dump_external, parse_external

    root = Ast("Root", "Root")
    Ast("n", "Const", root).add_prop("value", value)
    assert parse_external(dump_external(root)).structurally_equal(root)

"""Unit tests for EST traversal/rendering helpers."""

from repro.est import find, find_all, render_tree
from repro.est.query import count_nodes, interfaces_of


class TestFind:
    def test_find_by_kind_and_name(self, paper_est):
        node = find(paper_est, kind="Operation", name="q")
        assert node is not None and node.kind == "Operation"

    def test_find_by_kind_only(self, paper_est):
        assert find(paper_est, kind="Enum").name == "Status"

    def test_find_missing_is_none(self, paper_est):
        assert find(paper_est, kind="Union") is None

    def test_find_all_in_tree_order(self, paper_est):
        params = find_all(paper_est, kind="Param")
        assert [p.name for p in params] == ["a", "s", "l", "s", "b", "s"]

    def test_interfaces_of(self, paper_est):
        assert [n.name for n in interfaces_of(paper_est)] == ["A", "S"]

    def test_count_nodes(self, paper_est):
        # Root + module + enum + alias + seq child + 2 interfaces +
        # inherited + 6 ops + 6 params + attribute = 19 at minimum.
        assert count_nodes(paper_est) >= 19


class TestRenderTree:
    def test_fig7_shape(self, paper_est):
        """The rendering shows the Fig. 7 grouping: the button attribute
        in a separate sub-tree from the methods."""
        text = render_tree(paper_est)
        assert "Interface: A" in text
        assert "[methodList]" in text
        assert "[attributeList]" in text
        method_pos = text.index("[methodList]")
        attr_pos = text.index("[attributeList]")
        button_pos = text.index("Attribute: button")
        assert button_pos > attr_pos > method_pos

    def test_render_with_props(self, paper_est):
        text = render_tree(paper_est, show_props=True)
        assert ".repoId = 'IDL:Heidi/A:1.0'" in text
        assert ".getType = 'in'" in text

    def test_indentation_reflects_depth(self, paper_est):
        lines = render_tree(paper_est).splitlines()
        root_line = next(l for l in lines if l.strip() == "Root: Root")
        param_line = next(l for l in lines if l.strip() == "Param: a")
        assert len(param_line) - len(param_line.lstrip()) > len(root_line) - len(
            root_line.lstrip()
        )

"""Unit tests for the EST node model (the Perl Ast.pm equivalent)."""

from repro.est.node import Ast, group_key, var_base


class TestNaming:
    def test_var_base_lowercases_first(self):
        assert var_base("Interface") == "interface"

    def test_operation_alias(self):
        # Fig. 8 creates "Operation" nodes; Fig. 9 iterates methodList.
        assert var_base("Operation") == "method"
        assert group_key("Operation") == "methodList"

    def test_group_key(self):
        assert group_key("Param") == "paramList"
        assert group_key("Inherited") == "inheritedList"


class TestConstruction:
    def test_child_registers_in_kind_group(self):
        root = Ast("Root", "Root")
        child = Ast("A", "Interface", root)
        assert root.groups["interfaceList"] == [child]
        assert child.parent is root

    def test_children_grouped_by_kind(self):
        """The defining EST property: similar elements group together."""
        interface = Ast("A", "Interface")
        op1 = Ast("q", "Operation", interface)
        attr = Ast("button", "Attribute", interface)
        op2 = Ast("s", "Operation", interface)
        assert interface.groups["methodList"] == [op1, op2]
        assert interface.groups["attributeList"] == [attr]

    def test_auto_name_property(self):
        node = Ast("A", "Interface")
        assert node.get("interfaceName") == "A"

    def test_operation_auto_name_is_method_name(self):
        node = Ast("f", "Operation")
        assert node.get("methodName") == "f"


class TestProperties:
    def test_add_prop_and_get(self):
        node = Ast("x", "Param")
        node.add_prop("type", "objref")
        assert node.get("type") == "objref"

    def test_get_default(self):
        node = Ast("x", "Param")
        assert node.get("missing", 42) == 42

    def test_get_finds_group_lists(self):
        parent = Ast("A", "Interface")
        child = Ast("f", "Operation", parent)
        assert parent.get("methodList") == [child]

    def test_lookup_walks_ancestors(self):
        interface = Ast("A", "Interface")
        interface.add_prop("repoId", "IDL:A:1.0")
        op = Ast("f", "Operation", interface)
        param = Ast("a", "Param", op)
        assert param.lookup("repoId") == "IDL:A:1.0"
        assert param.lookup("interfaceName") == "A"

    def test_lookup_prefers_innermost(self):
        outer = Ast("A", "Interface")
        outer.add_prop("type", "outer")
        inner = Ast("f", "Operation", outer)
        inner.add_prop("type", "inner")
        assert inner.lookup("type") == "inner"

    def test_lookup_missing_is_none(self):
        assert Ast("A", "Interface").lookup("nope") is None


class TestTraversal:
    def test_walk_depth_first(self):
        root = Ast("Root", "Root")
        module = Ast("M", "Module", root)
        interface = Ast("A", "Interface", module)
        op = Ast("f", "Operation", interface)
        assert [n.name for n in root.walk()] == ["Root", "M", "A", "f"]

    def test_children_by_kind_name(self):
        parent = Ast("A", "Interface")
        Ast("f", "Operation", parent)
        assert len(parent.children("Operation")) == 1
        assert len(parent.children("methodList")) == 1

    def test_path(self):
        root = Ast("Root", "Root")
        module = Ast("Heidi", "Module", root)
        interface = Ast("A", "Interface", module)
        assert interface.path() == ("Root", "Heidi", "A")


class TestEquality:
    def _tree(self):
        root = Ast("Root", "Root")
        child = Ast("A", "Interface", root)
        child.add_prop("repoId", "IDL:A:1.0")
        return root

    def test_equal_trees(self):
        assert self._tree().structurally_equal(self._tree())

    def test_prop_difference_detected(self):
        a, b = self._tree(), self._tree()
        b.groups["interfaceList"][0].add_prop("extra", 1)
        assert not a.structurally_equal(b)

    def test_child_count_difference_detected(self):
        a, b = self._tree(), self._tree()
        Ast("B", "Interface", b)
        assert not a.structurally_equal(b)

    def test_name_difference_detected(self):
        a = Ast("X", "Root")
        b = Ast("Y", "Root")
        assert not a.structurally_equal(b)

"""Tests for the EST-storing Interface Repository (paper §5)."""

import pytest

from repro.est import build_est
from repro.est.repository import InterfaceRepository
from repro.idl import parse

OTHER_IDL = """\
module Util {
  interface Logger { void log(in string line); };
  interface Timer : Logger { long elapsed(); };
};
"""


@pytest.fixture
def repository(paper_spec):
    repo = InterfaceRepository()
    repo.add(paper_spec, name="A.idl")
    repo.add(parse(OTHER_IDL, filename="Util.idl"), name="Util.idl")
    return repo


class TestPopulation:
    def test_entries(self, repository):
        assert repository.entries() == ["A.idl", "Util.idl"]

    def test_accepts_prebuilt_est(self, paper_spec):
        repo = InterfaceRepository()
        name = repo.add(build_est(paper_spec))
        assert name == "A.idl"  # from the EST's file property

    def test_readd_replaces(self, repository):
        repository.add(parse("interface A { };"), name="A.idl")
        assert "IDL:Heidi/A:1.0" not in repository
        assert "IDL:A:1.0" in repository

    def test_remove(self, repository):
        assert repository.remove("Util.idl")
        assert "IDL:Util/Timer:1.0" not in repository
        assert not repository.remove("Util.idl")


class TestQueries:
    def test_lookup_by_repository_id(self, repository):
        node = repository.lookup("IDL:Heidi/A:1.0")
        assert node.kind == "Interface" and node.name == "A"

    def test_lookup_nested_declarations(self, repository):
        assert repository.lookup("IDL:Heidi/Status:1.0").kind == "Enum"
        assert repository.lookup("IDL:Heidi/A/f:1.0").kind == "Operation"

    def test_lookup_missing(self, repository):
        assert repository.lookup("IDL:Nope:1.0") is None

    def test_entry_of(self, repository):
        assert repository.entry_of("IDL:Util/Logger:1.0") == "Util.idl"

    def test_interfaces_across_entries(self, repository):
        assert repository.interfaces() == [
            "IDL:Heidi/A:1.0",
            "IDL:Heidi/S:1.0",
            "IDL:Util/Logger:1.0",
            "IDL:Util/Timer:1.0",
        ]

    def test_operations_of(self, repository):
        assert repository.operations_of("IDL:Heidi/A:1.0") == [
            "f", "g", "p", "q", "s", "t",
        ]
        assert repository.operations_of("IDL:Heidi/Status:1.0") is None

    def test_parents_of(self, repository):
        assert repository.parents_of("IDL:Util/Timer:1.0") == [
            "IDL:Util/Logger:1.0"
        ]
        assert repository.parents_of("IDL:Util/Logger:1.0") == []

    def test_is_a_through_repository(self, repository):
        assert repository.is_a("IDL:Util/Timer:1.0", "IDL:Util/Logger:1.0")
        assert repository.is_a("IDL:Heidi/A:1.0", "IDL:Heidi/S:1.0")
        assert not repository.is_a("IDL:Util/Logger:1.0", "IDL:Util/Timer:1.0")

    def test_contains_and_len(self, repository):
        assert "IDL:Heidi/A:1.0" in repository
        assert len(repository) == 2


class TestPersistence:
    def test_save_and_load_roundtrip(self, repository, tmp_path):
        directory = repository.save(str(tmp_path / "ir"))
        loaded = InterfaceRepository.load(directory)
        assert loaded.entries() == repository.entries()
        assert loaded.repo_ids() == repository.repo_ids()
        original = repository.entry("A.idl")
        assert loaded.entry("A.idl").structurally_equal(original)

    def test_saved_entries_are_est_programs(self, repository, tmp_path):
        """Persistence reuses the Fig. 8 artifact: each entry on disk is
        an executable Python program that rebuilds its EST."""
        directory = repository.save(str(tmp_path / "ir"))
        import os

        from repro.est.emit import load_program

        entry_files = [f for f in os.listdir(directory) if f.endswith(".est.py")]
        assert len(entry_files) == 2
        with open(os.path.join(directory, entry_files[0])) as handle:
            est = load_program(handle.read())
        assert est.kind == "Root"

    def test_generation_from_loaded_repository(self, repository, tmp_path):
        """A mapping pack can generate straight from a persisted IR."""
        from repro.mappings import get_pack

        directory = repository.save(str(tmp_path / "ir"))
        loaded = InterfaceRepository.load(directory)
        est = loaded.entry("A.idl")
        sink = get_pack("heidi_cpp").generate(
            None, est=est, variables={"basename": "A", "idlFile": "A.idl"}
        )
        assert "class HdA : virtual public HdS" in sink.files()["A.hh"]

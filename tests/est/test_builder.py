"""Unit tests for AST → EST lowering (paper Figs. 7 and 8)."""

from repro.est import build_est, find, find_all
from repro.idl import parse


class TestGrouping:
    def test_attribute_separated_from_methods(self, paper_est):
        """Fig. 7's key property: button sits in its own sub-tree even
        though the IDL interleaves it between methods q and s."""
        a = find(paper_est, kind="Interface", name="A")
        assert [n.name for n in a.children("Operation")] == [
            "f", "g", "p", "q", "s", "t",
        ]
        assert [n.name for n in a.children("Attribute")] == ["button"]

    def test_module_groups_by_kind(self, paper_est):
        heidi = find(paper_est, kind="Module", name="Heidi")
        assert set(heidi.groups) == {"enumList", "aliasList", "interfaceList"}

    def test_forward_declaration_omitted(self, paper_est):
        # Fig. 8 has no node for the forward `interface S;`.
        interfaces = find_all(paper_est, kind="Interface")
        assert [n.name for n in interfaces] == ["A", "S"]
        assert find(paper_est, kind="Forward") is None


class TestFig8Vocabulary:
    """Property names and values exactly as the paper's Fig. 8 shows."""

    def test_enum_members(self, paper_est):
        status = find(paper_est, kind="Enum", name="Status")
        assert status.get("members") == ["Start", "Stop"]
        assert status.get("repoId") == "IDL:Heidi/Status:1.0"

    def test_alias_sequence_child(self, paper_est):
        alias = find(paper_est, kind="Alias", name="SSequence")
        assert alias.get("type") == "sequence"
        (seq,) = alias.children("Sequence")
        assert seq.get("type") == "objref"
        assert seq.get("typeName") == "Heidi_S"
        assert seq.get("IsVariable") is True

    def test_interface_parent_prop(self, paper_est):
        a = find(paper_est, kind="Interface", name="A")
        assert a.get("Parent") == "Heidi_S"

    def test_operation_type_props(self, paper_est):
        f = find(paper_est, kind="Operation", name="f")
        assert f.get("type") == "void"
        (param,) = f.children("Param")
        assert param.get("type") == "objref"
        assert param.get("typeName") == "Heidi_A"
        assert param.get("getType") == "in"

    def test_incopy_direction_recorded(self, paper_est):
        g = find(paper_est, kind="Operation", name="g")
        (param,) = g.children("Param")
        assert param.get("getType") == "incopy"

    def test_default_param_props(self, paper_est):
        p = find(paper_est, kind="Operation", name="p")
        (param,) = p.children("Param")
        assert param.get("defaultParam") == "0"
        assert param.get("defaultValue") == 0
        q = find(paper_est, kind="Operation", name="q")
        (param,) = q.children("Param")
        assert param.get("defaultParam") == "Heidi::Start"

    def test_no_default_is_empty_string(self, paper_est):
        f = find(paper_est, kind="Operation", name="f")
        (param,) = f.children("Param")
        assert param.get("defaultParam") == ""

    def test_attribute_qualifier(self, paper_est):
        button = find(paper_est, kind="Attribute", name="button")
        assert button.get("attributeQualifier") == "readonly"
        assert button.get("type") == "enum"

    def test_inherited_node(self, paper_est):
        a = find(paper_est, kind="Interface", name="A")
        (inherited,) = a.children("Inherited")
        assert inherited.name == "Heidi::S"
        assert inherited.get("typeName") == "Heidi_S"
        assert inherited.get("repoId") == "IDL:Heidi/S:1.0"


class TestOtherConstructs:
    def test_struct_members(self):
        est = build_est(parse("struct P { long x; string s; };"))
        p = find(est, kind="Struct", name="P")
        members = p.children("Member")
        assert [m.name for m in members] == ["x", "s"]
        assert members[0].get("type") == "long"
        assert p.get("IsVariable") is True

    def test_union_cases(self):
        est = build_est(parse(
            "union U switch (long) { case 1: long a; default: string b; };"
        ))
        u = find(est, kind="Union", name="U")
        cases = u.children("Case")
        assert cases[0].get("labels") == ["1"]
        assert cases[1].get("labels") == ["default"]

    def test_exception_node(self):
        est = build_est(parse("exception E { string why; };"))
        e = find(est, kind="Exception", name="E")
        assert [m.name for m in e.children("Member")] == ["why"]

    def test_const_node(self):
        est = build_est(parse("const long MAX = 3 * 7;"))
        c = find(est, kind="Const", name="MAX")
        assert c.get("evaluated") == 21

    def test_scoped_name_prop(self, paper_est):
        a = find(paper_est, kind="Interface", name="A")
        assert a.get("scopedName") == "Heidi::A"

    def test_include_inlined(self, tmp_path):
        (tmp_path / "b.idl").write_text("interface B { };\n")
        source = '#include "b.idl"\ninterface C : B { };\n'
        spec = parse(source, filename=str(tmp_path / "main.idl"))
        est = build_est(spec)
        assert [n.name for n in find_all(est, kind="Interface")] == ["B", "C"]


class TestAliasResolution:
    def test_param_of_alias_type_resolves_underlying(self):
        est = build_est(parse(
            "typedef sequence<long> Longs; interface I { void f(in Longs v); };"
        ))
        param = find(est, kind="Param", name="v")
        assert param.get("type") == "alias"
        assert param.get("aliasedCategory") == "sequence"
        (element,) = param.children("ElementType")
        assert element.get("type") == "long"

    def test_alias_chain_resolves(self):
        est = build_est(parse(
            "typedef long A; typedef A B; interface I { void f(in B v); };"
        ))
        param = find(est, kind="Param", name="v")
        assert param.get("aliasedCategory") == "long"


class TestMultipleInheritanceExpansion:
    SOURCE = """
    interface A { void fa(); };
    interface B { void fb(); attribute long bx; };
    interface C : A, B { void fc(); };
    """

    def test_expanded_ops_from_secondary_base(self):
        est = build_est(parse(self.SOURCE))
        c = find(est, kind="Interface", name="C")
        assert [n.name for n in c.children("ExpandedOp")] == ["fb"]
        assert [n.name for n in c.children("ExpandedAttr")] == ["bx"]

    def test_primary_base_not_expanded(self):
        est = build_est(parse(self.SOURCE))
        c = find(est, kind="Interface", name="C")
        assert "fa" not in [n.name for n in c.children("ExpandedOp")]

    def test_single_inheritance_has_no_expansion(self, paper_est):
        a = find(paper_est, kind="Interface", name="A")
        assert a.children("ExpandedOp") == []

    def test_diamond_not_expanded_twice(self):
        source = """
        interface R { void r(); };
        interface A : R { };
        interface B : R { void fb(); };
        interface C : A, B { };
        """
        est = build_est(parse(source))
        c = find(est, kind="Interface", name="C")
        # r comes via the primary chain (A→R); only fb needs expanding.
        assert [n.name for n in c.children("ExpandedOp")] == ["fb"]

"""Interop matrix: protocols × header variants × transports.

Two layers of assertion:

- **Byte identity** — for every protocol and every header variant
  (traced/untraced × deadline/no-deadline), the blocking protocol
  adapter emits exactly the bytes the pure wire machine emits.  The
  blocking and asyncio stacks both call the machines, so this pins the
  wire format to one implementation.
- **Observable behaviour** — a full ORB pair run over the blocking
  in-process transport and over the asyncio transport behaves the
  same: same results, same trace propagation (server span parented on
  the wire-carried client context), same deadline enforcement.
"""

import time

import pytest

from repro.heidirmi.call import STATUS_ERROR, STATUS_EXCEPTION
from repro.heidirmi.errors import DeadlineExceeded
from repro.heidirmi.protocol import get_protocol
from repro.observe import Observer
from repro.wire import machine_for

from tests.resilience.rig import make_pair, stop_pair
from tests.wire.rig import (
    PROTOCOLS,
    FixedDeadline,
    RecordingSink,
    make_call,
    make_reply,
)

TRACE = "00aa11bb22cc33dd-4455667788990011"

HEADER_VARIANTS = [
    pytest.param(None, None, id="plain"),
    pytest.param(TRACE, None, id="traced"),
    pytest.param(None, FixedDeadline(ms=2500), id="deadline"),
    pytest.param(TRACE, FixedDeadline(ms=2500), id="traced-deadline"),
]


@pytest.mark.parametrize("trace,deadline", HEADER_VARIANTS)
@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestByteIdentity:
    def test_request_bytes_match(self, protocol_name, trace, deadline):
        call = make_call(protocol_name, trace=trace, deadline=deadline)
        machine_bytes = machine_for(
            protocol_name, "client"
        ).emit_request(call)
        sink = RecordingSink()
        get_protocol(protocol_name).send_request(sink, call)
        assert bytes(sink.data) == machine_bytes

    def test_oneway_bytes_match(self, protocol_name, trace, deadline):
        call = make_call(
            protocol_name, oneway=True, trace=trace, deadline=deadline
        )
        machine_bytes = machine_for(
            protocol_name, "client"
        ).emit_request(call)
        sink = RecordingSink()
        get_protocol(protocol_name).send_request(sink, call)
        assert bytes(sink.data) == machine_bytes


@pytest.mark.parametrize("status", (STATUS_EXCEPTION, STATUS_ERROR))
@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestReplyByteIdentity:
    def test_reply_bytes_match(self, protocol_name, status):
        reply = make_reply(
            protocol_name, status=status, repo_id="IDL:Test/Boom:1.0",
        )
        machine_bytes = machine_for(
            protocol_name, "server"
        ).emit_reply(reply)
        sink = RecordingSink()
        get_protocol(protocol_name).send_reply(sink, reply)
        assert bytes(sink.data) == machine_bytes


def _wait_spans(observer, n, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


@pytest.mark.parametrize("transport", ("inproc", "aio"))
@pytest.mark.parametrize("traced", (False, True), ids=("untraced", "traced"))
@pytest.mark.parametrize(
    "deadline", (None, 5.0), ids=("no-deadline", "deadline")
)
@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestObservableBehaviour:
    def test_matrix_cell(self, protocol_name, transport, traced, deadline):
        client_observer = Observer() if traced else None
        server_observer = Observer() if traced else None
        server, client, stub, impl = make_pair(
            protocol=protocol_name,
            transport=transport,
            server_kwargs={"observer": server_observer},
            client_kwargs={"observer": client_observer},
        )
        try:
            assert stub.echo("hi", deadline=deadline) == "ack:hi"
            assert impl.echoed == ["hi"]
            if traced:
                client_span = _wait_spans(client_observer, 1)[0]
                server_span = _wait_spans(server_observer, 1)[0]
                # The wire carried the context: the server span joins
                # the client's trace and parents on the client span —
                # identically over threads+sockets and over asyncio.
                assert server_span["trace_id"] == client_span["trace_id"]
                assert server_span["parent_id"] == client_span["span_id"]
        finally:
            stop_pair(server, client)


@pytest.mark.parametrize("transport", ("inproc", "aio"))
@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestDeadlineEquivalence:
    def test_expiry_behaviour_matches(self, protocol_name, transport):
        server, client, stub, impl = make_pair(
            protocol=protocol_name, transport=transport
        )
        try:
            with pytest.raises(DeadlineExceeded):
                stub.echo("slow", delay_ms=400, deadline=0.1)
        finally:
            stop_pair(server, client)

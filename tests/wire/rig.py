"""Builders for the sans-I/O conformance suite.

Nothing in this package opens a socket: calls and replies are built
with the protocols' own marshallers, encoded by the wire machines, and
fed back into wire machines as plain bytes.
"""

from repro.heidirmi.call import Call, Reply, STATUS_OK
from repro.heidirmi.protocol import get_protocol

PROTOCOLS = ("text", "text2", "giop")

TARGET = "@tcp:127.0.0.1:9999#7#IDL:Test/Obj:1.0"


class FixedDeadline:
    """Deadline stand-in with a frozen ms budget.

    A real Deadline re-computes ``remaining_ms()`` from the monotonic
    clock on every call, so two encodings of the same call a microsecond
    apart can differ by a millisecond — this keeps byte-identity
    assertions deterministic.
    """

    def __init__(self, ms=1500):
        self.ms = ms

    def remaining_ms(self):
        return self.ms

    @property
    def expired(self):
        return self.ms <= 0


def needs_id(protocol_name, oneway):
    """Does this protocol frame a request id on such a message?"""
    if protocol_name == "giop":
        return True  # GIOP ids even its oneways
    return protocol_name == "text2" and not oneway


def make_call(protocol_name, operation="ping", oneway=False,
              request_id=None, trace=None, deadline=None, payload=True):
    protocol = get_protocol(protocol_name)
    if request_id is None and needs_id(protocol_name, oneway):
        request_id = 7
    call = Call(TARGET, operation, marshaller=protocol.new_marshaller(),
                oneway=oneway, request_id=request_id)
    if payload:
        call.put_string("hello world")  # the space exercises escaping
        call.put_long(42)
    if trace is not None:
        call.trace_context = trace
    if deadline is not None:
        call.deadline = deadline
    return call


def make_reply(protocol_name, status=STATUS_OK, request_id=7, repo_id="",
               text="result"):
    protocol = get_protocol(protocol_name)
    reply = Reply(status=status, repo_id=repo_id,
                  marshaller=protocol.new_marshaller(),
                  request_id=request_id)
    reply.put_string(text)
    return reply


def one_event(machine, data):
    """Feed *data*; assert it produced exactly one event and return it."""
    events = machine.feed_bytes(data)
    assert len(events) == 1, events
    return events[0]


class RecordingSink:
    """A write-only fake channel capturing what a blocking send emits."""

    def __init__(self):
        self.data = bytearray()

    def send(self, data):
        self.data += data

"""Zero-copy emission safety: intern isolation and big-endian paths.

Two hazards the BufferPlan refactor introduces, both pinned here:

- The GIOP emitter interns fully-marshalled frames by call shape and
  patches only the request id on repeats.  A caller who mutates the
  call *after* the frame was emitted must not be able to reach the
  cached bytes, and the mutated call must produce a fresh, different
  frame.
- Reception hands decoders read-only ``memoryview`` slices of the
  receive buffer instead of copies.  Big-endian GIOP frames (which the
  emitter never produces — it is little-endian-only) exercise the
  decode path with no chance of an interned shortcut, both through
  ``feed_bytes`` and through a real blocking :class:`Channel` whose
  ``recv_exact`` returns views.
"""

import socket
import struct

from repro.giop.cdr import CdrEncoder
from repro.giop.iiop import pump_giop_event
from repro.giop.messages import (
    GIOP_HEADER_SIZE,
    MSG_REPLY,
    MSG_REQUEST,
    REPLY_NO_EXCEPTION,
    ReplyHeader,
    RequestHeader,
    frame_message,
)
from repro.heidirmi.call import STATUS_OK
from repro.heidirmi.transport import Channel
from repro.wire import machine_for
from repro.wire.bufferplan import FRAME_CACHE
from repro.wire.events import ReplyReceived, RequestReceived

from tests.wire.rig import TARGET, make_call, make_reply, one_event

#: Request id offset in a context-free GIOP Request/Reply: the 12-byte
#: header, then the empty service-context count ulong.
_ID_OFFSET = GIOP_HEADER_SIZE + 4


class TestInternIsolation:
    def test_mutation_after_emit_does_not_corrupt_cache(self):
        """Appending to a call after emission must not reach the
        interned frame: a fresh same-shape call still gets the
        original bytes."""
        FRAME_CACHE.clear()
        machine = machine_for("giop", "client")
        call = make_call("giop")
        snapshot = bytes(machine.emit_request(call))

        # The caller keeps marshalling into the already-sent call.
        call.put_string("attacker-controlled")

        fresh = make_call("giop")
        assert bytes(machine.emit_request(fresh)) == snapshot

    def test_mutated_call_emits_a_different_frame(self):
        FRAME_CACHE.clear()
        machine = machine_for("giop", "client")
        call = make_call("giop")
        snapshot = bytes(machine.emit_request(call))

        call.put_string("extra")
        mutated = bytes(machine.emit_request(call))
        assert mutated != snapshot
        assert len(mutated) > len(snapshot)

        # The mutated frame carries the extra argument on the wire.
        server = machine_for("giop", "server")
        event = one_event(server, mutated)
        received = event.call
        assert received.get_string() == "hello world"
        assert received.get_long() == 42
        assert received.get_string() == "extra"

    def test_interned_repeat_patches_only_the_request_id(self):
        FRAME_CACHE.clear()
        machine = machine_for("giop", "client")
        first = bytes(machine.emit_request(make_call("giop", request_id=7)))
        second = bytes(machine.emit_request(make_call("giop", request_id=99)))

        assert struct.unpack_from("<I", first, _ID_OFFSET)[0] == 7
        assert struct.unpack_from("<I", second, _ID_OFFSET)[0] == 99
        # Everything but the patched id is byte-identical.
        assert first[:_ID_OFFSET] == second[:_ID_OFFSET]
        assert first[_ID_OFFSET + 4:] == second[_ID_OFFSET + 4:]

    def test_distinct_payloads_get_distinct_frames(self):
        """The intern key covers the marshalled argument shape, so two
        calls differing only in payload never share a frame."""
        FRAME_CACHE.clear()
        machine = machine_for("giop", "client")
        call_a = make_call("giop", payload=False)
        call_a.put_string("alpha")
        call_b = make_call("giop", payload=False)
        call_b.put_string("bravo")

        frame_a = bytes(machine.emit_request(call_a))
        frame_b = bytes(machine.emit_request(call_b))
        assert frame_a != frame_b

        server = machine_for("giop", "server")
        assert one_event(server, frame_a).call.get_string() == "alpha"
        assert one_event(server, frame_b).call.get_string() == "bravo"

    def test_reply_interning_isolated_from_mutation(self):
        FRAME_CACHE.clear()
        machine = machine_for("giop", "server")
        reply = make_reply("giop")
        snapshot = bytes(machine.emit_reply(reply))

        reply.put_string("late addition")

        fresh = make_reply("giop")
        assert bytes(machine.emit_reply(fresh)) == snapshot


class TestBigEndianRoundTrip:
    """Hand-built big-endian frames through the zero-copy decode path.

    The emitter is little-endian-only, so these frames can only come
    from a foreign peer — and can never hit the intern cache.
    """

    @staticmethod
    def _request_frame(request_id=7):
        encoder = CdrEncoder(little_endian=False,
                             start_align=GIOP_HEADER_SIZE)
        RequestHeader(
            request_id=request_id,
            object_key=TARGET.encode("utf-8"),
            operation="ping",
        ).encode(encoder)
        encoder.string("hello world")
        encoder.long(-42)
        return frame_message(MSG_REQUEST, encoder.data(),
                             little_endian=False)

    @staticmethod
    def _reply_frame(request_id=7):
        encoder = CdrEncoder(little_endian=False,
                             start_align=GIOP_HEADER_SIZE)
        ReplyHeader(
            request_id=request_id,
            reply_status=REPLY_NO_EXCEPTION,
        ).encode(encoder)
        encoder.string("result")
        return frame_message(MSG_REPLY, encoder.data(),
                             little_endian=False)

    def test_request_via_feed_bytes(self):
        event = one_event(machine_for("giop", "server"),
                          self._request_frame())
        assert isinstance(event, RequestReceived)
        call = event.call
        assert call.request_id == 7
        assert call.operation == "ping"
        assert call.get_string() == "hello world"
        assert call.get_long() == -42

    def test_reply_via_feed_bytes(self):
        event = one_event(machine_for("giop", "client"),
                          self._reply_frame())
        assert isinstance(event, ReplyReceived)
        assert event.reply.status == STATUS_OK
        assert event.reply.request_id == 7
        assert event.reply.get_string() == "result"

    def test_request_via_blocking_channel(self):
        """The same frame through a real Channel: ``recv_exact`` hands
        the machine read-only views of its receive buffer."""
        left, right = socket.socketpair()
        try:
            channel = Channel(right, peer="test")
            left.sendall(self._request_frame())
            event = pump_giop_event(channel, machine_for("giop", "server"))
            assert isinstance(event, RequestReceived)
            assert event.call.get_string() == "hello world"
            assert event.call.get_long() == -42
        finally:
            left.close()
            right.close()

    def test_lazy_decode_survives_later_reads(self):
        """Views stay valid when more frames land before the payload is
        unmarshalled: the channel buffer reallocates around outstanding
        views instead of resizing under them."""
        left, right = socket.socketpair()
        try:
            channel = Channel(right, peer="test")
            machine = machine_for("giop", "server")
            left.sendall(self._request_frame(request_id=1)
                         + self._request_frame(request_id=2))
            first = pump_giop_event(channel, machine)
            second = pump_giop_event(channel, machine)
            # Unmarshal the *first* call only after the second frame was
            # pulled through the same buffer.
            assert first.call.request_id == 1
            assert first.call.get_string() == "hello world"
            assert second.call.request_id == 2
            assert second.call.get_string() == "hello world"
        finally:
            left.close()
            right.close()

    def test_mixed_byte_orders_on_one_connection(self):
        """A little-endian (interned) frame and a big-endian frame
        interleave on the same machine without confusing state."""
        FRAME_CACHE.clear()
        client = machine_for("giop", "client")
        server = machine_for("giop", "server")
        little = bytes(client.emit_request(make_call("giop")))

        event = one_event(server, little)
        assert event.call.get_string() == "hello world"
        event = one_event(server, self._request_frame())
        assert event.call.get_string() == "hello world"
        assert event.call.get_long() == -42
        event = one_event(server, little)
        assert event.call.get_string() == "hello world"
        assert event.call.get_long() == 42

"""The asyncio front-end (repro.wire.aio).

Three surfaces: the blocking ``aio`` transport facade under unchanged
ORBs, the coroutine server front-end over an Orb's object table, and
the coroutine client — all driven by the same wire machines the
blocking stack pumps.
"""

import asyncio
import re
import threading

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.call import Call
from repro.heidirmi.errors import CommunicationError, DeadlineExceeded
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.transport import get_transport
from repro.wire.aio import (
    AioClientConnection,
    AioOrbServer,
    AioTransport,
    get_event_loop,
)

from tests.resilience.rig import (
    TYPE_ID,
    EchoImpl,
    make_pair,
    registry,
    stop_pair,
)

PROTOCOLS = ("text", "text2", "giop")


def run_async(coroutine, timeout=30):
    """Drive a coroutine from sync test code on the shared loop."""
    return asyncio.run_coroutine_threadsafe(
        coroutine, get_event_loop()
    ).result(timeout)


class TestTransportRegistration:
    def test_lazy_registration_via_get_transport(self):
        assert isinstance(get_transport("aio"), AioTransport)

    def test_connect_refused_kind(self):
        transport = get_transport("aio")
        with pytest.raises(CommunicationError) as excinfo:
            transport.connect("127.0.0.1", 1, timeout=2)
        assert excinfo.value.kind in ("connect-refused", "connect-timeout")

    def test_listener_close_unblocks_accept(self):
        listener = get_transport("aio").listen("127.0.0.1", 0)
        results = []

        def acceptor():
            try:
                listener.accept()
            except CommunicationError as exc:
                results.append(exc.kind)

        thread = threading.Thread(target=acceptor)
        thread.start()
        listener.close()
        thread.join(timeout=5)
        assert results == ["listener-closed"]


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestBlockingFacade:
    def test_echo_and_oneway(self, protocol_name):
        server, client, stub, impl = make_pair(
            protocol=protocol_name, transport="aio"
        )
        try:
            assert stub.echo("hello") == "ack:hello"
            stub.note("fire")
            assert stub.echo("again") == "ack:again"
            assert impl.noted == ["fire"]
        finally:
            stop_pair(server, client)

    def test_deadline_expires(self, protocol_name):
        server, client, stub, impl = make_pair(
            protocol=protocol_name, transport="aio"
        )
        try:
            with pytest.raises(DeadlineExceeded):
                stub.echo("slow", delay_ms=500, deadline=0.1)
        finally:
            stop_pair(server, client)


class TestBlockingFacadeMultiplexed:
    def test_concurrent_callers_share_one_channel(self):
        server, client, stub, impl = make_pair(
            protocol="text2", transport="aio", multiplex=True
        )
        try:
            results = []
            lock = threading.Lock()

            def worker(i):
                value = stub.echo(f"m{i}")
                with lock:
                    results.append(value)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results) == sorted(
                f"ack:m{i}" for i in range(8)
            )
        finally:
            stop_pair(server, client)


def _rewrite_bootstrap(reference, host, port):
    """Point a stringified reference at the aio server's endpoint."""
    return re.sub(r"^@\w+:[^:]+:\d+", f"@tcp:{host}:{port}", reference)


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestAioOrbServer:
    def test_serves_blocking_clients(self, protocol_name):
        types = registry()
        orb = Orb(
            transport="inproc", protocol=protocol_name, types=types
        ).start()
        impl = EchoImpl()
        reference = orb.register(impl, type_id=TYPE_ID).stringify()
        server = AioOrbServer(orb)
        host, port = server.start()
        client = Orb(transport="tcp", protocol=protocol_name, types=types)
        try:
            stub = client.resolve(_rewrite_bootstrap(reference, host, port))
            assert stub.echo("via-loop") == "ack:via-loop"
            stub.note("one")
            assert stub.echo("two") == "ack:two"
            assert impl.noted == ["one"]
        finally:
            client.stop()
            server.stop()
            orb.stop()

    def test_malformed_frame_gets_error_reply(self, protocol_name):
        if protocol_name == "giop":
            pytest.skip("binary framing: garbage is tested at machine level")
        types = registry()
        orb = Orb(
            transport="inproc", protocol=protocol_name, types=types
        ).start()
        server = AioOrbServer(orb)
        host, port = server.start()
        try:
            channel = get_transport("tcp").connect(host, port)
            # The telnet-forgiveness path: a garbled line is answered
            # with an ERR reply and the connection stays usable.
            channel.send(b"BOGUS nonsense\n")
            line = bytes(channel.recv_line())
            assert line.startswith(b"RET")
            assert b"ERR" in line
            channel.close()
        finally:
            server.stop()
            orb.stop()


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestAioClientConnection:
    def test_invoke_against_blocking_server(self, protocol_name):
        server, client, stub, impl = make_pair(
            protocol=protocol_name, transport="tcp"
        )
        reference = stub._hd_ref
        protocol = get_protocol(protocol_name)

        async def drive():
            connection = await AioClientConnection.open(
                protocol, reference.host, reference.port
            )
            call = Call(
                reference.stringify(), "echo",
                marshaller=protocol.new_marshaller(),
            )
            call.put_string("async-hi")
            call.put_long(0)
            reply = await connection.invoke(call)
            value = reply.get_string()
            oneway = Call(
                reference.stringify(), "note",
                marshaller=protocol.new_marshaller(), oneway=True,
            )
            oneway.put_string("async-note")
            assert await connection.invoke(oneway) is None
            # A follow-up two-way proves the oneway did not desync.
            follow = Call(
                reference.stringify(), "echo",
                marshaller=protocol.new_marshaller(),
            )
            follow.put_string("after-oneway")
            follow.put_long(0)
            after = (await connection.invoke(follow)).get_string()
            await connection.close()
            return value, after

        try:
            value, after = run_async(drive())
            assert value == "ack:async-hi"
            assert after == "ack:after-oneway"
            assert impl.noted == ["async-note"]
        finally:
            stop_pair(server, client)

    def test_concurrent_awaiters(self, protocol_name):
        if protocol_name == "text":
            pytest.skip("the classic text protocol correlates serially")
        server, client, stub, impl = make_pair(
            protocol=protocol_name, transport="tcp"
        )
        reference = stub._hd_ref
        protocol = get_protocol(protocol_name)

        async def drive():
            connection = await AioClientConnection.open(
                protocol, reference.host, reference.port
            )

            async def one(i):
                call = Call(
                    reference.stringify(), "echo",
                    marshaller=protocol.new_marshaller(),
                )
                call.put_string(f"cc{i}")
                call.put_long(0)
                return (await connection.invoke(call)).get_string()

            values = await asyncio.gather(*(one(i) for i in range(6)))
            await connection.close()
            return values

        try:
            values = run_async(drive())
            assert sorted(values) == sorted(f"ack:cc{i}" for i in range(6))
        finally:
            stop_pair(server, client)


class TestCoroutineEndToEnd:
    """Coroutine client against the coroutine server: no threads in the
    data path at all (dispatch still hops to the executor)."""

    @pytest.mark.parametrize("protocol_name", PROTOCOLS)
    def test_full_async_path(self, protocol_name):
        types = registry()
        orb = Orb(
            transport="inproc", protocol=protocol_name, types=types
        ).start()
        impl = EchoImpl()
        reference = orb.register(impl, type_id=TYPE_ID)
        server = AioOrbServer(orb)
        host, port = server.start()
        protocol = get_protocol(protocol_name)

        async def drive():
            connection = await AioClientConnection.open(protocol, host, port)
            call = Call(
                reference.stringify(), "echo",
                marshaller=protocol.new_marshaller(),
            )
            call.put_string("all-async")
            call.put_long(0)
            reply = await connection.invoke(call)
            value = reply.get_string()
            await connection.close()
            return value

        try:
            assert run_async(drive()) == "ack:all-async"
        finally:
            server.stop()
            orb.stop()

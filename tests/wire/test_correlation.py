"""Shared request-id correlation (wire/correlation.py)."""

import threading

from repro.heidirmi.call import Reply, STATUS_ERROR, STATUS_OK
from repro.heidirmi.textwire import TextMarshaller
from repro.wire.correlation import (
    RESERVED_CHANNEL_ERROR_ID,
    CorrelationTable,
    RequestIdAllocator,
    is_channel_level_error,
)


def _reply(status, request_id):
    return Reply(status=status, marshaller=TextMarshaller(),
                 request_id=request_id)


class TestAllocator:
    def test_starts_above_reserved_id(self):
        ids = RequestIdAllocator()
        first = ids.next()
        assert first == RESERVED_CHANNEL_ERROR_ID + 1
        assert [ids.next() for _ in range(3)] == [2, 3, 4]

    def test_iterator_protocol(self):
        ids = RequestIdAllocator()
        assert next(ids) == 1

    def test_thread_safety(self):
        ids = RequestIdAllocator()
        seen = []
        lock = threading.Lock()

        def grab():
            mine = [ids.next() for _ in range(500)]
            with lock:
                seen.extend(mine)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 4000


class TestChannelLevelError:
    def test_reserved_error_reply(self):
        assert is_channel_level_error(
            _reply(STATUS_ERROR, RESERVED_CHANNEL_ERROR_ID)
        )

    def test_correlated_error_is_not(self):
        assert not is_channel_level_error(_reply(STATUS_ERROR, 3))

    def test_ok_with_reserved_id_is_not(self):
        assert not is_channel_level_error(_reply(STATUS_OK, 0))


class TestTable:
    def test_register_reports_depth(self):
        table = CorrelationTable()
        assert table.register(1, "a") == 1
        assert table.register(2, "b") == 2
        assert table.depth == len(table) == 2

    def test_take_preserves_request_order(self):
        table = CorrelationTable()
        table.register(1, "a")
        table.register(2, "b")
        waiters, depth = table.take([2, 1, 99])
        assert waiters == ["b", "a", None]
        assert depth == 0

    def test_discard(self):
        table = CorrelationTable()
        table.register(5, "w")
        assert table.discard(5) == ("w", 0)
        assert table.discard(5) == (None, 0)

    def test_drain_swaps_in_fresh_dict(self):
        table = CorrelationTable()
        table.register(1, "a")
        old_entries = table.entries
        drained = table.drain()
        assert drained == {1: "a"}
        assert table.entries == {}
        assert table.entries is not old_entries

"""The shared ctx=/dl= header-token grammar (wire/headers.py).

One module owns this grammar now; these tests pin its behaviour for
both carriers — text-line tokens and GIOP ServiceContext bodies.
"""

import pytest

from repro.heidirmi.errors import ProtocolError
from repro.resilience import Deadline
from repro.wire import headers


class TestDeadlineTokens:
    def test_roundtrip_reanchors_on_receiver_clock(self):
        deadline = headers.parse_deadline_token("dl=1500")
        assert 0.0 < deadline.remaining() <= 1.5

    def test_zero_budget_is_already_expired(self):
        assert headers.parse_deadline_token("dl=0").expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ProtocolError, match="negative deadline -5ms"):
            headers.parse_deadline_token("dl=-5")

    def test_malformed_token_rejected(self):
        with pytest.raises(ProtocolError, match="bad deadline token"):
            headers.parse_deadline_token("dl=soon")

    def test_context_body_roundtrip(self):
        deadline = headers.parse_deadline_context(b"2000")
        assert 0.0 < deadline.remaining() <= 2.0

    def test_malformed_context_body_rejected(self):
        with pytest.raises(ProtocolError, match="bad deadline service context"):
            headers.parse_deadline_context(b"\xff\xfe")


class TestScan:
    def test_tokens_in_either_order(self):
        for tokens in (["ctx=a-b", "dl=100", "@t"], ["dl=100", "ctx=a-b", "@t"]):
            trace, deadline, head = headers.scan_header_tokens(tokens, 0)
            assert trace == "a-b"
            assert deadline is not None
            assert tokens[head] == "@t"

    def test_absent_tokens(self):
        trace, deadline, head = headers.scan_header_tokens(["@t", "op"], 0)
        assert trace is None and deadline is None and head == 0

    def test_scan_stops_at_target(self):
        # A ctx= after the target is payload, not a header token.
        trace, deadline, head = headers.scan_header_tokens(
            ["@t", "ctx=late"], 0
        )
        assert trace is None and head == 0


class TestEmission:
    class _Call:
        trace_context = None
        deadline = None

    def test_empty_when_unset(self):
        assert headers.header_tokens(self._Call()) == []

    def test_both_tokens(self):
        call = self._Call()
        call.trace_context = "a1-b2"
        call.deadline = Deadline.after(1.0)
        pieces = headers.header_tokens(call)
        assert pieces[0] == "ctx=a1-b2"
        assert pieces[1].startswith("dl=")
        assert 0 < int(pieces[1][3:]) <= 1001

    def test_giop_context_bodies(self):
        assert headers.trace_context_data("a1-b2") == b"a1-b2"
        data = headers.deadline_context_data(Deadline.after(1.0))
        assert 0 < int(data) <= 1001


class TestOverloadTokens:
    def test_message_round_trip(self):
        message = headers.overload_message(0.25, "server overloaded")
        assert message == "ra=250 server overloaded"
        assert headers.parse_overload_message(message) == (
            0.25, "server overloaded"
        )

    def test_sub_millisecond_hint_floors_to_one_ms(self):
        after, text = headers.parse_overload_message(
            headers.overload_message(0.0001, "x")
        )
        assert after == 0.001
        assert text == "x"

    def test_hintless_and_mangled_messages_degrade_to_prose(self):
        assert headers.parse_overload_message("plain") == (None, "plain")
        assert headers.parse_overload_message("ra=abc x") == (None, "ra=abc x")
        assert headers.parse_overload_message("ra=-5 x") == (None, "ra=-5 x")
        assert headers.overload_message(None, "x") == "x"

    def test_giop_service_context_round_trip(self):
        data = headers.retry_after_context_data(0.25)
        assert data == b"250"
        assert headers.parse_retry_after_context(data) == 0.25
        assert headers.parse_retry_after_context(b"junk") is None
        assert headers.parse_retry_after_context(b"-3") is None

"""Protocol conformance, byte by byte — no sockets anywhere.

Every machine is exercised as a pure function of its input bytes:
whole frames, one byte at a time, split at every offset, pipelined
bursts, and garbage.  The same assertions hold for all three
protocols, which is the point of the shared event vocabulary.
"""

import pytest

from repro.giop.messages import (
    GIOP_HEADER_SIZE,
    MSG_CANCEL_REQUEST,
    MSG_REPLY,
    MSG_REQUEST,
    MessageHeader,
    frame_message,
)
from repro.heidirmi.call import STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK
from repro.wire import NEED_DATA, is_channel_level_error, machine_for
from repro.wire.events import (
    CancelReceived,
    CloseReceived,
    LocateReplied,
    LocateRequested,
    ReplyReceived,
    RequestReceived,
    WireViolation,
)
from repro.wire.giop import MAX_MESSAGE_SIZE
from repro.wire.text import MAX_LINE

from tests.wire.rig import (
    PROTOCOLS,
    TARGET,
    FixedDeadline,
    make_call,
    make_reply,
    needs_id,
    one_event,
)


def emitted_request(protocol_name, **kwargs):
    call = make_call(protocol_name, **kwargs)
    return machine_for(protocol_name, "client").emit_request(call)


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestRequestRoundtrip:
    def test_two_way(self, protocol_name):
        data = emitted_request(protocol_name)
        event = one_event(machine_for(protocol_name, "server"), data)
        assert type(event) is RequestReceived
        call = event.call
        assert call.target == TARGET
        assert call.operation == "ping"
        assert not call.oneway
        assert call.get_string() == "hello world"
        assert call.get_long() == 42
        if needs_id(protocol_name, oneway=False):
            assert call.request_id == 7

    def test_oneway(self, protocol_name):
        data = emitted_request(protocol_name, oneway=True)
        event = one_event(machine_for(protocol_name, "server"), data)
        assert type(event) is RequestReceived
        assert event.call.oneway

    def test_trace_and_deadline(self, protocol_name):
        data = emitted_request(
            protocol_name,
            trace="00f1e2d3c4b5a697-1122334455667788",
            deadline=FixedDeadline(ms=1500),
        )
        event = one_event(machine_for(protocol_name, "server"), data)
        call = event.call
        assert call.trace_context == "00f1e2d3c4b5a697-1122334455667788"
        assert call.deadline is not None
        # The receiver re-anchors the relative ms budget on its own
        # clock; it can only have shrunk in transit.
        assert 0.0 < call.deadline.remaining() <= 1.5
        # The machine still yields the payload after the header tokens.
        assert call.get_string() == "hello world"

    def test_byte_at_a_time(self, protocol_name):
        data = emitted_request(protocol_name)
        machine = machine_for(protocol_name, "server")
        for byte in data[:-1]:
            assert machine.feed_bytes(bytes([byte])) == []
            assert machine.next_event() is NEED_DATA
        event = one_event(machine, data[-1:])
        assert type(event) is RequestReceived
        assert event.call.get_string() == "hello world"

    def test_every_split_offset(self, protocol_name):
        data = emitted_request(protocol_name)
        for split in range(1, len(data)):
            machine = machine_for(protocol_name, "server")
            events = machine.feed_bytes(data[:split])
            events += machine.feed_bytes(data[split:])
            assert len(events) == 1, (split, events)
            assert type(events[0]) is RequestReceived, split
            assert events[0].call.operation == "ping", split

    def test_pipelined_burst(self, protocol_name):
        burst = b""
        for i in range(5):
            request_id = i + 1 if needs_id(protocol_name, False) else None
            burst += emitted_request(
                protocol_name, operation=f"op{i}", request_id=request_id
            )
        events = machine_for(protocol_name, "server").feed_bytes(burst)
        assert [type(e) for e in events] == [RequestReceived] * 5
        assert [e.call.operation for e in events] == [
            f"op{i}" for i in range(5)
        ]

    def test_buffer_accounting(self, protocol_name):
        data = emitted_request(protocol_name)
        machine = machine_for(protocol_name, "server")
        assert not machine.has_buffered
        machine.receive_data(data[: len(data) // 2])
        assert machine.next_event() is NEED_DATA
        assert machine.has_buffered
        machine.receive_data(data[len(data) // 2:])
        assert type(machine.next_event()) is RequestReceived
        assert not machine.has_buffered  # whole frame consumed


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
class TestReplyRoundtrip:
    def emit(self, protocol_name, **kwargs):
        reply = make_reply(protocol_name, **kwargs)
        return machine_for(protocol_name, "server").emit_reply(reply)

    def test_ok(self, protocol_name):
        data = self.emit(protocol_name, text="fine")
        event = one_event(machine_for(protocol_name, "client"), data)
        assert type(event) is ReplyReceived
        reply = event.reply
        assert reply.status == STATUS_OK
        assert reply.get_string() == "fine"
        if protocol_name != "text":
            assert reply.request_id == 7

    def test_exception(self, protocol_name):
        data = self.emit(
            protocol_name,
            status=STATUS_EXCEPTION,
            repo_id="IDL:Test/Boom:1.0",
            text="member",
        )
        reply = one_event(machine_for(protocol_name, "client"), data).reply
        assert reply.status == STATUS_EXCEPTION
        assert reply.repo_id == "IDL:Test/Boom:1.0"
        assert reply.get_string() == "member"

    def test_error(self, protocol_name):
        data = self.emit(
            protocol_name, status=STATUS_ERROR, repo_id="Category",
            text="what broke",
        )
        reply = one_event(machine_for(protocol_name, "client"), data).reply
        assert reply.status == STATUS_ERROR
        assert reply.repo_id == "Category"
        assert reply.get_string() == "what broke"

    def test_reply_split_at_every_offset(self, protocol_name):
        data = self.emit(protocol_name)
        for split in range(1, len(data)):
            machine = machine_for(protocol_name, "client")
            events = machine.feed_bytes(data[:split])
            events += machine.feed_bytes(data[split:])
            assert [type(e) for e in events] == [ReplyReceived], split


@pytest.mark.parametrize("protocol_name", ("text2", "giop"))
class TestReservedId:
    def test_channel_level_error_reply(self, protocol_name):
        data = machine_for(protocol_name, "server").emit_reply(make_reply(
            protocol_name, status=STATUS_ERROR, request_id=0,
            repo_id="Protocol", text="unparseable request",
        ))
        reply = one_event(machine_for(protocol_name, "client"), data).reply
        assert is_channel_level_error(reply)

    def test_real_error_is_not_channel_level(self, protocol_name):
        data = machine_for(protocol_name, "server").emit_reply(make_reply(
            protocol_name, status=STATUS_ERROR, request_id=3,
            repo_id="Whatever", text="scoped to call 3",
        ))
        reply = one_event(machine_for(protocol_name, "client"), data).reply
        assert not is_channel_level_error(reply)


class TestTextGarbage:
    @pytest.mark.parametrize("protocol_name", ("text", "text2"))
    def test_garbage_line_then_recovery(self, protocol_name):
        machine = machine_for(protocol_name, "server")
        event = one_event(machine, b"\x7fchaos!garbage!frame\n")
        assert type(event) is WireViolation
        assert event.recoverable
        # The newline resynchronised the stream: next frame parses.
        event = one_event(machine, emitted_request(protocol_name))
        assert type(event) is RequestReceived

    @pytest.mark.parametrize("protocol_name", ("text", "text2"))
    def test_unterminated_overlong_line_is_fatal(self, protocol_name):
        machine = machine_for(protocol_name, "server")
        event = one_event(machine, b"A" * (MAX_LINE + 2))
        assert type(event) is WireViolation
        assert not event.recoverable

    def test_reply_line_to_server_is_recoverable_violation(self):
        machine = machine_for("text", "server")
        event = one_event(machine, b"RET OK done\n")
        assert type(event) is WireViolation
        assert event.recoverable


class TestGiopGarbage:
    def test_bad_magic_then_recovery(self):
        machine = machine_for("giop", "server")
        event = one_event(machine, b"\xff" * GIOP_HEADER_SIZE)
        assert type(event) is WireViolation
        assert event.recoverable
        assert "magic" in event.message
        event = one_event(machine, emitted_request("giop"))
        assert type(event) is RequestReceived

    def test_implausible_size_is_violation(self):
        header = MessageHeader(
            message_type=MSG_REQUEST, message_size=MAX_MESSAGE_SIZE + 1
        ).encode()
        machine = machine_for("giop", "server")
        event = one_event(machine, header)
        assert type(event) is WireViolation
        assert "implausible GIOP message size" in event.message

    def test_truncated_body_then_completion(self):
        data = emitted_request("giop")
        machine = machine_for("giop", "server")
        assert machine.feed_bytes(data[:GIOP_HEADER_SIZE + 3]) == []
        # The machine asks for exactly the missing remainder.
        hint = machine.read_hint()
        assert hint == ("exact", len(data) - GIOP_HEADER_SIZE - 3)
        event = one_event(machine, data[GIOP_HEADER_SIZE + 3:])
        assert type(event) is RequestReceived


class TestGiopRoleRules:
    def test_request_to_client_machine(self):
        event = one_event(
            machine_for("giop", "client"), emitted_request("giop")
        )
        assert type(event) is WireViolation
        assert event.message == (
            f"expected GIOP Reply, got message type {MSG_REQUEST}"
        )

    def test_reply_to_server_machine(self):
        data = machine_for("giop", "server").emit_reply(make_reply("giop"))
        event = one_event(machine_for("giop", "server"), data)
        assert type(event) is WireViolation
        assert event.message == (
            f"expected GIOP Request, got message type {MSG_REPLY}"
        )

    @pytest.mark.parametrize("role", ("client", "server"))
    def test_message_error_is_violation_for_both(self, role):
        event = one_event(machine_for("giop", role), frame_message(6, b""))
        assert type(event) is WireViolation

    @pytest.mark.parametrize("role", ("client", "server"))
    def test_close_for_both_roles(self, role):
        machine = machine_for("giop", role)
        event = one_event(machine, machine.emit_close())
        assert type(event) is CloseReceived

    def test_cancel(self):
        cancel = frame_message(MSG_CANCEL_REQUEST, b"")
        assert type(
            one_event(machine_for("giop", "server"), cancel)
        ) is CancelReceived
        assert type(
            one_event(machine_for("giop", "client"), cancel)
        ) is WireViolation

    def test_locate_roundtrip(self):
        client = machine_for("giop", "client")
        server = machine_for("giop", "server")
        event = one_event(
            server, client.emit_locate_request(9, b"@some#key#type")
        )
        assert type(event) is LocateRequested
        assert event.request_id == 9
        assert bytes(event.object_key) == b"@some#key#type"
        event = one_event(client, server.emit_locate_reply(9, 1))
        assert type(event) is LocateReplied
        assert event.request_id == 9
        assert event.status == 1


class TestGiopSerialCheck:
    def test_serial_client_rejects_wrong_reply_id(self):
        machine = machine_for("giop", "client", multiplexed=False)
        machine.emit_request(make_call("giop", request_id=5))
        data = machine_for("giop", "server").emit_reply(
            make_reply("giop", request_id=6)
        )
        event = one_event(machine, data)
        assert type(event) is WireViolation
        assert event.message == "reply for request 6, expected 5"

    def test_multiplexed_client_accepts_any_id(self):
        machine = machine_for("giop", "client")  # multiplexed by default
        machine.emit_request(make_call("giop", request_id=5))
        data = machine_for("giop", "server").emit_reply(
            make_reply("giop", request_id=6)
        )
        event = one_event(machine, data)
        assert type(event) is ReplyReceived
        assert event.reply.request_id == 6

"""Tests for CDR encoding: alignment, byte orders, round-trip properties."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.heidirmi.errors import MarshalError


def roundtrip(write, read, little_endian=True, start_align=0):
    encoder = CdrEncoder(little_endian=little_endian, start_align=start_align)
    write(encoder)
    decoder = CdrDecoder(encoder.data(), little_endian=little_endian,
                         start_align=start_align)
    return read(decoder)


class TestAlignment:
    def test_long_after_octet_is_padded(self):
        encoder = CdrEncoder()
        encoder.octet(1)
        encoder.ulong(2)
        data = encoder.data()
        assert len(data) == 8  # 1 + 3 padding + 4
        assert data[1:4] == b"\x00\x00\x00"

    def test_double_aligned_to_eight(self):
        encoder = CdrEncoder()
        encoder.octet(1)
        encoder.double(1.0)
        assert len(encoder.data()) == 16

    def test_no_padding_when_aligned(self):
        encoder = CdrEncoder()
        encoder.ulong(1)
        encoder.ulong(2)
        assert len(encoder.data()) == 8

    def test_start_align_offsets_alignment(self):
        """A body encoder starting 12 bytes into a GIOP message pads as
        if those 12 bytes were present."""
        encoder = CdrEncoder(start_align=12)
        encoder.double(1.5)  # position 12 → needs 4 bytes padding to 16
        data = encoder.data()
        assert len(data) == 12
        assert data[:4] == b"\x00\x00\x00\x00"
        decoder = CdrDecoder(data, start_align=12)
        assert decoder.double() == 1.5

    def test_short_alignment(self):
        encoder = CdrEncoder()
        encoder.octet(0xAA)
        encoder.short(-2)
        data = encoder.data()
        assert len(data) == 4
        assert data[1] == 0


class TestByteOrder:
    def test_little_endian_layout(self):
        encoder = CdrEncoder(little_endian=True)
        encoder.ulong(1)
        assert encoder.data() == b"\x01\x00\x00\x00"

    def test_big_endian_layout(self):
        encoder = CdrEncoder(little_endian=False)
        encoder.ulong(1)
        assert encoder.data() == b"\x00\x00\x00\x01"

    @pytest.mark.parametrize("little_endian", [True, False])
    def test_roundtrip_both_orders(self, little_endian):
        values = roundtrip(
            lambda e: (e.long(-5), e.double(2.5), e.ushort(7)),
            lambda d: (d.long(), d.double(), d.ushort()),
            little_endian=little_endian,
        )
        assert values == (-5, 2.5, 7)

    def test_cross_order_decode(self):
        """The receiver uses the *sender's* byte order flag."""
        encoder = CdrEncoder(little_endian=False)
        encoder.ulong(0x01020304)
        decoder = CdrDecoder(encoder.data(), little_endian=False)
        assert decoder.ulong() == 0x01020304


class TestStrings:
    def test_corba_string_layout(self):
        encoder = CdrEncoder()
        encoder.string("ab")
        # ulong(3) + "ab" + NUL
        assert encoder.data() == struct.pack("<I", 3) + b"ab\x00"

    def test_empty_string(self):
        assert roundtrip(lambda e: e.string(""), lambda d: d.string()) == ""

    def test_utf8_string(self):
        text = "héllo wörld"
        assert roundtrip(lambda e: e.string(text), lambda d: d.string()) == text

    def test_missing_nul_rejected(self):
        data = struct.pack("<I", 2) + b"ab"  # claims len 2 but no NUL
        with pytest.raises(MarshalError):
            CdrDecoder(data).string()

    def test_zero_length_rejected(self):
        with pytest.raises(MarshalError):
            CdrDecoder(struct.pack("<I", 0)).string()


class TestOctetSequences:
    def test_octets_roundtrip(self):
        payload = bytes(range(10))
        assert roundtrip(lambda e: e.octets(payload),
                         lambda d: d.octets()) == payload

    def test_empty_octets(self):
        assert roundtrip(lambda e: e.octets(b""), lambda d: d.octets()) == b""


class TestEncapsulations:
    def test_encapsulation_roundtrip(self):
        encoder = CdrEncoder.new_encapsulation(little_endian=True)
        encoder.string("inner")
        encoder.ulong(9)
        blob = encoder.encapsulation()
        assert blob[0] == 1  # little-endian flag octet
        decoder = CdrDecoder.from_encapsulation(blob)
        assert decoder.string() == "inner"
        assert decoder.ulong() == 9

    def test_big_endian_encapsulation(self):
        encoder = CdrEncoder.new_encapsulation(little_endian=False)
        encoder.ushort(0x0102)
        decoder = CdrDecoder.from_encapsulation(encoder.encapsulation())
        assert decoder.ushort() == 0x0102

    def test_empty_encapsulation_rejected(self):
        with pytest.raises(MarshalError):
            CdrDecoder.from_encapsulation(b"")


class TestErrors:
    def test_exhausted_buffer(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x01").ulong()

    def test_char_must_be_single(self):
        with pytest.raises(MarshalError):
            CdrEncoder().char("ab")

    def test_out_of_range_pack(self):
        with pytest.raises(MarshalError):
            CdrEncoder().octet(300)


_PRIMS = [
    ("octet", st.integers(0, 255)),
    ("boolean", st.booleans()),
    ("short", st.integers(-(2**15), 2**15 - 1)),
    ("ushort", st.integers(0, 2**16 - 1)),
    ("long", st.integers(-(2**31), 2**31 - 1)),
    ("ulong", st.integers(0, 2**32 - 1)),
    ("longlong", st.integers(-(2**63), 2**63 - 1)),
    ("ulonglong", st.integers(0, 2**64 - 1)),
    ("double", st.floats(allow_nan=False, allow_infinity=False)),
    ("string", st.text(max_size=30)),
]


@given(
    items=st.lists(
        st.sampled_from(range(len(_PRIMS))).flatmap(
            lambda i: _PRIMS[i][1].map(lambda v: (_PRIMS[i][0], v))
        ),
        max_size=15,
    ),
    little_endian=st.booleans(),
    start_align=st.integers(0, 16),
)
@settings(max_examples=120, deadline=None)
def test_mixed_sequence_roundtrip(items, little_endian, start_align):
    encoder = CdrEncoder(little_endian=little_endian, start_align=start_align)
    for method, value in items:
        getattr(encoder, method)(value)
    decoder = CdrDecoder(encoder.data(), little_endian=little_endian,
                         start_align=start_align)
    for method, value in items:
        assert getattr(decoder, method)() == value
    assert decoder.at_end() or decoder.remaining() == 0

"""Tests for GIOP as a pluggable HeidiRMI protocol."""

import threading

import pytest

from repro.giop.iiop import CdrMarshaller, CdrUnmarshaller, GiopProtocol
from repro.giop.cdr import CdrDecoder
from repro.heidirmi.call import Call, Reply, STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK
from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.heidirmi.transport import get_transport

REF = "@tcp:h:1234#9#IDL:X:1.0"


@pytest.fixture
def channels():
    transport = get_transport("inproc")
    listener = transport.listen("giop-test", 0)
    holder = {}
    thread = threading.Thread(target=lambda: holder.update(s=listener.accept()))
    thread.start()
    client = transport.connect(*listener.address)
    thread.join()
    yield client, holder["s"]
    client.close()
    holder["s"].close()
    listener.close()


class TestCdrCallSurface:
    def test_enum_travels_as_index(self):
        marshaller = CdrMarshaller()
        marshaller.put_enum("Stop", 1)
        decoder = CdrDecoder(marshaller.payload())
        assert decoder.ulong() == 1

    def test_enum_range_checked_on_get(self):
        marshaller = CdrMarshaller()
        marshaller.put_enum("X", 5)
        unmarshaller = CdrUnmarshaller(CdrDecoder(marshaller.payload()))
        with pytest.raises(MarshalError):
            unmarshaller.get_enum(("A", "B"))

    def test_objref_nil_is_empty_string(self):
        marshaller = CdrMarshaller()
        marshaller.put_objref(None)
        unmarshaller = CdrUnmarshaller(CdrDecoder(marshaller.payload()))
        assert unmarshaller.get_objref() is None

    def test_begin_end_are_noops(self):
        marshaller = CdrMarshaller()
        marshaller.begin("s")
        marshaller.put_long(1)
        marshaller.end()
        assert len(marshaller.payload()) == 4


class TestRequestReply:
    def test_request_roundtrip(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "mix", marshaller=protocol.new_marshaller())
        call.put_octet(1)
        call.put_double(2.5)  # exercises alignment after variable header
        call.put_string("s")
        protocol.send_request(client, call)
        received = protocol.recv_request(server)
        assert received.target == REF
        assert received.operation == "mix"
        assert received.get_octet() == 1
        assert received.get_double() == 2.5
        assert received.get_string() == "s"

    def test_reply_roundtrip(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        # Prime the request ids by sending a request first.
        call = Call(REF, "op", marshaller=protocol.new_marshaller())
        protocol.send_request(client, call)
        protocol.recv_request(server)
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
        reply.put_long(-12)
        protocol.send_reply(server, reply)
        received = protocol.recv_reply(client)
        assert received.is_ok
        assert received.get_long() == -12

    def test_exception_reply_carries_repo_id(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "op", marshaller=protocol.new_marshaller())
        protocol.send_request(client, call)
        protocol.recv_request(server)
        reply = Reply(status=STATUS_EXCEPTION, repo_id="IDL:Bad:1.0",
                      marshaller=protocol.new_marshaller())
        reply.put_string("detail")
        protocol.send_reply(server, reply)
        received = protocol.recv_reply(client)
        assert received.is_exception
        assert received.repo_id == "IDL:Bad:1.0"
        assert received.get_string() == "detail"

    def test_error_reply_maps_to_system_exception(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "op", marshaller=protocol.new_marshaller())
        protocol.send_request(client, call)
        protocol.recv_request(server)
        reply = Reply(status=STATUS_ERROR, repo_id="MethodNotFound",
                      marshaller=protocol.new_marshaller())
        reply.put_string("no method")
        protocol.send_reply(server, reply)
        received = protocol.recv_reply(client)
        assert received.is_error
        assert received.repo_id == "MethodNotFound"

    def test_request_id_echoed_in_reply(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        for _ in range(3):
            call = Call(REF, "op", marshaller=protocol.new_marshaller())
            protocol.send_request(client, call)
            protocol.recv_request(server)
            reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
            protocol.send_reply(server, reply)
            protocol.recv_reply(client)  # raises on id mismatch

    def test_mismatched_reply_id_rejected(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "op", marshaller=protocol.new_marshaller())
        protocol.send_request(client, call)
        protocol.recv_request(server)
        # Forge a reply with the wrong id.
        server._giop_pending_reply_id = 999
        reply = Reply(status=STATUS_OK, marshaller=protocol.new_marshaller())
        protocol.send_reply(server, reply)
        with pytest.raises(ProtocolError, match="expected"):
            protocol.recv_reply(client)

    def test_oneway_sets_response_not_expected(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "fire", marshaller=protocol.new_marshaller(),
                    oneway=True)
        protocol.send_request(client, call)
        received = protocol.recv_request(server)
        assert received.oneway

    def test_wrong_message_type_rejected(self, channels):
        client, server = channels
        protocol = GiopProtocol()
        call = Call(REF, "op", marshaller=protocol.new_marshaller())
        protocol.send_request(client, call)  # a Request arrives...
        with pytest.raises(ProtocolError, match="expected GIOP Reply"):
            protocol.recv_reply(server)  # ...where a Reply was expected

"""Tests for GIOP 1.0 message headers and framing."""

import pytest

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.giop.messages import (
    GIOP_HEADER_SIZE,
    LOCATE_OBJECT_HERE,
    MSG_CLOSE_CONNECTION,
    MSG_REPLY,
    MSG_REQUEST,
    REPLY_NO_EXCEPTION,
    LocateReplyHeader,
    LocateRequestHeader,
    MessageHeader,
    ReplyHeader,
    RequestHeader,
    ServiceContext,
    frame_message,
)
from repro.heidirmi.errors import ProtocolError


class TestMessageHeader:
    def test_encode_layout(self):
        header = MessageHeader(message_type=MSG_REQUEST, message_size=20)
        data = header.encode()
        assert len(data) == GIOP_HEADER_SIZE
        assert data[:4] == b"GIOP"
        assert data[4:6] == b"\x01\x00"  # version 1.0
        assert data[6] == 1  # little endian
        assert data[7] == MSG_REQUEST

    def test_roundtrip(self):
        header = MessageHeader(message_type=MSG_REPLY, message_size=123,
                               little_endian=False)
        decoded = MessageHeader.decode(header.encode())
        assert decoded == header

    def test_bad_magic_rejected(self):
        data = b"JUNK" + bytes(8)
        with pytest.raises(ProtocolError, match="magic"):
            MessageHeader.decode(data)

    def test_bad_version_rejected(self):
        data = b"GIOP\x02\x00\x01\x00" + bytes(4)
        with pytest.raises(ProtocolError, match="version"):
            MessageHeader.decode(data)

    def test_unknown_message_type_rejected(self):
        data = b"GIOP\x01\x00\x01\x09" + bytes(4)
        with pytest.raises(ProtocolError, match="message type"):
            MessageHeader.decode(data)

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="short"):
            MessageHeader.decode(b"GIOP")


class TestRequestHeader:
    def test_roundtrip(self):
        header = RequestHeader(
            request_id=7,
            object_key=b"#9876#",
            operation="f",
            response_expected=True,
            service_context=[ServiceContext(context_id=1, context_data=b"x")],
            requesting_principal=b"user",
        )
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        header.encode(encoder)
        decoder = CdrDecoder(encoder.data(), start_align=GIOP_HEADER_SIZE)
        decoded = RequestHeader.decode(decoder)
        assert decoded == header

    def test_oneway_flag(self):
        header = RequestHeader(request_id=1, object_key=b"k", operation="fire",
                               response_expected=False)
        encoder = CdrEncoder()
        header.encode(encoder)
        decoded = RequestHeader.decode(CdrDecoder(encoder.data()))
        assert decoded.response_expected is False

    def test_implausible_context_count_rejected(self):
        encoder = CdrEncoder()
        encoder.ulong(10_000_000)
        with pytest.raises(ProtocolError):
            RequestHeader.decode(CdrDecoder(encoder.data()))


class TestReplyHeader:
    def test_roundtrip(self):
        header = ReplyHeader(request_id=3, reply_status=REPLY_NO_EXCEPTION)
        encoder = CdrEncoder()
        header.encode(encoder)
        assert ReplyHeader.decode(CdrDecoder(encoder.data())) == header

    def test_unknown_status_rejected(self):
        encoder = CdrEncoder()
        encoder.ulong(0)   # empty service context
        encoder.ulong(1)   # request id
        encoder.ulong(9)   # bogus status
        with pytest.raises(ProtocolError):
            ReplyHeader.decode(CdrDecoder(encoder.data()))


class TestLocateMessages:
    def test_locate_request_roundtrip(self):
        header = LocateRequestHeader(request_id=5, object_key=b"oid")
        encoder = CdrEncoder()
        header.encode(encoder)
        assert LocateRequestHeader.decode(CdrDecoder(encoder.data())) == header

    def test_locate_reply_roundtrip(self):
        header = LocateReplyHeader(request_id=5,
                                   locate_status=LOCATE_OBJECT_HERE)
        encoder = CdrEncoder()
        header.encode(encoder)
        assert LocateReplyHeader.decode(CdrDecoder(encoder.data())) == header


class TestFraming:
    def test_frame_message(self):
        framed = frame_message(MSG_CLOSE_CONNECTION, b"")
        assert len(framed) == GIOP_HEADER_SIZE
        header = MessageHeader.decode(framed)
        assert header.message_type == MSG_CLOSE_CONNECTION
        assert header.message_size == 0

    def test_frame_with_body(self):
        framed = frame_message(MSG_REQUEST, b"BODYBYTES")
        header = MessageHeader.decode(framed[:GIOP_HEADER_SIZE])
        assert header.message_size == 9
        assert framed[GIOP_HEADER_SIZE:] == b"BODYBYTES"

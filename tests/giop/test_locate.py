"""Tests for GIOP locate machinery and connection-control messages."""

import threading

import pytest

from repro.giop.iiop import GiopProtocol
from repro.giop.messages import (
    LOCATE_OBJECT_HERE,
    LOCATE_UNKNOWN_OBJECT,
    MSG_MESSAGE_ERROR,
    frame_message,
)
from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.call import Call
from repro.heidirmi.errors import CommunicationError, ProtocolError
from repro.heidirmi.serialize import TypeRegistry
from repro.heidirmi.transport import get_transport

TYPE_ID = "IDL:Locate/Thing:1.0"


class Thing_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def poke(self):
        return self._invoke(self._new_call("poke")).get_long()


class Thing_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("poke", "_op_poke"),)

    def _op_poke(self, call, reply):
        reply.put_long(7)


@pytest.fixture
def live_giop():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Thing_stub,
                             skeleton_class=Thing_skel)
    server = Orb(transport="tcp", protocol="giop", types=types).start()
    ref = server.register(object(), type_id=TYPE_ID)
    yield server, ref
    server.stop()


def direct_channel(server):
    return get_transport("tcp").connect(*server.address)


class TestLocateRequest:
    def test_object_here(self, live_giop):
        server, ref = live_giop
        channel = direct_channel(server)
        try:
            protocol = GiopProtocol()
            status = protocol.locate(channel, ref.stringify().encode())
            assert status == LOCATE_OBJECT_HERE
        finally:
            channel.close()

    def test_unknown_object(self, live_giop):
        server, ref = live_giop
        bad = ref.stringify().replace(f"#{ref.object_id}#", "#does-not-exist#")
        channel = direct_channel(server)
        try:
            status = GiopProtocol().locate(channel, bad.encode())
            assert status == LOCATE_UNKNOWN_OBJECT
        finally:
            channel.close()

    def test_garbage_key_is_unknown(self, live_giop):
        server, _ = live_giop
        channel = direct_channel(server)
        try:
            status = GiopProtocol().locate(channel, b"\xff\xfenot-a-ref")
            assert status == LOCATE_UNKNOWN_OBJECT
        finally:
            channel.close()

    def test_normal_call_works_after_locate(self, live_giop):
        """Locate is served inline: the same connection then carries a
        normal request."""
        server, ref = live_giop
        channel = direct_channel(server)
        try:
            protocol = GiopProtocol()
            assert protocol.locate(channel, ref.stringify().encode()) \
                == LOCATE_OBJECT_HERE
            call = Call(ref.stringify(), "poke",
                        marshaller=protocol.new_marshaller())
            protocol.send_request(channel, call)
            reply = protocol.recv_reply(channel)
            assert reply.get_long() == 7
        finally:
            channel.close()


class TestConnectionControl:
    def test_close_connection_ends_server_loop(self, live_giop):
        server, ref = live_giop
        channel = direct_channel(server)
        protocol = GiopProtocol()
        protocol.close_connection(channel)
        # The server drops the connection; a subsequent read sees EOF.
        with pytest.raises(CommunicationError):
            channel.recv_exact(1)
        channel.close()

    def test_cancel_request_is_tolerated(self, live_giop):
        from repro.giop.cdr import CdrEncoder
        from repro.giop.messages import GIOP_HEADER_SIZE, MSG_CANCEL_REQUEST

        server, ref = live_giop
        channel = direct_channel(server)
        try:
            encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
            encoder.ulong(1234)  # CancelRequestHeader: just the request id
            channel.send(frame_message(MSG_CANCEL_REQUEST, encoder.data()))
            # The connection is still usable afterwards.
            protocol = GiopProtocol()
            call = Call(ref.stringify(), "poke",
                        marshaller=protocol.new_marshaller())
            protocol.send_request(channel, call)
            assert protocol.recv_reply(channel).get_long() == 7
        finally:
            channel.close()

    def test_client_side_rejects_unexpected_message_type(self, live_giop):
        server, _ = live_giop
        listener = get_transport("inproc").listen("locate-test", 0)

        held = {}

        def fake_server():
            server_channel = listener.accept()
            held["channel"] = server_channel  # keep it open
            from repro.giop.messages import read_message

            read_message(server_channel)  # consume the LocateRequest
            server_channel.send(frame_message(MSG_MESSAGE_ERROR, b""))

        thread = threading.Thread(target=fake_server, daemon=True)
        thread.start()
        channel = get_transport("inproc").connect(*listener.address)
        try:
            with pytest.raises(ProtocolError):
                GiopProtocol().locate(channel, b"key")
        finally:
            channel.close()
            if "channel" in held:
                held["channel"].close()
            listener.close()

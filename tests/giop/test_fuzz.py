"""Fuzz robustness: arbitrary bytes must fail *cleanly*, never crash.

Property-based decoding of random input through every wire-facing
parser: CDR, GIOP headers, IORs, text-protocol tokens, object
references.  The only acceptable outcomes are a successful parse or a
typed protocol/marshal error.
"""

from hypothesis import given, settings, strategies as st

from repro.giop.cdr import CdrDecoder
from repro.giop.ior import IOR
from repro.giop.messages import MessageHeader, ReplyHeader, RequestHeader
from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.textwire import TextUnmarshaller, unescape_token

EXPECTED = (MarshalError, ProtocolError)

random_bytes = st.binary(max_size=128)
random_text = st.text(max_size=64)


@given(random_bytes)
@settings(max_examples=200, deadline=None)
def test_cdr_decoder_never_crashes(data):
    decoder = CdrDecoder(data)
    for method in ("octet", "boolean", "short", "ulong", "longlong",
                   "double", "string", "octets"):
        try:
            getattr(CdrDecoder(data), method)()
        except EXPECTED:
            pass
    try:
        while not decoder.at_end():
            decoder.string()
    except EXPECTED:
        pass


@given(random_bytes)
@settings(max_examples=200, deadline=None)
def test_giop_header_decode_never_crashes(data):
    try:
        MessageHeader.decode(data.ljust(12, b"\x00"))
    except EXPECTED:
        pass


@given(random_bytes)
@settings(max_examples=150, deadline=None)
def test_request_header_decode_never_crashes(data):
    try:
        RequestHeader.decode(CdrDecoder(data))
    except EXPECTED:
        pass


@given(random_bytes)
@settings(max_examples=150, deadline=None)
def test_reply_header_decode_never_crashes(data):
    try:
        ReplyHeader.decode(CdrDecoder(data))
    except EXPECTED:
        pass


@given(random_text)
@settings(max_examples=200, deadline=None)
def test_ior_parse_never_crashes(text):
    try:
        IOR.parse("IOR:" + text)
    except EXPECTED:
        pass


@given(random_bytes)
@settings(max_examples=150, deadline=None)
def test_ior_decode_never_crashes(data):
    try:
        IOR.decode(data)
    except EXPECTED:
        pass


@given(random_text)
@settings(max_examples=200, deadline=None)
def test_object_reference_parse_never_crashes(text):
    try:
        ObjectReference.parse(text)
    except EXPECTED:
        pass


@given(st.text(alphabet=st.characters(codec="ascii",
                                      exclude_characters=" \t\r\n"),
               max_size=40))
@settings(max_examples=200, deadline=None)
def test_unescape_token_never_crashes(token):
    try:
        unescape_token(token)
    except EXPECTED:
        pass


@given(st.lists(st.text(alphabet=st.characters(codec="ascii",
                                               exclude_characters=" \t\r\n"),
                        min_size=1, max_size=12),
                max_size=8))
@settings(max_examples=150, deadline=None)
def test_text_unmarshaller_never_crashes(tokens):
    unmarshaller = TextUnmarshaller(tokens)
    for method in ("get_boolean", "get_long", "get_double", "get_string",
                   "get_objref"):
        try:
            getattr(TextUnmarshaller(list(tokens)), method)()
        except EXPECTED:
            pass
    try:
        while not unmarshaller.at_end():
            unmarshaller.get_string()
    except EXPECTED:
        pass

"""Tests for IORs and IIOP profiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.giop.ior import (
    IIOPProfile,
    IOR,
    TAG_INTERNET_IOP,
    TaggedProfile,
    ior_from_reference,
    reference_from_ior,
)
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.objref import ObjectReference


class TestIIOPProfile:
    def test_roundtrip(self):
        profile = IIOPProfile(host="galaxy.nec.com", port=1234,
                              object_key=b"9876")
        assert IIOPProfile.decode(profile.encode()) == profile

    def test_unsupported_version_rejected(self):
        profile = IIOPProfile(host="h", port=1, object_key=b"k",
                              version=(2, 0))
        with pytest.raises(ProtocolError):
            IIOPProfile.decode(profile.encode())


class TestIOR:
    def make(self):
        profile = IIOPProfile(host="h", port=2809, object_key=b"key")
        return IOR(
            type_id="IDL:Heidi/A:1.0",
            profiles=[TaggedProfile(TAG_INTERNET_IOP, profile.encode())],
        )

    def test_binary_roundtrip(self):
        ior = self.make()
        assert IOR.decode(ior.encode()) == ior

    def test_stringified_form(self):
        text = self.make().stringify()
        assert text.startswith("IOR:")
        assert all(c in "0123456789abcdef" for c in text[4:])

    def test_stringify_parse_roundtrip(self):
        ior = self.make()
        assert IOR.parse(ior.stringify()) == ior

    def test_iiop_profile_extraction(self):
        profile = self.make().iiop_profile()
        assert profile.host == "h"
        assert profile.port == 2809

    def test_no_iiop_profile(self):
        ior = IOR(type_id="IDL:X:1.0",
                  profiles=[TaggedProfile(tag=99, profile_data=b"")])
        assert ior.iiop_profile() is None

    def test_bad_prefix_rejected(self):
        with pytest.raises(ProtocolError):
            IOR.parse("NOT-AN-IOR")

    def test_bad_hex_rejected(self):
        with pytest.raises(ProtocolError):
            IOR.parse("IOR:zzzz")


class TestReferenceConversion:
    def test_reference_to_ior_and_back(self):
        ref = ObjectReference("tcp", "galaxy.nec.com", 1234, "9876",
                              "IDL:Heidi/A:1.0")
        assert reference_from_ior(ior_from_reference(ref)) == ref

    def test_ior_without_iiop_rejected(self):
        ior = IOR(type_id="IDL:X:1.0", profiles=[])
        with pytest.raises(ProtocolError):
            reference_from_ior(ior)

    @given(
        host=st.from_regex(r"[a-z][a-z0-9.\-]{0,20}", fullmatch=True),
        port=st.integers(1, 65535),
        oid=st.from_regex(r"[A-Za-z0-9\-]{1,10}", fullmatch=True),
        path=st.from_regex(r"[A-Za-z][A-Za-z0-9/]{0,12}", fullmatch=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, host, port, oid, path):
        ref = ObjectReference("tcp", host, port, oid, f"IDL:{path}:1.0")
        ior = IOR.parse(ior_from_reference(ref).stringify())
        assert reference_from_ior(ior) == ref

"""Tests for the full compiler pipeline (paper Fig. 6)."""

import pytest

from repro.compiler import Pipeline, compile_idl
from tests.conftest import PAPER_IDL


class TestStages:
    def test_every_stage_produces_an_artifact(self):
        pipeline = Pipeline("heidi_cpp")
        result = pipeline.run(PAPER_IDL, filename="A.idl")
        assert result.spec.find("Heidi::A") is not None
        assert result.est is not None
        assert "ROOT = n0" in result.est_program
        assert "A.hh" in result.files
        for stage in ("parse", "build_est", "emit_est_program",
                      "compile_template", "generate"):
            assert stage in result.timings

    def test_est_program_hand_off_mode(self):
        """use_est_program=True routes the EST through the generated
        program exactly as the paper's two-stage prototype does."""
        direct = Pipeline("heidi_cpp", use_est_program=False).run(
            PAPER_IDL, filename="A.idl"
        )
        via_program = Pipeline("heidi_cpp", use_est_program=True).run(
            PAPER_IDL, filename="A.idl"
        )
        assert via_program.files == direct.files
        assert "load_est_program" in via_program.timings

    def test_same_est_any_pack(self):
        """The parser/EST stage is mapping-agnostic (Fig. 6's split)."""
        heidi = Pipeline("heidi_cpp")
        corba = Pipeline("corba_cpp")
        est1 = heidi.build_est(heidi.parse(PAPER_IDL, filename="A.idl"))
        est2 = corba.build_est(corba.parse(PAPER_IDL, filename="A.idl"))
        assert est1.structurally_equal(est2)

    def test_template_compiled_once_per_pack(self):
        pipeline = Pipeline("heidi_cpp")
        first = pipeline.compile_template()
        second = pipeline.compile_template()
        assert first is second


class TestAllPacksEndToEnd:
    @pytest.mark.parametrize(
        "pack", ["heidi_cpp", "corba_cpp", "java_rmi", "tcl_orb", "python_rmi"]
    )
    def test_pipeline_generates_files(self, pack):
        files = compile_idl(PAPER_IDL, pack=pack, filename="A.idl")
        assert files, pack
        assert all(text.strip() for text in files.values())

    def test_pack_instance_accepted(self):
        from repro.mappings import get_pack

        pipeline = Pipeline(get_pack("heidi_cpp"))
        assert "A.hh" in pipeline.run(PAPER_IDL, filename="A.idl").files

"""Tests for the repro-idlc command line."""

import pytest

from repro.compiler.cli import main


@pytest.fixture
def idl_file(tmp_path):
    path = tmp_path / "Echo.idl"
    path.write_text(
        "module T { interface Echo { string echo(in string s); }; };\n"
    )
    return path


class TestCli:
    def test_list_mappings(self, capsys):
        assert main(["--list-mappings"]) == 0
        out = capsys.readouterr().out
        for pack in ("heidi_cpp", "corba_cpp", "java_rmi", "tcl_orb",
                     "python_rmi"):
            assert pack in out

    def test_generate_to_stdout(self, idl_file, capsys):
        assert main([str(idl_file)]) == 0
        out = capsys.readouterr().out
        assert "class HdEcho" in out

    def test_generate_to_directory(self, idl_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["-o", str(out_dir), str(idl_file)]) == 0
        assert (out_dir / "Echo.hh").exists()

    def test_mapping_selection(self, idl_file, capsys):
        assert main(["-m", "tcl_orb", str(idl_file)]) == 0
        out = capsys.readouterr().out
        assert "EchoStub" in out
        assert "BOA::addIdlMapping" in out

    def test_dump_est(self, idl_file, capsys):
        assert main(["--dump-est", str(idl_file)]) == 0
        out = capsys.readouterr().out
        assert "Interface: Echo" in out
        assert "[methodList]" in out

    def test_emit_est_program(self, idl_file, capsys):
        assert main(["--emit-est-program", str(idl_file)]) == 0
        out = capsys.readouterr().out
        assert "ROOT = n0" in out

    def test_dump_generator(self, idl_file, capsys):
        assert main(["--dump-generator", str(idl_file)]) == 0
        out = capsys.readouterr().out
        assert "def generate(rt):" in out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.idl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_syntax_error_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "bad.idl"
        bad.write_text("interface {")
        assert main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_include_path_option(self, tmp_path, capsys):
        (tmp_path / "inc").mkdir()
        (tmp_path / "inc" / "base.idl").write_text("interface Base { };\n")
        main_idl = tmp_path / "main.idl"
        main_idl.write_text('#include "base.idl"\ninterface D : Base { };\n')
        assert main(["-I", str(tmp_path / "inc"), str(main_idl)]) == 0
        assert "HdD" in capsys.readouterr().out


class TestInterfaceRepositoryOptions:
    def test_ir_records_compiled_file(self, idl_file, tmp_path, capsys):
        ir_dir = str(tmp_path / "ir")
        assert main(["--ir", ir_dir, "-o", str(tmp_path / "out"),
                     str(idl_file)]) == 0
        assert main(["--ir-list", ir_dir]) == 0
        out = capsys.readouterr().out
        assert "entry Echo.idl" in out
        assert "IDL:T/Echo:1.0" in out
        assert "(echo)" in out

    def test_ir_accumulates_entries(self, idl_file, tmp_path, capsys):
        ir_dir = str(tmp_path / "ir")
        other = tmp_path / "Other.idl"
        other.write_text("interface Other { void touch(); };\n")
        assert main(["--ir", ir_dir, "-o", str(tmp_path / "o1"),
                     str(idl_file)]) == 0
        assert main(["--ir", ir_dir, "-o", str(tmp_path / "o2"),
                     str(other)]) == 0
        assert main(["--ir-list", ir_dir]) == 0
        out = capsys.readouterr().out
        assert "entry Echo.idl" in out
        assert "entry Other.idl" in out

    def test_ir_list_missing_directory_errors(self, tmp_path, capsys):
        assert main(["--ir-list", str(tmp_path / "absent")]) == 1
        assert "error" in capsys.readouterr().err

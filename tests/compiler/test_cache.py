"""Tests for the compiled-template cache ('step 1 runs once')."""

from repro.compiler.cache import TemplateCache


TEMPLATE = "line ${x}\n"


class TestCaching:
    def test_first_get_compiles(self):
        cache = TemplateCache()
        compiled = cache.get(TEMPLATE, name="t")
        assert compiled is not None
        assert cache.stats == {"hits": 0, "misses": 1}

    def test_second_get_hits(self):
        cache = TemplateCache()
        first = cache.get(TEMPLATE, name="t")
        second = cache.get(TEMPLATE, name="t")
        assert first is second
        assert cache.stats["hits"] == 1

    def test_source_change_invalidates(self):
        cache = TemplateCache()
        cache.get(TEMPLATE, name="t")
        other = cache.get(TEMPLATE + "more\n", name="t")
        assert cache.stats["misses"] == 2
        assert other.template.body  # freshly compiled

    def test_different_names_distinct(self):
        cache = TemplateCache()
        a = cache.get(TEMPLATE, name="a")
        b = cache.get(TEMPLATE, name="b")
        assert a is not b
        assert len(cache) == 2

    def test_eviction_bound(self):
        cache = TemplateCache(max_entries=3)
        for index in range(5):
            cache.get(f"line {index}\n", name="t")
        assert len(cache) == 3

    def test_evicted_entry_recompiles(self):
        cache = TemplateCache(max_entries=1)
        cache.get("one\n", name="t")
        cache.get("two\n", name="t")   # evicts "one"
        cache.get("one\n", name="t")   # recompiles
        assert cache.stats["misses"] == 3

    def test_clear(self):
        cache = TemplateCache()
        cache.get(TEMPLATE, name="t")
        cache.clear()
        assert len(cache) == 0

    def test_cached_template_still_runs(self):
        from repro.est.node import Ast
        from repro.templates.runtime import Runtime

        cache = TemplateCache()
        compiled = cache.get(TEMPLATE, name="t")
        runtime = Runtime(Ast("Root", "Root"), variables={"x": "1"})
        compiled.run(runtime)
        assert runtime.sink.default_text == "line 1\n"

"""Unit tests for semantic analysis."""

import pytest

from repro.idl import parse
from repro.idl import ast
from repro.idl.errors import IdlSemanticError


class TestNameResolution:
    def test_sibling_resolution(self):
        spec = parse("interface A { }; interface B : A { };")
        assert spec.find("B").resolved_bases[0] is spec.find("A")

    def test_enclosing_scope_resolution(self):
        spec = parse("module M { interface A { }; module N { interface B : A { }; }; };")
        assert spec.find("M::N::B").resolved_bases[0] is spec.find("M::A")

    def test_absolute_scoped_name(self):
        spec = parse("interface A { }; module M { interface B : ::A { }; };")
        assert spec.find("M::B").resolved_bases[0] is spec.find("A")

    def test_forward_declaration_resolved_to_definition(self, paper_spec):
        a = paper_spec.find("Heidi::A")
        assert a.resolved_bases[0] is paper_spec.find("Heidi::S")

    def test_undefined_name_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface B : Missing { };")

    def test_redefinition_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface A { }; interface A { };")

    def test_inheriting_non_interface_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("enum E { X }; interface B : E { };")

    def test_param_type_resolution(self):
        spec = parse("module M { enum E {X}; interface I { void f(in E e); }; };")
        param = spec.find("M::I").body[0].parameters[0]
        assert param.idl_type.declaration is spec.find("M::E")


class TestInheritance:
    def test_all_bases_transitive_order(self):
        spec = parse(
            "interface A {}; interface B : A {}; interface C {}; "
            "interface D : B, C { };"
        )
        names = [b.name for b in spec.find("D").all_bases()]
        assert names == ["A", "B", "C"]

    def test_inherited_operations_collected(self):
        spec = parse(
            "interface A { void fa(); }; interface B : A { void fb(); };"
        )
        assert [op.name for op in spec.find("B").all_operations()] == ["fa", "fb"]

    def test_diamond_inheritance_allowed(self):
        spec = parse(
            "interface R { void r(); }; interface A : R {}; interface B : R {}; "
            "interface D : A, B { };"
        )
        names = [b.name for b in spec.find("D").all_bases()]
        assert names.count("R") == 1

    def test_conflicting_inherited_members_raise(self):
        with pytest.raises(IdlSemanticError):
            parse(
                "interface A { void f(); }; interface B { void f(); }; "
                "interface C : A, B { };"
            )

    def test_self_inheritance_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface A : A { };")


class TestRepositoryIds:
    def test_default_version(self, paper_spec):
        assert paper_spec.find("Heidi::A").repository_id == "IDL:Heidi/A:1.0"

    def test_nested_path(self):
        spec = parse("module M { module N { interface I { }; }; };")
        assert spec.find("M::N::I").repository_id == "IDL:M/N/I:1.0"

    def test_member_ids(self, paper_spec):
        a = paper_spec.find("Heidi::A")
        op = a.operations()[0]
        assert op.repository_id == "IDL:Heidi/A/f:1.0"

    def test_pragma_prefix(self):
        spec = parse('#pragma prefix "omg.org"\ninterface I { };')
        assert spec.find("I").repository_id == "IDL:omg.org/I:1.0"

    def test_pragma_version(self):
        spec = parse("interface I { };\n#pragma version I 2.3\n")
        assert spec.find("I").repository_id == "IDL:I:2.3"

    def test_pragma_id(self):
        spec = parse('interface I { };\n#pragma ID I "IDL:custom/I:9.9"\n')
        assert spec.find("I").repository_id == "IDL:custom/I:9.9"


class TestConstants:
    def test_arithmetic(self):
        spec = parse("const long X = 2 + 3 * 4;")
        assert spec.find("X").evaluated == 14

    def test_bitwise(self):
        spec = parse("const long X = (1 << 4) | 3;")
        assert spec.find("X").evaluated == 19

    def test_unary(self):
        spec = parse("const long X = -(2 + 3);")
        assert spec.find("X").evaluated == -5

    def test_const_reference(self):
        spec = parse("const long A = 10; const long B = A * 2;")
        assert spec.find("B").evaluated == 20

    def test_division_semantics_truncate_toward_zero(self):
        spec = parse("const long X = -7 / 2;")
        assert spec.find("X").evaluated == -3

    def test_division_by_zero_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("const long X = 1 / 0;")

    def test_range_check(self):
        with pytest.raises(IdlSemanticError):
            parse("const short X = 70000;")

    def test_octet_range(self):
        with pytest.raises(IdlSemanticError):
            parse("const octet X = 256;")

    def test_string_const(self):
        spec = parse('const string GREETING = "hi" " there";')
        assert spec.find("GREETING").evaluated == "hi there"


class TestDefaultParameters:
    def test_literal_default_evaluated(self, paper_spec):
        op = paper_spec.find("Heidi::A").operations()[2]  # p
        assert op.parameters[0].default_evaluated == 0

    def test_enum_default_evaluated(self, paper_spec):
        op = paper_spec.find("Heidi::A").operations()[3]  # q
        assert op.parameters[0].default_evaluated == "Start"

    def test_bool_default_evaluated(self, paper_spec):
        op = paper_spec.find("Heidi::A").operations()[4]  # s
        assert op.parameters[0].default_evaluated is True

    def test_non_trailing_default_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface I { void f(in long a = 1, in long b); };")

    def test_duplicate_param_names_raise(self):
        with pytest.raises(IdlSemanticError):
            parse("interface I { void f(in long a, in long a); };")


class TestOnewayChecks:
    def test_oneway_void_ok(self):
        spec = parse("interface I { oneway void ping(); };")
        assert spec.find("I").operations()[0].is_oneway

    def test_oneway_nonvoid_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface I { oneway long f(); };")

    def test_oneway_out_param_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface I { oneway void f(out long x); };")


class TestRaises:
    def test_raises_resolved(self):
        spec = parse("exception E { }; interface I { void f() raises (E); };")
        op = spec.find("I").operations()[0]
        assert op.resolved_raises[0] is spec.find("E")

    def test_raises_non_exception_raises(self):
        with pytest.raises(IdlSemanticError):
            parse("interface E { }; interface I { void f() raises (E); };")


class TestVariability:
    """IsVariable drives the EST property of Fig. 8."""

    def test_interface_is_variable(self, paper_spec):
        assert paper_spec.find("Heidi::A").is_variable_type()

    def test_fixed_struct_not_variable(self):
        spec = parse("struct P { long x; double y; };")
        assert not spec.find("P").is_variable_type()

    def test_struct_with_string_variable(self):
        spec = parse("struct P { string s; };")
        assert spec.find("P").is_variable_type()

    def test_typedef_sequence_variable(self, paper_spec):
        assert paper_spec.find("Heidi::SSequence").is_variable_type()

"""Property-based tests: unparse ∘ parse round-trips.

A random specification is generated, printed with
:func:`repro.idl.unparse.unparse`, re-parsed, and printed again — the
second print must equal the first (print-parse-print fixpoint), and the
repository IDs of all declarations must survive the trip.
"""

from hypothesis import given, settings, strategies as st

from repro.idl import parse
from repro.idl.unparse import unparse

IDENT = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)

_RESERVED = frozenset(
    {
        "abstract", "any", "attribute", "boolean", "case", "char", "const",
        "context", "custom", "default", "double", "enum", "exception",
        "false", "fixed", "float", "in", "incopy", "inout", "interface",
        "long", "module", "native", "object", "octet", "oneway", "out",
        "raises", "readonly", "sequence", "short", "string", "struct",
        "switch", "true", "typedef", "union", "unsigned", "valuebase",
        "valuetype", "void", "wchar", "wstring",
    }
)

PRIMITIVES = st.sampled_from(
    ["boolean", "char", "octet", "short", "long", "unsigned long",
     "long long", "float", "double", "string"]
)


@st.composite
def simple_type(draw):
    base = draw(PRIMITIVES)
    if draw(st.booleans()):
        return f"sequence<{base}>"
    return base


@st.composite
def operation(draw, tag):
    # The tag includes the owning interface's index: redeclaring an
    # inherited operation's name is illegal IDL, so names must be
    # unique across an inheritance chain, not just within one body.
    name = f"op{tag}_{draw(IDENT)}"
    params = []
    for p_index in range(draw(st.integers(0, 3))):
        direction = draw(st.sampled_from(["in", "out", "inout", "incopy"]))
        params.append(f"{direction} {draw(simple_type())} p{p_index}")
    # Trailing defaulted long parameters (the HeidiRMI extension).
    for d_index in range(draw(st.integers(0, 2))):
        value = draw(st.integers(-100, 100))
        params.append(f"in long d{d_index} = {value}")
    return_type = draw(st.sampled_from(["void", "long", "string", "boolean"]))
    return f"{return_type} {name}({', '.join(params)});"


@st.composite
def interface(draw, index, known):
    name = f"I{index}_{draw(IDENT)}"
    bases = ""
    if known and draw(st.booleans()):
        bases = " : " + draw(st.sampled_from(known))
    body = []
    for op_index in range(draw(st.integers(0, 4))):
        body.append("  " + draw(operation(f"{index}x{op_index}")))
    if draw(st.booleans()):
        qualifier = "readonly " if draw(st.booleans()) else ""
        body.append(f"  {qualifier}attribute long attr{index};")
    body_text = "\n".join(body)
    return name, f"interface {name}{bases} {{\n{body_text}\n}};"


@st.composite
def specification(draw):
    parts = []
    known = []
    count = draw(st.integers(1, 4))
    for index in range(count):
        kind = draw(st.sampled_from(["interface", "enum", "struct", "typedef"]))
        if kind == "interface":
            name, text = draw(interface(index, list(known)))
            known.append(name)
            parts.append(text)
        elif kind == "enum":
            members = [f"E{index}_{m}" for m in range(draw(st.integers(1, 4)))]
            parts.append(f"enum En{index} {{{', '.join(members)}}};")
        elif kind == "struct":
            members = [
                f"  {draw(PRIMITIVES)} m{m};" for m in range(draw(st.integers(1, 3)))
            ]
            parts.append("struct St%d {\n%s\n};" % (index, "\n".join(members)))
        else:
            parts.append(f"typedef {draw(simple_type())} Td{index};")
    return "module Gen {\n" + "\n".join(parts) + "\n};"


@given(specification())
@settings(max_examples=60, deadline=None)
def test_print_parse_print_fixpoint(source):
    spec1 = parse(source, filename="gen.idl")
    printed1 = unparse(spec1)
    spec2 = parse(printed1, filename="gen2.idl")
    printed2 = unparse(spec2)
    assert printed1 == printed2


@given(specification())
@settings(max_examples=40, deadline=None)
def test_repository_ids_survive_roundtrip(source):
    spec1 = parse(source, filename="gen.idl")
    spec2 = parse(unparse(spec1), filename="gen2.idl")
    ids1 = sorted(d.repository_id for d in spec1.iter_tree() if d.repository_id)
    ids2 = sorted(d.repository_id for d in spec2.iter_tree() if d.repository_id)
    assert ids1 == ids2


def test_paper_example_roundtrip(paper_idl):
    spec = parse(paper_idl, filename="A.idl")
    printed = unparse(spec)
    spec2 = parse(printed)
    assert unparse(spec2) == printed
    a = spec2.find("Heidi::A")
    assert [op.name for op in a.operations()] == ["f", "g", "p", "q", "s", "t"]
    assert str(a.operations()[3].parameters[0].default) == "Heidi::Start"

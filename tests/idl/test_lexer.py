"""Unit tests for the IDL lexer."""

import pytest

from repro.idl import tokenize
from repro.idl.errors import IdlSyntaxError
from repro.idl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token,) = tokenize("hello")[:-1]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.value == "hello"

    def test_keyword_is_distinguished_from_identifier(self):
        (token,) = tokenize("interface")[:-1]
        assert token.kind is TokenKind.KEYWORD

    def test_keywords_are_case_sensitive(self):
        (token,) = tokenize("Interface")[:-1]
        assert token.kind is TokenKind.IDENTIFIER

    def test_incopy_extension_keyword(self):
        (token,) = tokenize("incopy")[:-1]
        assert token.kind is TokenKind.KEYWORD
        assert token.text == "incopy"

    def test_escaped_identifier_shadows_keyword(self):
        (token,) = tokenize("_interface")[:-1]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.value == "interface"

    def test_scope_operator(self):
        assert kinds("Heidi::A") == [
            TokenKind.IDENTIFIER,
            TokenKind.SCOPE,
            TokenKind.IDENTIFIER,
        ]

    def test_shift_operators(self):
        assert kinds("1 << 2 >> 3") == [
            TokenKind.INTEGER,
            TokenKind.LSHIFT,
            TokenKind.INTEGER,
            TokenKind.RSHIFT,
            TokenKind.INTEGER,
        ]

    def test_punctuation(self):
        assert kinds("{};(),=") == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.SEMICOLON,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.EQUALS,
        ]


class TestNumericLiterals:
    def test_decimal_integer(self):
        assert values("42") == [42]

    def test_octal_integer(self):
        assert values("0755") == [0o755]

    def test_hex_integer(self):
        assert values("0xFF 0x10") == [255, 16]

    def test_plain_zero(self):
        assert values("0") == [0]

    def test_float_with_fraction(self):
        assert values("3.25") == [3.25]

    def test_float_with_exponent(self):
        assert values("1e3 2.5E-2") == [1000.0, 0.025]

    def test_float_leading_dot(self):
        assert values(".5") == [0.5]

    def test_fixed_literal(self):
        tokens = tokenize("1.5d")[:-1]
        assert tokens[0].kind is TokenKind.FIXED

    def test_malformed_hex_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("0x")


class TestStringAndCharLiterals:
    def test_simple_string(self):
        assert values('"hello"') == ["hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\nb\tc\\d"') == ["a\nb\tc\\d"]

    def test_string_hex_escape(self):
        assert values(r'"\x41"') == ["A"]

    def test_string_octal_escape(self):
        assert values(r'"\101"') == ["A"]

    def test_wide_string(self):
        tokens = tokenize('L"wide"')[:-1]
        assert tokens[0].kind is TokenKind.WSTRING
        assert tokens[0].value == "wide"

    def test_char_literal(self):
        assert values("'x'") == ["x"]

    def test_char_escape(self):
        assert values(r"'\n'") == ["\n"]

    def test_wide_char(self):
        tokens = tokenize("L'w'")[:-1]
        assert tokens[0].kind is TokenKind.WCHAR

    def test_unterminated_string_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize('"oops')

    def test_unterminated_char_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("'ab'")


class TestCommentsAndWhitespace:
    def test_line_comment_is_skipped(self):
        assert kinds("long // the whole rest\n x") == [
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
        ]

    def test_block_comment_is_skipped(self):
        assert kinds("long /* hi\nthere */ x") == [
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("/* never ends")

    def test_location_tracking(self):
        tokens = tokenize("a\n  b")[:-1]
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


class TestPreprocessor:
    def test_pragma_token(self):
        (token,) = tokenize('#pragma prefix "omg.org"')[:-1]
        assert token.kind is TokenKind.PRAGMA
        assert token.value == 'prefix "omg.org"'

    def test_include_token_quotes(self):
        (token,) = tokenize('#include "base.idl"')[:-1]
        assert token.kind is TokenKind.INCLUDE_DIRECTIVE
        assert token.value == "base.idl"

    def test_include_token_angles(self):
        (token,) = tokenize("#include <orb.idl>")[:-1]
        assert token.value == "orb.idl"

    def test_include_guards_are_skipped(self):
        source = "#ifndef A_IDL\n#define A_IDL\nlong\n#endif\n"
        assert kinds(source) == [TokenKind.KEYWORD]

    def test_hash_mid_line_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("long #pragma x")

    def test_unknown_directive_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("#frobnicate yes")

"""Property-based tests for IDL constant-expression evaluation.

Random arithmetic expressions are rendered to IDL, parsed as constants,
and the evaluated result compared against direct Python evaluation with
IDL division semantics (truncation toward zero).
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.idl import parse
from repro.idl.errors import IdlSemanticError


class Node:
    """A tiny expression tree rendered to IDL and evaluated in Python."""

    def __init__(self, op=None, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self):
        if self.op is None:
            return str(self.value)
        if self.op == "neg":
            return f"(-{self.left.render()})"
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self):
        if self.op is None:
            return self.value
        if self.op == "neg":
            return -self.left.evaluate()
        left = self.left.evaluate()
        right = self.right.evaluate()
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if self.op == "%":
            return left % right
        if self.op == "|":
            return left | right
        if self.op == "&":
            return left & right
        if self.op == "^":
            return left ^ right
        if self.op == "<<":
            return left << right
        if self.op == ">>":
            return left >> right
        raise AssertionError(self.op)


@st.composite
def int_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return Node(value=draw(st.integers(0, 1000)))
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "|", "&", "^", "neg"]))
    left = draw(int_expr(depth=depth + 1))
    if op == "neg":
        return Node(op="neg", left=left)
    right = draw(int_expr(depth=depth + 1))
    return Node(op=op, left=left, right=right)


@given(int_expr())
@settings(max_examples=200, deadline=None)
def test_integer_expression_evaluation(expr):
    try:
        expected = expr.evaluate()
    except ZeroDivisionError:
        assume(False)
        return
    assume(-(2**62) < expected < 2**62)
    source = f"const long long X = {expr.render()};"
    try:
        spec = parse(source)
    except IdlSemanticError:
        # Out-of-range intermediate detected by the range checker.
        return
    assert spec.find("X").evaluated == expected


@given(st.integers(0, 31), st.integers(0, 1000))
@settings(max_examples=80, deadline=None)
def test_shift_expressions(shift, base):
    spec = parse(f"const unsigned long long X = {base} << {shift};")
    assert spec.find("X").evaluated == base << shift
    spec = parse(f"const long long Y = {base << shift} >> {shift};")
    assert spec.find("Y").evaluated == base


class TestDivisionSemantics:
    """IDL (like C) truncates integer division toward zero."""

    @pytest.mark.parametrize("expr,expected", [
        ("7 / 2", 3),
        ("-7 / 2", -3),
        ("7 / -2", -3),
        ("-7 / -2", 3),
    ])
    def test_truncation(self, expr, expected):
        spec = parse(f"const long X = {expr};")
        assert spec.find("X").evaluated == expected


class TestConstChains:
    def test_constants_reference_constants(self):
        spec = parse(
            "const long A = 6;\n"
            "const long B = A * 7;\n"
            "const long C = B - A;\n"
        )
        assert spec.find("C").evaluated == 36

    def test_forward_constant_reference_rejected(self):
        with pytest.raises(IdlSemanticError):
            parse("const long A = B; const long B = 1;")

    def test_constant_usable_as_sequence_bound(self):
        spec = parse("const long N = 4; typedef sequence<long, N> Small;")
        assert spec.find("Small").aliased_type.bound == 4

    def test_constant_usable_as_default_parameter(self):
        spec = parse(
            "const long DEFAULT_SIZE = 32;"
            "interface I { void f(in long n = DEFAULT_SIZE); };"
        )
        op = spec.find("I").operations()[0]
        assert op.parameters[0].default_evaluated == 32

"""Unit tests for the IDL parser (syntax only; semantics tested apart)."""

import pytest

from repro.idl import parse
from repro.idl import ast
from repro.idl.errors import IdlSyntaxError
from repro.idl.types import (
    ArrayType,
    NamedType,
    PrimitiveKind,
    PrimitiveType,
    SequenceType,
    StringType,
)


def parse_raw(source):
    return parse(source, analyze_semantics=False)


class TestModulesAndInterfaces:
    def test_empty_module(self):
        spec = parse_raw("module M { };")
        (module,) = spec.declarations
        assert isinstance(module, ast.Module)
        assert module.name == "M"

    def test_nested_modules(self):
        spec = parse_raw("module A { module B { }; };")
        inner = spec.declarations[0].declarations[0]
        assert inner.scoped_name() == "A::B"

    def test_forward_declaration(self):
        spec = parse_raw("interface S;")
        (forward,) = spec.declarations
        assert isinstance(forward, ast.Forward)

    def test_interface_with_bases(self):
        spec = parse_raw("interface A {}; interface B {}; interface C : A, B { };")
        interface = spec.declarations[2]
        assert interface.bases == ["A", "B"]

    def test_abstract_interface(self):
        spec = parse_raw("abstract interface A { };")
        assert spec.declarations[0].is_abstract

    def test_missing_semicolon_raises(self):
        with pytest.raises(IdlSyntaxError):
            parse_raw("interface A { }")

    def test_unterminated_body_raises(self):
        with pytest.raises(IdlSyntaxError):
            parse_raw("interface A {")


class TestOperations:
    def test_void_operation(self):
        spec = parse_raw("interface I { void f(); };")
        op = spec.declarations[0].body[0]
        assert op.return_type.idl_name() == "void"
        assert op.parameters == []

    def test_parameter_directions(self):
        spec = parse_raw(
            "interface I { void f(in long a, out long b, inout long c, incopy I d); };"
        )
        op = spec.declarations[0].body[0]
        assert [p.direction for p in op.parameters] == ["in", "out", "inout", "incopy"]

    def test_missing_direction_raises(self):
        with pytest.raises(IdlSyntaxError):
            parse_raw("interface I { void f(long a); };")

    def test_default_parameter_expression(self):
        spec = parse_raw("interface I { void f(in long a = 1 + 2); };")
        param = spec.declarations[0].body[0].parameters[0]
        assert isinstance(param.default, ast.BinaryExpr)

    def test_default_on_out_parameter_raises(self):
        with pytest.raises(IdlSyntaxError):
            parse_raw("interface I { void f(out long a = 1); };")

    def test_oneway(self):
        spec = parse_raw("interface I { oneway void ping(); };")
        assert spec.declarations[0].body[0].is_oneway

    def test_raises_clause(self):
        spec = parse_raw(
            "exception E {}; interface I { void f() raises (E); };"
        )
        assert spec.declarations[1].body[0].raises == ["E"]

    def test_context_clause(self):
        spec = parse_raw('interface I { void f() context ("a", "b"); };')
        assert spec.declarations[0].body[0].context == ["a", "b"]

    def test_nonvoid_return(self):
        spec = parse_raw("interface I { unsigned long long f(); };")
        op = spec.declarations[0].body[0]
        assert op.return_type == PrimitiveType(PrimitiveKind.ULONGLONG)


class TestAttributes:
    def test_plain_attribute(self):
        spec = parse_raw("interface I { attribute string name; };")
        attr = spec.declarations[0].body[0]
        assert isinstance(attr, ast.Attribute)
        assert not attr.readonly

    def test_readonly_attribute(self):
        spec = parse_raw("interface I { readonly attribute long count; };")
        assert spec.declarations[0].body[0].readonly

    def test_source_order_preserved(self):
        # Fig. 3 interleaves the attribute between methods; the *parse
        # tree* must keep that order (the EST is what regroups).
        spec = parse_raw(
            "interface I { void a(); attribute long x; void b(); };"
        )
        kinds = [type(d).__name__ for d in spec.declarations[0].body]
        assert kinds == ["Operation", "Attribute", "Operation"]


class TestTypes:
    def test_all_primitives(self):
        source = """interface I {
            void f(in boolean a, in char b, in wchar c, in octet d,
                   in short e, in unsigned short f, in long g,
                   in unsigned long h, in long long i,
                   in unsigned long long j, in float k, in double l,
                   in long double m);
        };"""
        op = parse_raw(source).declarations[0].body[0]
        got = [p.idl_type.kind for p in op.parameters]
        assert got == [
            PrimitiveKind.BOOLEAN, PrimitiveKind.CHAR, PrimitiveKind.WCHAR,
            PrimitiveKind.OCTET, PrimitiveKind.SHORT, PrimitiveKind.USHORT,
            PrimitiveKind.LONG, PrimitiveKind.ULONG, PrimitiveKind.LONGLONG,
            PrimitiveKind.ULONGLONG, PrimitiveKind.FLOAT, PrimitiveKind.DOUBLE,
            PrimitiveKind.LONGDOUBLE,
        ]

    def test_bounded_string(self):
        spec = parse_raw("typedef string<16> Name;")
        assert spec.declarations[0].aliased_type == StringType(bound=16)

    def test_sequence(self):
        spec = parse_raw("typedef sequence<long> Longs;")
        aliased = spec.declarations[0].aliased_type
        assert isinstance(aliased, SequenceType)
        assert aliased.bound == 0

    def test_bounded_sequence(self):
        spec = parse_raw("typedef sequence<long, 8> Longs;")
        assert spec.declarations[0].aliased_type.bound == 8

    def test_nested_sequence(self):
        spec = parse_raw("typedef sequence<sequence<long>> Matrix;")
        aliased = spec.declarations[0].aliased_type
        assert isinstance(aliased.element, SequenceType)

    def test_array_declarator(self):
        spec = parse_raw("typedef long Grid[3][4];")
        aliased = spec.declarations[0].aliased_type
        assert isinstance(aliased, ArrayType)
        assert aliased.dimensions == (3, 4)

    def test_multiple_typedef_declarators(self):
        spec = parse_raw("typedef long A, B;")
        assert [d.name for d in spec.declarations] == ["A", "B"]

    def test_scoped_name_type(self):
        spec = parse_raw("interface I { void f(in ::I x); };")
        param = spec.declarations[0].body[0].parameters[0]
        assert isinstance(param.idl_type, NamedType)
        assert param.idl_type.scoped_name == "::I"


class TestConstructedTypes:
    def test_struct(self):
        spec = parse_raw("struct P { long x; double y; };")
        struct = spec.declarations[0]
        assert [m.name for m in struct.members] == ["x", "y"]

    def test_struct_multi_declarator_member(self):
        spec = parse_raw("struct P { long x, y; };")
        assert [m.name for m in spec.declarations[0].members] == ["x", "y"]

    def test_enum(self):
        spec = parse_raw("enum Color { Red, Green, Blue };")
        assert spec.declarations[0].enumerators == ["Red", "Green", "Blue"]

    def test_union(self):
        spec = parse_raw(
            "union U switch (long) { case 1: long a; case 2: case 3: "
            "string b; default: double c; };"
        )
        union = spec.declarations[0]
        assert len(union.cases) == 3
        assert union.cases[1].labels and len(union.cases[1].labels) == 2
        assert union.cases[2].labels == [None]

    def test_exception(self):
        spec = parse_raw("exception Bad { string why; };")
        assert spec.declarations[0].members[0].name == "why"

    def test_const(self):
        spec = parse_raw("const long MAX = 4 * 8;")
        assert spec.declarations[0].name == "MAX"

    def test_native(self):
        spec = parse_raw("native Cookie;")
        assert isinstance(spec.declarations[0], ast.NativeDecl)


class TestIncludes:
    def test_include_resolved(self, tmp_path):
        base = tmp_path / "base.idl"
        base.write_text("interface Base { };\n")
        main = tmp_path / "main.idl"
        main.write_text('#include "base.idl"\ninterface D : Base { };\n')
        spec = parse(main.read_text(), filename=str(main))
        derived = spec.find("D")
        assert derived is not None
        assert derived.resolved_bases[0].name == "Base"

    def test_include_once(self, tmp_path):
        base = tmp_path / "base.idl"
        base.write_text("interface Base { };\n")
        main = tmp_path / "main.idl"
        main.write_text(
            '#include "base.idl"\n#include "base.idl"\ninterface D : Base { };\n'
        )
        spec = parse(main.read_text(), filename=str(main))
        includes = [d for d in spec.declarations if isinstance(d, ast.Include)]
        parsed = [inc for inc in includes if inc.spec is not None]
        assert len(parsed) == 1

    def test_missing_include_tolerated_without_semantics(self, tmp_path):
        main = tmp_path / "main.idl"
        main.write_text('#include "nowhere.idl"\n')
        spec = parse(main.read_text(), filename=str(main), analyze_semantics=False)
        (include,) = spec.declarations
        assert include.spec is None

"""Unit tests for the template parser."""

import pytest

from repro.templates import parse_template, TemplateSyntaxError
from repro.templates import ast


def body_of(source, **kwargs):
    return parse_template(source, **kwargs).body


class TestTextLines:
    def test_plain_text(self):
        (line,) = body_of("hello world")
        assert isinstance(line, ast.TextLine)
        assert line.parts == ["hello world"]
        assert line.newline

    def test_variable_splitting(self):
        (line,) = body_of("class ${name} : ${base} {")
        assert line.parts == [
            "class ",
            ast.VarRef("name"),
            " : ",
            ast.VarRef("base"),
            " {",
        ]

    def test_adjacent_variables(self):
        (line,) = body_of("${a}${b}")
        assert line.parts == [ast.VarRef("a"), ast.VarRef("b")]

    def test_trailing_backslash_suppresses_newline(self):
        (line,) = body_of("partial \\")
        assert line.parts == ["partial "]
        assert not line.newline

    def test_escaped_at_sign(self):
        (line,) = body_of("@@foreach is literal")
        assert line.parts == ["@foreach is literal"]

    def test_indentation_preserved(self):
        (line,) = body_of("    indented")
        assert line.parts == ["    indented"]

    def test_comment_dropped(self):
        (line,) = body_of("@# a comment\ntext")
        assert line.parts == ["text"]


class TestForeach:
    def test_basic(self):
        (node,) = body_of("@foreach methodList\nx\n@end methodList")
        assert isinstance(node, ast.Foreach)
        assert node.list_name == "methodList"
        assert len(node.body) == 1

    def test_end_without_name(self):
        (node,) = body_of("@foreach xs\n@end")
        assert node.list_name == "xs"

    def test_mismatched_end_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@foreach xs\n@end ys")

    def test_unclosed_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@foreach xs\ntext")

    def test_if_more_modifier(self):
        (node,) = body_of("@foreach xs -ifMore ','\n@end")
        assert node.if_more == ","

    def test_map_modifier(self):
        (node,) = body_of("@foreach xs -map name CPP::MapClassName\n@end")
        assert node.maps == {"name": "CPP::MapClassName"}

    def test_multiple_maps(self):
        (node,) = body_of("@foreach xs -map a F1 -map b F2\n@end")
        assert node.maps == {"a": "F1", "b": "F2"}

    def test_sep_and_reverse(self):
        (node,) = body_of("@foreach xs -sep '---' -reverse\n@end")
        assert node.separator == "---"
        assert node.reverse

    def test_fig9_modifier_combination(self):
        (node,) = body_of(
            "@foreach inheritedList -ifMore ',' -map inheritedName CPP::MapClassName\n@end"
        )
        assert node.if_more == ","
        assert node.maps == {"inheritedName": "CPP::MapClassName"}

    def test_unknown_modifier_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@foreach xs -frobnicate\n@end")

    def test_nesting(self):
        source = "@foreach a\n@foreach b\ninner\n@end b\n@end a"
        (outer,) = body_of(source)
        (inner,) = outer.body
        assert inner.list_name == "b"


class TestIf:
    def test_if_fi(self):
        (node,) = body_of('@if ${x} == ""\nyes\n@fi')
        assert isinstance(node, ast.If)
        (condition, body), = node.branches
        assert condition.op == "=="

    def test_if_else(self):
        (node,) = body_of("@if ${x} == '1'\na\n@else\nb\n@fi")
        assert len(node.branches) == 2
        assert node.branches[1][0] is None

    def test_elif_chain(self):
        (node,) = body_of("@if ${x} == '1'\n@elif ${x} == '2'\n@else\n@fi")
        assert len(node.branches) == 3

    def test_not_equal(self):
        (node,) = body_of('@if ${q} != "readonly"\nx\n@fi')
        assert node.branches[0][0].op == "!="

    def test_truthiness_condition(self):
        (node,) = body_of("@if ${flag}\nx\n@fi")
        assert node.branches[0][0].op == ""

    def test_unclosed_if_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@if ${x}\ntext")

    def test_empty_condition_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@if\n@fi")


class TestOtherDirectives:
    def test_openfile(self):
        (node,) = body_of("@openfile ${name}.hh")
        assert isinstance(node, ast.OpenFile)
        assert node.parts == [ast.VarRef("name"), ".hh"]

    def test_closefile(self):
        (node,) = body_of("@closefile")
        assert isinstance(node, ast.CloseFile)

    def test_set(self):
        (node,) = body_of("@set prefix Hd")
        assert node.name == "prefix"
        assert node.parts == ["Hd"]

    def test_unknown_directive_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@frobnicate")

    def test_include_with_loader(self):
        templates = {"inner.tmpl": "included line\n"}
        body = body_of("before\n@include inner.tmpl\nafter",
                       loader=templates.__getitem__)
        assert len(body) == 3
        assert body[1].parts == ["included line"]

    def test_include_without_loader_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@include inner.tmpl")

    def test_missing_include_raises(self):
        with pytest.raises(TemplateSyntaxError):
            body_of("@include nope.tmpl", loader={}.__getitem__)

    def test_recursive_include_raises(self):
        templates = {"a.tmpl": "@include a.tmpl"}
        with pytest.raises(TemplateSyntaxError):
            body_of("@include a.tmpl", loader=templates.__getitem__)

    def test_error_carries_line_number(self):
        try:
            body_of("ok line\n@bogus")
        except TemplateSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected TemplateSyntaxError")

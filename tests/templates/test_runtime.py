"""Unit tests for template execution (step 2)."""

import pytest

from repro.est.node import Ast
from repro.templates import MapRegistry, Runtime, generate
from repro.templates.errors import TemplateRuntimeError
from repro.templates.maps import BUILTIN_MAPS


def est_with_interface():
    root = Ast("Root", "Root")
    module = Ast("M", "Module", root)
    interface = Ast("Widget", "Interface", module)
    interface.add_prop("repoId", "IDL:M/Widget:1.0")
    op = Ast("poke", "Operation", interface)
    op.add_prop("type", "void")
    param = Ast("n", "Param", op)
    param.add_prop("type", "long")
    param.add_prop("defaultParam", "")
    op2 = Ast("peek", "Operation", interface)
    op2.add_prop("type", "long")
    return root


def run(template, est=None, **kwargs):
    est = est if est is not None else est_with_interface()
    return generate(template, est, **kwargs)


class TestSubstitution:
    def test_plain_text_passthrough(self):
        sink = run("no variables here")
        assert sink.default_text == "no variables here\n"

    def test_global_variable(self):
        sink = run("hello ${who}", variables={"who": "world"})
        assert sink.default_text == "hello world\n"

    def test_missing_variable_is_empty(self):
        sink = run("[${nothing}]")
        assert sink.default_text == "[]\n"

    def test_missing_variable_strict_raises(self):
        with pytest.raises(TemplateRuntimeError):
            run("${nothing}", strict=True)

    def test_set_directive(self):
        sink = run("@set greeting hi\n${greeting}")
        assert sink.default_text == "hi\n"

    def test_line_continuation_joins_lines(self):
        sink = run("one \\\ntwo")
        assert sink.default_text == "one two\n"


class TestForeach:
    def test_iterates_nodes_with_bindings(self):
        template = "@foreach moduleList\n@foreach interfaceList\n${interfaceName}\n@end\n@end"
        assert run(template).default_text == "Widget\n"

    def test_node_stack_lookup(self):
        template = (
            "@foreach moduleList\n@foreach interfaceList\n"
            "@foreach methodList\n${interfaceName}.${methodName}\n@end\n@end\n@end"
        )
        assert run(template).default_text == "Widget.poke\nWidget.peek\n"

    def test_all_list_shortcut(self):
        template = "@foreach allInterfaceList\n${interfaceName}\n@end"
        assert run(template).default_text == "Widget\n"

    def test_all_list_for_operations(self):
        template = "@foreach allOperationList\n${methodName}\n@end"
        assert run(template).default_text == "poke\npeek\n"

    def test_if_more_binding(self):
        est = Ast("Root", "Root")
        for name in ("a", "b", "c"):
            Ast(name, "Inherited", est)
        template = "@foreach inheritedList -ifMore ', '\n${inheritedName}${ifMore}\\\n@end\n"
        assert run(template, est=est).default_text == "a, b, c"

    def test_index_first_last_bindings(self):
        est = Ast("Root", "Root")
        for name in ("x", "y"):
            Ast(name, "Inherited", est)
        template = "@foreach inheritedList\n${index}:${first}:${last}\n@end"
        assert run(template, est=est).default_text == "0:1:\n1::1\n"

    def test_plain_list_iteration(self):
        est = Ast("Root", "Root")
        enum = Ast("E", "Enum", est)
        enum.add_prop("members", ["One", "Two"])
        template = "@foreach enumList\n@foreach members\n${member}=${index}\n@end\n@end"
        assert run(template, est=est).default_text == "One=0\nTwo=1\n"

    def test_separator_modifier(self):
        est = Ast("Root", "Root")
        enum = Ast("E", "Enum", est)
        enum.add_prop("members", ["a", "b"])
        template = "@foreach enumList\n@foreach members -sep '--'\n${item}\n@end\n@end"
        assert run(template, est=est).default_text == "a\n--b\n"

    def test_reverse_modifier(self):
        est = Ast("Root", "Root")
        enum = Ast("E", "Enum", est)
        enum.add_prop("members", ["a", "b"])
        template = "@foreach enumList\n@foreach members -reverse\n${item}\n@end\n@end"
        assert run(template, est=est).default_text == "b\na\n"

    def test_missing_list_is_empty(self):
        assert run("@foreach nowhereList\nX\n@end").default_text == ""

    def test_non_list_value_raises(self):
        est = Ast("Root", "Root")
        est.add_prop("bad", "not-a-list")
        with pytest.raises(TemplateRuntimeError):
            run("@foreach bad\n@end", est=est)


class TestMaps:
    def test_map_applies_to_variable(self):
        template = "@foreach allInterfaceList -map interfaceName Upper\n${interfaceName}\n@end"
        assert run(template).default_text == "WIDGET\n"

    def test_map_scoped_to_loop(self):
        """Outside the foreach the map must not apply."""
        est = est_with_interface()
        template = (
            "@foreach allInterfaceList -map interfaceName Upper\n"
            "@end\n@foreach allInterfaceList\n${interfaceName}\n@end"
        )
        assert run(template, est=est).default_text == "Widget\n"

    def test_innermost_map_wins(self):
        template = (
            "@foreach moduleList -map moduleName Upper\n"
            "@foreach interfaceList -map moduleName Lower\n${moduleName}\n@end\n@end"
        )
        assert run(template).default_text == "m\n"

    def test_custom_map_function(self):
        registry = MapRegistry(parent=BUILTIN_MAPS)
        registry.register_simple("Bang", lambda v: f"{v}!")
        template = "@foreach allInterfaceList -map interfaceName Bang\n${interfaceName}\n@end"
        assert run(template, maps=registry).default_text == "Widget!\n"

    def test_map_receives_node_context(self):
        registry = MapRegistry(parent=BUILTIN_MAPS)
        registry.register("WithRepo", lambda v, ctx: ctx.prop("repoId"))
        template = "@foreach allInterfaceList -map interfaceName WithRepo\n${interfaceName}\n@end"
        assert run(template, maps=registry).default_text == "IDL:M/Widget:1.0\n"

    def test_synthesized_map_variable(self):
        """-map on a variable with no underlying property synthesizes it."""
        registry = MapRegistry(parent=BUILTIN_MAPS)
        registry.register("Stmt", lambda v, ctx: f"call({ctx.node.name})")
        template = "@foreach allInterfaceList -map stmt Stmt\n${stmt}\n@end"
        assert run(template, maps=registry).default_text == "call(Widget)\n"

    def test_unknown_map_raises(self):
        with pytest.raises(TemplateRuntimeError):
            run("@foreach allInterfaceList -map interfaceName Nope\n${interfaceName}\n@end")


class TestConditionals:
    def test_equality_branches(self):
        template = (
            "@foreach allOperationList\n"
            '@if ${type} == "void"\n${methodName} returns nothing\n'
            "@else\n${methodName} returns ${type}\n@fi\n@end"
        )
        assert run(template).default_text == (
            "poke returns nothing\npeek returns long\n"
        )

    def test_inequality(self):
        template = '@if ${x} != "a"\ndiffers\n@fi'
        assert run(template, variables={"x": "b"}).default_text == "differs\n"

    def test_truthiness_empty_false(self):
        template = "@if ${empty}\nnope\n@else\nempty\n@fi"
        assert run(template, variables={"empty": ""}).default_text == "empty\n"

    def test_truthiness_zero_false(self):
        template = "@if ${n}\nyes\n@else\nno\n@fi"
        assert run(template, variables={"n": "0"}).default_text == "no\n"

    def test_elif(self):
        template = (
            "@if ${x} == 'a'\nA\n@elif ${x} == 'b'\nB\n@else\nC\n@fi"
        )
        assert run(template, variables={"x": "b"}).default_text == "B\n"


class TestOutputRouting:
    def test_openfile_routes_output(self):
        template = "default\n@openfile gen.txt\nin file\n@closefile\nback"
        sink = run(template)
        assert sink.default_text == "default\nback\n"
        assert sink.files() == {"gen.txt": "in file\n"}

    def test_openfile_with_substitution(self):
        template = "@foreach allInterfaceList\n@openfile ${interfaceName}.hh\nx\n@closefile\n@end"
        sink = run(template)
        assert "Widget.hh" in sink.files()

    def test_reopening_appends(self):
        template = "@openfile a.txt\none\n@closefile\n@openfile a.txt\ntwo\n@closefile"
        assert run(template).files()["a.txt"] == "one\ntwo\n"

    def test_unclosed_file_auto_closed(self):
        template = "@openfile a.txt\ncontent"
        assert run(template).files()["a.txt"] == "content\n"

    def test_write_to_disk(self, tmp_path):
        sink = run("@openfile sub/out.txt\ndata\n@closefile")
        written = sink.write_to(str(tmp_path))
        assert len(written) == 1
        assert (tmp_path / "sub" / "out.txt").read_text() == "data\n"

"""Template-engine fuzz: generated templates always compile and run.

Random (structurally valid) templates over random ESTs must produce
output without ever raising from inside the engine — and structurally
broken ones must fail with TemplateSyntaxError, never anything else.
"""

from hypothesis import given, settings, strategies as st

from repro.est.node import Ast
from repro.templates import (
    TemplateSyntaxError,
    compile_template,
    generate,
    parse_template,
)

VAR_NAMES = st.sampled_from(
    ["interfaceName", "methodName", "paramName", "type", "repoId",
     "ifMore", "index", "missing", "defaultParam"]
)

LIST_NAMES = st.sampled_from(
    ["interfaceList", "methodList", "paramList", "allInterfaceList",
     "allOperationList", "members", "nothingList"]
)

TEXT_FRAGMENT = st.from_regex(r"[A-Za-z0-9_ :;(){}<>*&=./\-]{0,30}",
                              fullmatch=True)


@st.composite
def text_line(draw):
    pieces = []
    for _ in range(draw(st.integers(1, 3))):
        pieces.append(draw(TEXT_FRAGMENT))
        if draw(st.booleans()):
            pieces.append("${" + draw(VAR_NAMES) + "}")
    line = "".join(pieces)
    if draw(st.booleans()):
        line += "\\"
    return line


@st.composite
def template_body(draw, depth=0):
    lines = []
    for _ in range(draw(st.integers(1, 4))):
        choice = draw(st.integers(0, 3 if depth < 2 else 1))
        if choice <= 1:
            lines.append(draw(text_line()))
        elif choice == 2:
            list_name = draw(LIST_NAMES)
            modifiers = ""
            if draw(st.booleans()):
                modifiers += " -ifMore ','"
            if draw(st.booleans()):
                modifiers += " -map " + draw(VAR_NAMES) + " Upper"
            lines.append(f"@foreach {list_name}{modifiers}")
            lines.extend(draw(template_body(depth=depth + 1)))
            lines.append("@end " + list_name)
        else:
            variable = draw(VAR_NAMES)
            lines.append(f"@if ${{{variable}}} == \"x\"")
            lines.extend(draw(template_body(depth=depth + 1)))
            if draw(st.booleans()):
                lines.append("@else")
                lines.extend(draw(template_body(depth=depth + 1)))
            lines.append("@fi")
    return lines


def sample_est():
    root = Ast("Root", "Root")
    module = Ast("M", "Module", root)
    interface = Ast("I", "Interface", module)
    interface.add_prop("repoId", "IDL:M/I:1.0")
    op = Ast("f", "Operation", interface)
    op.add_prop("type", "void")
    param = Ast("p", "Param", op)
    param.add_prop("type", "long")
    param.add_prop("defaultParam", "")
    enum = Ast("E", "Enum", module)
    enum.add_prop("members", ["A", "B"])
    return root


@given(template_body())
@settings(max_examples=120, deadline=None)
def test_valid_templates_compile_and_run(lines):
    source = "\n".join(lines) + "\n"
    sink = generate(source, sample_est(), name="fuzz")
    assert isinstance(sink.default_text, str)


@given(template_body())
@settings(max_examples=60, deadline=None)
def test_step1_output_is_valid_python(lines):
    source = "\n".join(lines) + "\n"
    compiled = compile_template(source, name="fuzz")
    compile(compiled.source, "<fuzz>", "exec")


@given(st.lists(st.sampled_from(
    ["@foreach xs", "@end", "@if ${x}", "@fi", "@else", "text", "@bogus",
     "@elif ${y} == '1'"]
), min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_arbitrary_directive_soup_fails_cleanly(lines):
    """Unbalanced/invalid structures raise TemplateSyntaxError only."""
    source = "\n".join(lines) + "\n"
    try:
        template = parse_template(source, name="soup")
    except TemplateSyntaxError:
        return
    # If it parsed, it must also compile and run.
    generate(source, sample_est(), name="soup")

"""Unit tests for step 1: template → generator-program compilation."""

from repro.est.node import Ast
from repro.templates import compile_template, compile_to_source, parse_template
from repro.templates.runtime import Runtime


class TestGeneratedProgram:
    def test_program_is_python_source(self):
        template = parse_template("hello ${name}", name="t")
        source = compile_to_source(template)
        compile(source, "<t>", "exec")  # must be valid Python
        assert "def generate(rt):" in source

    def test_program_mentions_template_name(self):
        template = parse_template("x", name="heidi/interface.tmpl")
        assert "heidi/interface.tmpl" in compile_to_source(template)

    def test_empty_template_compiles(self):
        compiled = compile_template("", name="empty")
        runtime = Runtime(Ast("Root", "Root"))
        compiled.run(runtime)
        assert runtime.sink.default_text == ""

    def test_foreach_compiles_to_loop(self):
        template = parse_template("@foreach xs\n${item}\n@end")
        source = compile_to_source(template)
        assert "for _iter1 in rt.foreach('xs'" in source

    def test_maps_are_embedded(self):
        template = parse_template("@foreach xs -map a F\n@end")
        assert "maps={'a': 'F'}" in compile_to_source(template)

    def test_if_compiles_to_python_if(self):
        template = parse_template('@if ${x} == "1"\na\n@fi')
        source = compile_to_source(template)
        assert "if (rt.var('x')) == ('1'):" in source

    def test_two_step_separation(self):
        """Step 1 (compilation) happens once; step 2 can run many times
        against different ESTs — the paper's division of labour."""
        compiled = compile_template(
            "@foreach interfaceList\n${interfaceName}\n@end", name="t"
        )
        for name in ("One", "Two"):
            root = Ast("Root", "Root")
            Ast(name, "Interface", root)
            runtime = Runtime(root)
            compiled.run(runtime)
            assert runtime.sink.default_text == f"{name}\n"

    def test_compiled_source_is_reexecutable(self):
        """The step-1 artifact is self-contained program text: exec'ing
        it fresh (as the cache does after a restart) works."""
        compiled = compile_template("v=${v}", name="t")
        namespace = {}
        exec(compile(compiled.source, "<re>", "exec"), namespace)
        runtime = Runtime(Ast("Root", "Root"), variables={"v": "42"})
        namespace["generate"](runtime)
        runtime.sink.close_all()
        assert runtime.sink.default_text == "v=42\n"


class TestFig9Template:
    """The paper's Fig. 9 constructs all compile and run together."""

    FIG9_LIKE = """\
@foreach interfaceList -map interfaceName Upper
@openfile ${interfaceName}.hh
/* File ${interfaceName}.hh */
class ${interfaceName} :
@foreach inheritedList -ifMore ',' -map inheritedName Upper
        virtual public ${inheritedName} ${ifMore}
@end inheritedList
public:
@foreach methodList
  virtual ${type} ${methodName}() = 0;
@end methodList
  virtual ~${interfaceName}() {}
@closefile
@end interfaceList
"""

    def test_generates_per_interface_files(self):
        root = Ast("Root", "Root")
        interface = Ast("A", "Interface", root)
        Ast("S", "Inherited", interface)
        op = Ast("f", "Operation", interface)
        op.add_prop("type", "void")
        compiled = compile_template(self.FIG9_LIKE, name="fig9")
        runtime = Runtime(root)
        sink = compiled.run(runtime)
        text = sink.files()["A.hh"]
        assert "/* File A.hh */" in text
        assert "class A :" in text
        assert "virtual public S " in text
        assert "virtual void f() = 0;" in text
        assert "virtual ~A() {}" in text

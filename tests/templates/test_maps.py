"""Unit tests for the map-function registry."""

import pytest

from repro.est.node import Ast
from repro.templates import MapRegistry, simple_map
from repro.templates.errors import TemplateRuntimeError
from repro.templates.maps import BUILTIN_MAPS, MapContext


class TestRegistry:
    def test_register_and_apply(self):
        registry = MapRegistry()
        registry.register_simple("X::Double", lambda v: v * 2)
        assert registry.apply("X::Double", "ab") == "abab"

    def test_decorator_registration(self):
        registry = MapRegistry()

        @registry.registered("X::F")
        def func(value, ctx):
            return value + "!"

        assert registry.apply("X::F", "hi") == "hi!"

    def test_parent_chaining(self):
        parent = MapRegistry()
        parent.register_simple("P", lambda v: "parent")
        child = parent.child()
        assert child.apply("P", "") == "parent"

    def test_child_overrides_parent(self):
        parent = MapRegistry()
        parent.register_simple("F", lambda v: "old")
        child = parent.child()
        child.register_simple("F", lambda v: "new")
        assert child.apply("F", "") == "new"
        assert parent.apply("F", "") == "old"

    def test_unknown_map_raises(self):
        with pytest.raises(TemplateRuntimeError):
            MapRegistry().apply("Nope", "x")

    def test_none_result_becomes_empty(self):
        registry = MapRegistry()
        registry.register("N", lambda v, ctx: None)
        assert registry.apply("N", "x") == ""

    def test_names_merges_parents(self):
        parent = MapRegistry()
        parent.register_simple("A", lambda v: v)
        child = parent.child()
        child.register_simple("B", lambda v: v)
        assert set(child.names()) >= {"A", "B"}


class TestMapContext:
    def test_prop_outward_lookup(self):
        interface = Ast("A", "Interface")
        interface.add_prop("repoId", "IDL:A:1.0")
        param = Ast("x", "Param", interface)
        ctx = MapContext(node=param)
        assert ctx.prop("repoId") == "IDL:A:1.0"

    def test_prop_default(self):
        assert MapContext(node=None).prop("x", "d") == "d"


class TestBuiltins:
    def test_identity(self):
        assert BUILTIN_MAPS.apply("Identity", "x") == "x"

    def test_upper_lower(self):
        assert BUILTIN_MAPS.apply("Upper", "abc") == "ABC"
        assert BUILTIN_MAPS.apply("Lower", "ABC") == "abc"

    def test_flatten(self):
        assert BUILTIN_MAPS.apply("Flatten", "Heidi::A") == "Heidi_A"

    def test_cap_first(self):
        assert BUILTIN_MAPS.apply("CapFirst", "button") == "Button"

    def test_simple(self):
        assert BUILTIN_MAPS.apply("Simple", "Heidi::S") == "S"

    def test_simple_map_adapter(self):
        adapted = simple_map(str.upper)
        assert adapted("ab", MapContext()) == "AB"

"""RPC throughput harness: calls/sec across protocols × connection modes.

The measurement behind the pipelining claim: N concurrent client
threads hammer one echo object through a single shared client ORB, over
either the paper's exclusive-checkout connection cache or the
multiplexed (one shared, demultiplexed channel) mode, for each wire
protocol that supports the mode.

Call styles match what each mode is for: exclusive rows issue blocking
stub calls (one request in flight per caller — all the classic protocol
can express), multiplexed rows drive the pipeline with windowed bursts
(``Orb.invoke_bulk``), which is the feature under measurement.  Every
reply is verified against its caller's token, so a cross-wired reply
fails the run rather than inflating it.

``run_matrix`` produces the deterministic document written to
``BENCH_rpc.json`` at the repo root; ``benchmarks/run_bench.py`` is the
command-line entry point.
"""

import json
import os
import platform
import threading
import time

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.serialize import TypeRegistry
from repro.observe import Observer
from repro.observe.cli import percentile

TYPE_ID = "IDL:Bench/Echo:1.0"

#: (protocol, mode) pairs measured; multiplexing needs request ids, so
#: the classic text protocol only runs exclusive.
CONFIGURATIONS = (
    ("text", "exclusive"),
    ("text2", "exclusive"),
    ("text2", "multiplexed"),
    ("giop", "exclusive"),
    ("giop", "multiplexed"),
)


class Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, text):
        call = self._new_call("echo")
        call.put_string(text)
        return self._invoke(call).get_string()


class Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"),)

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string()))


class EchoImpl:
    def echo(self, text):
        return text


def _registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Echo_stub,
                             skeleton_class=Echo_skel)
    return types


def _run_once(transport, protocol, mode, clients, calls_per_client,
              window, pipeline_workers):
    """One timed run; returns elapsed seconds (replies all verified)."""
    types = _registry()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=(mode == "multiplexed"))
    try:
        stub = client.resolve(
            server.register(EchoImpl(), type_id=TYPE_ID).stringify()
        )
        stub.echo("warmup")
        errors = []
        start_barrier = threading.Barrier(clients + 1)
        pipelined = (mode == "multiplexed")

        def body(thread_index):
            token = f"c{thread_index}"
            start_barrier.wait()
            try:
                if pipelined:
                    done = 0
                    while done < calls_per_client:
                        burst = min(window, calls_per_client - done)
                        calls = []
                        for _ in range(burst):
                            call = stub._new_call("echo")
                            call.put_string(token)
                            calls.append(call)
                        replies = client.invoke_bulk(stub.reference, calls)
                        for reply in replies:
                            if reply.get_string() != token:
                                errors.append("cross-wired reply")
                                return
                        done += burst
                else:
                    for _ in range(calls_per_client):
                        if stub.echo(token) != token:
                            errors.append("cross-wired reply")
                            return
            except Exception as exc:  # noqa: BLE001 - fail the run below
                errors.append(repr(exc))

        threads = [threading.Thread(target=body, args=(index,))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise RuntimeError(f"benchmark run failed: {errors[:3]}")
        return elapsed
    finally:
        client.stop()
        server.stop()


def measure(transport, protocol, mode, clients, calls_per_client,
            window=64, pipeline_workers=0, trials=3):
    """Calls/sec for one configuration, best of *trials* runs."""
    elapsed = min(
        _run_once(transport, protocol, mode, clients, calls_per_client,
                  window, pipeline_workers)
        for _ in range(trials)
    )
    total = clients * calls_per_client
    return {
        "transport": transport,
        "protocol": protocol,
        "mode": mode,
        "call_style": "pipelined" if mode == "multiplexed" else "blocking",
        "clients": clients,
        "calls": total,
        "seconds": round(elapsed, 6),
        "calls_per_sec": round(total / elapsed, 1),
    }


def run_matrix(transport="inproc", client_counts=(1, 16),
               calls_per_client=200, window=64, pipeline_workers=0,
               trials=3):
    """The full measurement document (machine info + every config)."""
    results = []
    for clients in client_counts:
        for protocol, mode in CONFIGURATIONS:
            results.append(measure(
                transport, protocol, mode, clients, calls_per_client,
                window=window, pipeline_workers=pipeline_workers,
                trials=trials,
            ))
    document = {
        "benchmark": "rpc_throughput",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "client_counts": list(client_counts),
            "calls_per_client": calls_per_client,
            "window": window,
            "pipeline_workers": pipeline_workers,
            "trials": trials,
        },
        "results": results,
    }
    document["claim"] = measure_claim(
        transport, max(client_counts), calls_per_client,
        window=window, pipeline_workers=pipeline_workers,
        trials=max(trials, 4),
    )
    return document


def measure_claim(transport, clients, calls_per_client, window=64,
                  pipeline_workers=0, trials=4):
    """The headline comparison: multiplexed text2 vs exclusive text.

    Measured as interleaved pairs (exclusive run, then multiplexed run,
    repeated) so both sides of the ratio see the same machine
    conditions; the best run of each side is kept.  Sequential rows in
    the matrix can land in different CPU-frequency windows, which would
    make a ratio between them noise.
    """
    exclusive_best = None
    multiplexed_best = None
    for _ in range(trials):
        exclusive = _run_once(transport, "text", "exclusive", clients,
                              calls_per_client, window, pipeline_workers)
        multiplexed = _run_once(transport, "text2", "multiplexed", clients,
                                calls_per_client, window, pipeline_workers)
        if exclusive_best is None or exclusive < exclusive_best:
            exclusive_best = exclusive
        if multiplexed_best is None or multiplexed < multiplexed_best:
            multiplexed_best = multiplexed
    total = clients * calls_per_client
    return {
        "clients": clients,
        "method": f"interleaved pairs, best of {trials}",
        "multiplexed_text2_calls_per_sec": round(total / multiplexed_best, 1),
        "exclusive_text_calls_per_sec": round(total / exclusive_best, 1),
        "speedup": round(exclusive_best / multiplexed_best, 2),
    }


#: (protocol, mode) pairs for the traced suite: the classic blocking
#: path, plus the two multiplexed protocols whose pipeline stages the
#: spans are meant to attribute.
TRACED_CONFIGURATIONS = (
    ("text", "exclusive"),
    ("text2", "multiplexed"),
    ("giop", "multiplexed"),
)


def _wait_spans(observer, n, timeout=5.0):
    """Server spans finish on server threads; poll briefly for export."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


def _stage_quantiles(spans):
    """p50/p99 of span durations and of each stage, in microseconds."""
    durations = [span["duration_us"] for span in spans
                 if span.get("duration_us") is not None]
    stages = {}
    for span in spans:
        for name, micros in span.get("stages", ()):
            stages.setdefault(name, []).append(micros)
    return {
        "count": len(durations),
        "p50_us": round(percentile(durations, 0.50) or 0, 1),
        "p99_us": round(percentile(durations, 0.99) or 0, 1),
        "stages": {
            name: {
                "p50_us": round(percentile(values, 0.50) or 0, 1),
                "p99_us": round(percentile(values, 0.99) or 0, 1),
            }
            for name, values in sorted(stages.items())
        },
    }


def _run_traced_once(transport, protocol, mode, calls, pipeline_workers):
    """One traced run; returns (client spans, server spans, elapsed s)."""
    types = _registry()
    client_observer, server_observer = Observer(), Observer()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers,
                 observer=server_observer).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=(mode == "multiplexed"),
                 observer=client_observer)
    try:
        stub = client.resolve(
            server.register(EchoImpl(), type_id=TYPE_ID).stringify()
        )
        started = time.perf_counter()
        for index in range(calls):
            token = f"t{index}"
            if stub.echo(token) != token:
                raise RuntimeError("cross-wired reply in traced run")
        elapsed = time.perf_counter() - started
        client_spans = _wait_spans(client_observer, calls)
        server_spans = _wait_spans(server_observer, calls)
        return client_spans, server_spans, elapsed
    finally:
        client.stop()
        server.stop()


def run_traced(transport="inproc", calls=100, pipeline_workers=0):
    """The traced suite: per-stage latency attribution under tracing.

    Runs each configuration with observers on both ends, then reduces
    the exported spans to p50/p99 per pipeline stage.  Returns the
    ``BENCH_obs.json`` document plus every raw span (for spans.jsonl).
    """
    results = []
    all_spans = []
    for protocol, mode in TRACED_CONFIGURATIONS:
        client_spans, server_spans, elapsed = _run_traced_once(
            transport, protocol, mode, calls, pipeline_workers
        )
        all_spans.extend(client_spans)
        all_spans.extend(server_spans)
        linked = {span["parent_id"] for span in server_spans}
        results.append({
            "transport": transport,
            "protocol": protocol,
            "mode": mode,
            "calls": calls,
            "seconds": round(elapsed, 6),
            "traced_calls_per_sec": round(calls / elapsed, 1),
            "linked_spans": sum(
                1 for span in client_spans if span["span_id"] in linked
            ),
            "client": _stage_quantiles(client_spans),
            "server": _stage_quantiles(server_spans),
        })
    document = {
        "benchmark": "rpc_traced_stages",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "calls": calls,
            "pipeline_workers": pipeline_workers,
        },
        "results": results,
    }
    return document, all_spans


def write_spans(spans, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
    return path


def write_document(document, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""RPC throughput harness: calls/sec across protocols × connection modes.

The measurement behind the pipelining claim: N concurrent client
threads hammer one echo object through a single shared client ORB, over
either the paper's exclusive-checkout connection cache or the
multiplexed (one shared, demultiplexed channel) mode, for each wire
protocol that supports the mode.

Call styles match what each mode is for: exclusive rows issue blocking
stub calls (one request in flight per caller — all the classic protocol
can express), multiplexed rows drive the pipeline with windowed bursts
(``Orb.invoke_bulk``), which is the feature under measurement.  Every
reply is verified against its caller's token, so a cross-wired reply
fails the run rather than inflating it.

``run_matrix`` produces the deterministic document written to
``BENCH_rpc.json`` at the repo root; ``benchmarks/run_bench.py`` is the
command-line entry point.
"""

import json
import os
import platform
import random
import subprocess
import sys
import threading
import time

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.errors import CommunicationError, OverloadedError
from repro.heidirmi.serialize import TypeRegistry
from repro.observe import FlightControl, Observer
from repro.observe.cli import percentile
from repro.resilience import (
    DEFAULT_RETRYABLE_KINDS,
    AdmissionPolicy,
    BreakerPolicy,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.chaos import install_chaos

TYPE_ID = "IDL:Bench/Echo:1.0"

#: (protocol, mode) pairs measured; multiplexing needs request ids, so
#: the classic text protocol only runs exclusive.
CONFIGURATIONS = (
    ("text", "exclusive"),
    ("text2", "exclusive"),
    ("text2", "multiplexed"),
    ("giop", "exclusive"),
    ("giop", "multiplexed"),
)


class Echo_stub(HdStub):
    _hd_type_id_ = TYPE_ID

    def echo(self, text):
        call = self._new_call("echo")
        call.put_string(text)
        return self._invoke(call).get_string()


class Echo_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (("echo", "_op_echo"),)

    def _op_echo(self, call, reply):
        reply.put_string(self.impl.echo(call.get_string()))


class EchoImpl:
    def echo(self, text):
        return text


def _registry():
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=Echo_stub,
                             skeleton_class=Echo_skel)
    return types


def _run_once(transport, protocol, mode, clients, calls_per_client,
              window, pipeline_workers, client_kwargs=None,
              server_kwargs=None):
    """One timed run; returns elapsed seconds (replies all verified)."""
    types = _registry()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers,
                 **(server_kwargs or {})).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=(mode == "multiplexed"),
                 **(client_kwargs or {}))
    try:
        stub = client.resolve(
            server.register(EchoImpl(), type_id=TYPE_ID).stringify()
        )
        stub.echo("warmup")
        errors = []
        start_barrier = threading.Barrier(clients + 1)
        pipelined = (mode == "multiplexed")

        def body(thread_index):
            token = f"c{thread_index}"
            start_barrier.wait()
            try:
                if pipelined:
                    done = 0
                    while done < calls_per_client:
                        burst = min(window, calls_per_client - done)
                        calls = []
                        for _ in range(burst):
                            call = stub._new_call("echo")
                            call.put_string(token)
                            calls.append(call)
                        replies = client.invoke_bulk(stub.reference, calls)
                        for reply in replies:
                            if reply.get_string() != token:
                                errors.append("cross-wired reply")
                                return
                        done += burst
                else:
                    for _ in range(calls_per_client):
                        if stub.echo(token) != token:
                            errors.append("cross-wired reply")
                            return
            except Exception as exc:  # noqa: BLE001 - fail the run below
                errors.append(repr(exc))

        threads = [threading.Thread(target=body, args=(index,))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise RuntimeError(f"benchmark run failed: {errors[:3]}")
        return elapsed
    finally:
        client.stop()
        server.stop()


def measure(transport, protocol, mode, clients, calls_per_client,
            window=64, pipeline_workers=0, trials=3):
    """Calls/sec for one configuration, best of *trials* runs."""
    elapsed = min(
        _run_once(transport, protocol, mode, clients, calls_per_client,
                  window, pipeline_workers)
        for _ in range(trials)
    )
    total = clients * calls_per_client
    return {
        "transport": transport,
        "protocol": protocol,
        "mode": mode,
        "call_style": "pipelined" if mode == "multiplexed" else "blocking",
        "clients": clients,
        "calls": total,
        "seconds": round(elapsed, 6),
        "calls_per_sec": round(total / elapsed, 1),
    }


def run_matrix(transport="inproc", client_counts=(1, 16),
               calls_per_client=200, window=64, pipeline_workers=0,
               trials=3):
    """The full measurement document (machine info + every config)."""
    results = []
    for clients in client_counts:
        for protocol, mode in CONFIGURATIONS:
            results.append(measure(
                transport, protocol, mode, clients, calls_per_client,
                window=window, pipeline_workers=pipeline_workers,
                trials=trials,
            ))
    document = {
        "benchmark": "rpc_throughput",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "client_counts": list(client_counts),
            "calls_per_client": calls_per_client,
            "window": window,
            "pipeline_workers": pipeline_workers,
            "trials": trials,
        },
        "results": results,
    }
    document["claim"] = measure_claim(
        transport, max(client_counts), calls_per_client,
        window=window, pipeline_workers=pipeline_workers,
        trials=max(trials, 4),
    )
    return document


def measure_claim(transport, clients, calls_per_client, window=64,
                  pipeline_workers=0, trials=4):
    """The headline comparison: multiplexed text2 vs exclusive text.

    Measured as interleaved pairs (exclusive run, then multiplexed run,
    repeated) so both sides of the ratio see the same machine
    conditions; the best run of each side is kept.  Sequential rows in
    the matrix can land in different CPU-frequency windows, which would
    make a ratio between them noise.
    """
    exclusive_best = None
    multiplexed_best = None
    for _ in range(trials):
        exclusive = _run_once(transport, "text", "exclusive", clients,
                              calls_per_client, window, pipeline_workers)
        multiplexed = _run_once(transport, "text2", "multiplexed", clients,
                                calls_per_client, window, pipeline_workers)
        if exclusive_best is None or exclusive < exclusive_best:
            exclusive_best = exclusive
        if multiplexed_best is None or multiplexed < multiplexed_best:
            multiplexed_best = multiplexed
    total = clients * calls_per_client
    return {
        "clients": clients,
        "method": f"interleaved pairs, best of {trials}",
        "multiplexed_text2_calls_per_sec": round(total / multiplexed_best, 1),
        "exclusive_text_calls_per_sec": round(total / exclusive_best, 1),
        "speedup": round(exclusive_best / multiplexed_best, 2),
    }


#: (protocol, mode) pairs for the traced suite: the classic blocking
#: path, plus the two multiplexed protocols whose pipeline stages the
#: spans are meant to attribute.
TRACED_CONFIGURATIONS = (
    ("text", "exclusive"),
    ("text2", "multiplexed"),
    ("giop", "multiplexed"),
)


def _wait_spans(observer, n, timeout=5.0):
    """Server spans finish on server threads; poll briefly for export."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = observer.exporter.snapshot()
        if len(spans) >= n:
            return spans
        time.sleep(0.005)
    return observer.exporter.snapshot()


def _stage_quantiles(spans):
    """p50/p99 of span durations and of each stage, in microseconds."""
    durations = [span["duration_us"] for span in spans
                 if span.get("duration_us") is not None]
    stages = {}
    for span in spans:
        for name, micros in span.get("stages", ()):
            stages.setdefault(name, []).append(micros)
    return {
        "count": len(durations),
        "p50_us": round(percentile(durations, 0.50) or 0, 1),
        "p99_us": round(percentile(durations, 0.99) or 0, 1),
        "stages": {
            name: {
                "p50_us": round(percentile(values, 0.50) or 0, 1),
                "p99_us": round(percentile(values, 0.99) or 0, 1),
            }
            for name, values in sorted(stages.items())
        },
    }


def _run_traced_once(transport, protocol, mode, calls, pipeline_workers):
    """One traced run; returns (client spans, server spans, elapsed s)."""
    types = _registry()
    client_observer, server_observer = Observer(), Observer()
    server = Orb(transport=transport, protocol=protocol, types=types,
                 pipeline_workers=pipeline_workers,
                 observer=server_observer).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 multiplex=(mode == "multiplexed"),
                 observer=client_observer)
    try:
        stub = client.resolve(
            server.register(EchoImpl(), type_id=TYPE_ID).stringify()
        )
        started = time.perf_counter()
        for index in range(calls):
            token = f"t{index}"
            if stub.echo(token) != token:
                raise RuntimeError("cross-wired reply in traced run")
        elapsed = time.perf_counter() - started
        client_spans = _wait_spans(client_observer, calls)
        server_spans = _wait_spans(server_observer, calls)
        return client_spans, server_spans, elapsed
    finally:
        client.stop()
        server.stop()


def measure_flight_claim(transport, clients, calls_per_client, window=64,
                         pipeline_workers=0, trials=4):
    """What the flight recorder costs: recorder-on vs recorder-off.

    Interleaved pairs on the multiplexed text2 axis — the hottest path
    the wire-event tap touches — with observers on both ends in both
    runs, so the ratio isolates the recorder itself rather than
    tracing.  The "on" side attaches a :class:`FlightControl` (ring
    capture of every frame, both directions, both ends); the "off"
    side runs the same observers with no recorder, i.e. the tap
    attribute stays ``None`` and the hot path takes its one-pointer
    fast test.  Best run of each side is kept.
    """
    off_best = None
    on_best = None
    for _ in range(trials):
        off = _run_once(
            transport, "text2", "multiplexed", clients, calls_per_client,
            window, pipeline_workers,
            client_kwargs={"observer": Observer()},
            server_kwargs={"observer": Observer()},
        )
        on = _run_once(
            transport, "text2", "multiplexed", clients, calls_per_client,
            window, pipeline_workers,
            client_kwargs={"observer": Observer(flight=FlightControl())},
            server_kwargs={"observer": Observer(flight=FlightControl())},
        )
        if off_best is None or off < off_best:
            off_best = off
        if on_best is None or on < on_best:
            on_best = on
    total = clients * calls_per_client
    return {
        "clients": clients,
        "calls_per_client": calls_per_client,
        "method": f"interleaved pairs, best of {trials}",
        "recorder_off_calls_per_sec": round(total / off_best, 1),
        "recorder_on_calls_per_sec": round(total / on_best, 1),
        "recorder_overhead_pct": round((on_best / off_best - 1.0) * 100, 2),
    }


def run_traced(transport="inproc", calls=100, pipeline_workers=0,
               clients=8, calls_per_client=150, trials=4):
    """The traced suite: per-stage latency attribution under tracing.

    Runs each configuration with observers on both ends, then reduces
    the exported spans to p50/p99 per pipeline stage.  The claim block
    prices the flight recorder: recorder-on throughput must track
    recorder-off on the multiplexed text2 axis.  Returns the
    ``BENCH_obs.json`` document plus every raw span (for spans.jsonl).
    """
    results = []
    all_spans = []
    for protocol, mode in TRACED_CONFIGURATIONS:
        client_spans, server_spans, elapsed = _run_traced_once(
            transport, protocol, mode, calls, pipeline_workers
        )
        all_spans.extend(client_spans)
        all_spans.extend(server_spans)
        linked = {span["parent_id"] for span in server_spans}
        results.append({
            "transport": transport,
            "protocol": protocol,
            "mode": mode,
            "calls": calls,
            "seconds": round(elapsed, 6),
            "traced_calls_per_sec": round(calls / elapsed, 1),
            "linked_spans": sum(
                1 for span in client_spans if span["span_id"] in linked
            ),
            "client": _stage_quantiles(client_spans),
            "server": _stage_quantiles(server_spans),
        })
    document = {
        "benchmark": "rpc_traced_stages",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "calls": calls,
            "pipeline_workers": pipeline_workers,
            "claim_clients": clients,
            "claim_calls_per_client": calls_per_client,
            "claim_trials": trials,
        },
        "results": results,
        "claim": measure_flight_claim(
            transport, clients, calls_per_client,
            pipeline_workers=pipeline_workers, trials=trials,
        ),
    }
    return document, all_spans


#: Fault rates for the resilience suite: a clean control, then the two
#: rates the acceptance contract names (1% and 5% per event).
FAULT_RATES = (0.0, 0.01, 0.05)

#: Modes the faulted suite measures; both need request ids to survive a
#: poisoned stream, so only text2 runs.
FAULT_MODES = ("exclusive", "multiplexed")

#: For idempotent bench traffic a garbled reply is safe to retry, so
#: the poisoned-stream kind joins the default whitelist (the same
#: reasoning as tests/resilience/test_acceptance.py).
_FAULT_RETRYABLE = frozenset(DEFAULT_RETRYABLE_KINDS | {"peer-protocol-error"})


def _run_faulted_once(transport, mode, rate, calls, seed, deadline):
    """One faulted run: per-call latency + outcome for idempotent calls.

    A seeded chaos plan injects connect refusals, mid-frame disconnects
    and garbage frames at *rate* per event underneath text2; the client
    retries with tight (real but sub-millisecond-scale) backoff under a
    per-call deadline.  Rate 0.0 still runs through the chaos wrapper,
    so latencies compare apples-to-apples across rates.
    """
    plan = FaultPlan(seed=seed, connect_refuse=rate, disconnect=rate,
                     garbage=rate)
    chaos_transport = install_chaos(transport, plan)
    types = _registry()
    server = Orb(transport=chaos_transport, protocol="text2",
                 types=types).start()
    client = Orb(transport=chaos_transport, protocol="text2", types=types,
                 multiplex=(mode == "multiplexed"),
                 resilience=ResiliencePolicy(
                     retry=RetryPolicy(max_attempts=4, base_delay=0.001,
                                       max_delay=0.01,
                                       retryable_kinds=_FAULT_RETRYABLE,
                                       rng=random.Random(seed)),
                     default_deadline=deadline,
                 ))
    latencies_us = []
    successes = 0
    try:
        stub = client.resolve(
            server.register(EchoImpl(), type_id=TYPE_ID).stringify()
        )
        for index in range(calls):
            token = f"c{index}"
            call = stub._new_call("echo", idempotent=True)
            call.put_string(token)
            started = time.perf_counter()
            try:
                if stub._invoke(call).get_string() != token:
                    raise RuntimeError("cross-wired reply under faults")
                successes += 1
            except CommunicationError:
                pass
            latencies_us.append((time.perf_counter() - started) * 1e6)
    finally:
        client.stop()
        server.stop()
    return {
        "transport": transport,
        "protocol": "text2",
        "mode": mode,
        "fault_rate": rate,
        "calls": calls,
        "success_rate": round(successes / calls, 4),
        "p50_us": round(percentile(latencies_us, 0.50) or 0, 1),
        "p99_us": round(percentile(latencies_us, 0.99) or 0, 1),
        "faults_injected": plan.injected(),
    }


def measure_resilience_claim(transport, clients, calls_per_client,
                             window=64, pipeline_workers=0, trials=4):
    """The overhead check: a resilience-configured ORB at zero faults.

    Interleaved pairs (no-policy run, then policy run, repeated; best
    of each kept) on the blocking exclusive text2 path — the path
    ``resilient_invoke`` wraps.  ``no_policy_calls_per_sec`` is also
    directly comparable against BENCH_rpc.json from the pre-resilience
    tree, since an Orb without a policy takes the untouched hot path.
    """
    policy_kwargs = {
        "resilience": ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, rng=random.Random(0)),
            breaker=BreakerPolicy(),
            default_deadline=30.0,
        )
    }
    bare_best = None
    policy_best = None
    for _ in range(trials):
        bare = _run_once(transport, "text2", "exclusive", clients,
                         calls_per_client, window, pipeline_workers)
        policy = _run_once(transport, "text2", "exclusive", clients,
                           calls_per_client, window, pipeline_workers,
                           client_kwargs=policy_kwargs)
        if bare_best is None or bare < bare_best:
            bare_best = bare
        if policy_best is None or policy < policy_best:
            policy_best = policy
    total = clients * calls_per_client
    return {
        "clients": clients,
        "method": f"interleaved pairs, best of {trials}",
        "no_policy_calls_per_sec": round(total / bare_best, 1),
        "policy_zero_faults_calls_per_sec": round(total / policy_best, 1),
        "policy_overhead_pct": round((policy_best / bare_best - 1.0) * 100, 2),
    }


#: Runs one timed blocking-exclusive text2 workload against whatever
#: tree sys.argv points it at, printing the elapsed seconds.  Works
#: against this tree and against older checkouts alike (``_run_once``
#: has had this signature prefix since the benchmark was introduced).
_BASELINE_SNIPPET = (
    "import sys\n"
    "sys.path.insert(0, sys.argv[1])\n"
    "sys.path.insert(0, sys.argv[2])\n"
    "from rpc_bench import _run_once\n"
    "print(_run_once('inproc', 'text2', 'exclusive',\n"
    "                int(sys.argv[3]), int(sys.argv[4]), 64, 0))\n"
)


def _subprocess_elapsed(tree_root, clients, calls_per_client):
    """One workload in a fresh interpreter over *tree_root*'s sources."""
    result = subprocess.run(
        [sys.executable, "-c", _BASELINE_SNIPPET,
         os.path.join(tree_root, "src"),
         os.path.join(tree_root, "benchmarks"),
         str(clients), str(calls_per_client)],
        capture_output=True, text=True, check=True,
    )
    return float(result.stdout.strip().splitlines()[-1])


def measure_baseline_regression(baseline_root, clients, calls_per_client,
                                trials=4):
    """No-policy throughput of this tree vs an older checkout's.

    Both trees run the identical blocking exclusive text2 workload in
    fresh interpreters, as interleaved pairs (baseline, current,
    repeated; best of each kept) so both sides see the same machine
    conditions.  This is the direct check that an Orb *without* a
    resilience policy still runs the pre-resilience hot path: extract
    the pre-resilience revision (e.g. ``git archive <rev> | tar -x -C
    benchmarks/out/baseline``) and pass it as *baseline_root*.
    """
    current_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_best = None
    current_best = None
    for _ in range(trials):
        baseline = _subprocess_elapsed(baseline_root, clients,
                                       calls_per_client)
        current = _subprocess_elapsed(current_root, clients,
                                      calls_per_client)
        if baseline_best is None or baseline < baseline_best:
            baseline_best = baseline
        if current_best is None or current < current_best:
            current_best = current
    total = clients * calls_per_client
    return {
        "clients": clients,
        "method": f"interleaved subprocess pairs, best of {trials}",
        "baseline_calls_per_sec": round(total / baseline_best, 1),
        "current_no_policy_calls_per_sec": round(total / current_best, 1),
        "regression_pct": round((current_best / baseline_best - 1.0) * 100, 2),
    }


def run_faults(transport="inproc", calls=300, seed=42, deadline=5.0,
               rates=FAULT_RATES, clients=8, calls_per_client=150,
               trials=4, baseline_root=None):
    """The resilience measurement document (``BENCH_resilience.json``).

    For each fault rate × connection mode: p50/p99 latency and success
    rate of idempotent retry traffic under a seeded chaos plan.  The
    claim block measures what resilience *costs* when nothing fails;
    with *baseline_root* (an extracted pre-resilience checkout) it also
    measures the no-policy regression against that tree directly.
    """
    results = []
    for rate in rates:
        for mode in FAULT_MODES:
            results.append(_run_faulted_once(
                transport, mode, rate, calls, seed, deadline
            ))
    document = {
        "benchmark": "rpc_resilience",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "calls": calls,
            "seed": seed,
            "deadline_s": deadline,
            "fault_rates": list(rates),
            "retry": {"max_attempts": 4, "base_delay": 0.001,
                      "max_delay": 0.01},
        },
        "results": results,
        "claim": measure_resilience_claim(
            transport, clients, calls_per_client,
            pipeline_workers=0, trials=trials,
        ),
    }
    if baseline_root is not None:
        document["claim"]["no_policy_vs_baseline"] = (
            measure_baseline_regression(baseline_root, clients,
                                        calls_per_client, trials=trials)
        )
    return document


#: Offered-load multiples the overload suite measures, as factors of
#: ``base_clients``; the acceptance contract gates the highest one.
OVERLOAD_LOADS = (1, 4, 16)


def _spin(seconds):
    """Burn CPU for *seconds* — real work the GIL serialises, so server
    capacity saturates honestly instead of hiding in a sleep()."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class SpinEchoImpl(EchoImpl):
    """Echo with a fixed CPU cost per call (the overload workload)."""

    def __init__(self, service_s):
        self.service_s = service_s

    def echo(self, text):
        _spin(self.service_s)
        return text


def _run_overload_once(transport, clients, service_s, deadline_s,
                       warmup_s, measure_s, admission):
    """One overload cell: goodput + accepted-latency under closed-loop load.

    *clients* caller threads hammer a CPU-bound echo (``service_s`` of
    spin per call) through blocking exclusive text2 calls with a per-call
    deadline.  Callers honour the server's shed hints: an ``Overloaded``
    reply pauses that caller for the ``retry-after`` the server asked
    for, exactly what a well-behaved resilient client does.  The first
    ``warmup_s`` of the run is discarded (the AIMD limit is converging),
    then outcomes are counted for ``measure_s``.
    """
    types = _registry()
    server_kwargs = {"admission": admission} if admission is not None else {}
    server = Orb(transport=transport, protocol="text2", types=types,
                 **server_kwargs).start()
    client = Orb(transport=transport, protocol="text2", types=types,
                 resilience=ResiliencePolicy(default_deadline=deadline_s))
    measuring = threading.Event()
    stop = threading.Event()
    lock = threading.Lock()
    outcomes = {"ok": 0, "shed": 0, "failed": 0}
    latencies_ms = []
    try:
        reference = server.register(
            SpinEchoImpl(service_s), type_id=TYPE_ID
        ).stringify()

        def worker(index):
            stub = client.resolve(reference)
            token = f"w{index}"
            while not stop.is_set():
                started = time.perf_counter()
                try:
                    if stub.echo(token) != token:
                        raise RuntimeError("cross-wired reply under overload")
                except OverloadedError as exc:
                    if measuring.is_set():
                        with lock:
                            outcomes["shed"] += 1
                    pause = exc.retry_after if exc.retry_after else 0.005
                    stop.wait(min(pause, 0.05))
                    continue
                except CommunicationError:
                    if measuring.is_set():
                        with lock:
                            outcomes["failed"] += 1
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1e3
                if measuring.is_set():
                    with lock:
                        outcomes["ok"] += 1
                        latencies_ms.append(elapsed_ms)

        threads = [
            threading.Thread(target=worker, args=(index,), daemon=True)
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(warmup_s)
        measuring.set()
        started = time.perf_counter()
        time.sleep(measure_s)
        measured = time.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        snapshot = (server._admission.snapshot()
                    if admission is not None else None)
    finally:
        stop.set()
        client.stop()
        server.stop()
    row = {
        "transport": transport,
        "protocol": "text2",
        "mode": "exclusive",
        "shed": admission is not None,
        "clients": clients,
        "window_s": round(measured, 3),
        "goodput_calls_per_sec": round(outcomes["ok"] / measured, 1),
        "shed_calls_per_sec": round(outcomes["shed"] / measured, 1),
        "failed_calls_per_sec": round(outcomes["failed"] / measured, 1),
        "accepted_p50_ms": round(percentile(latencies_ms, 0.50) or 0, 2),
        "accepted_p99_ms": round(percentile(latencies_ms, 0.99) or 0, 2),
    }
    if snapshot is not None:
        row["admission"] = {
            "limit": snapshot["limit"],
            "shed": snapshot["shed"],
            "sojourn_ewma_ms": snapshot["sojourn_ewma_ms"],
        }
    return row


def _overload_admission(service_s):
    """The admission policy the overload grid runs under.

    The AIMD setpoint is three service times, and the hard cap matches
    it: CPU-bound calls stretch with every concurrent spinner the GIL
    interleaves, so admitted wall time tops out near cap x service
    time — a cap of target/service IS the accepted-tail bound.
    Cost-aware shedding is off: it exists to protect cheap operations
    from expensive ones, and with a single homogeneous operation its
    "admit at-or-below-average cost" rule would admit everything up to
    the hard cap, bypassing the adaptive limit under measurement.  The
    retry-after floor is 25 service times: every shed client parked
    for a while is one fewer runnable thread stealing CPU from the
    admitted work, which is most of what keeps the accepted tail down
    on a saturated box.
    """
    return AdmissionPolicy(
        max_queue_depth=3,
        latency_target=3.0 * service_s,
        cost_aware=False,
        retry_after_min=0.05,
    )


def measure_overload_overhead(transport, clients, calls_per_client,
                              admission=None, trials=4):
    """The zero-overload fast-path check: an idle admission controller.

    Interleaved pairs (bare server, then admission-configured server;
    best of each kept) of the plain no-spin echo workload — load far
    below the limit, so every call pays exactly the admit/finished
    bookkeeping and nothing is ever shed.  *admission* is the policy
    under measurement (the grid's own policy when called from
    :func:`run_overload`).

    The estimator is a *trimmed ratio of sums*: each side's slowest
    runs are dropped (they are the ones a scheduler hiccup landed on)
    and the ratio is taken over the summed remainder.  A best-of-one
    ratio would divide two single noisy samples — the overhead being
    resolved (~1.5us per ~25us call) is smaller than this box's
    run-to-run swing, so only trimmed averaging over interleaved pairs
    separates the policy's cost from the machine's mood.
    """
    bare_runs = []
    admitted_runs = []
    for _ in range(trials):
        bare_runs.append(
            _run_once(transport, "text2", "exclusive", clients,
                      calls_per_client, 64, 0)
        )
        admitted_runs.append(_run_once(
            transport, "text2", "exclusive", clients, calls_per_client,
            64, 0,
            server_kwargs={
                "admission": admission or AdmissionPolicy(),
            },
        ))
    keep = max(1, (trials * 5) // 8)
    bare_kept = sum(sorted(bare_runs)[:keep])
    admitted_kept = sum(sorted(admitted_runs)[:keep])
    total = clients * calls_per_client * keep
    return {
        "clients": clients,
        "method": (f"interleaved pairs, trimmed ratio of sums "
                   f"(fastest {keep} of {trials} per side)"),
        "bare_calls_per_sec": round(total / bare_kept, 1),
        "admission_idle_calls_per_sec": round(total / admitted_kept, 1),
        "admission_overhead_pct": round(
            (admitted_kept / bare_kept - 1.0) * 100, 2
        ),
    }


def run_overload(transport="inproc", base_clients=2, loads=OVERLOAD_LOADS,
                 service_ms=2.0, deadline_ms=30.0, warmup_s=0.5,
                 measure_s=2.0, claim_clients=8, calls_per_client=300,
                 trials=4):
    """The overload measurement document (``BENCH_overload.json``).

    For each load multiple × shed on/off: goodput (successful calls per
    second), accepted-call p50/p99 and the shed/failure rates of a
    closed-loop CPU-bound workload.  The claim block compares the
    shed-on overloaded cell against the shed-on baseline cell — graceful
    degradation means goodput holds and accepted latency stays bounded
    while offered load grows 16x — and measures what an *idle* admission
    controller costs on the fast path.
    """
    service_s = service_ms / 1e3
    deadline_s = deadline_ms / 1e3
    # The fast-path overhead claim runs FIRST: the saturation grid
    # leaves the box hot (scheduler debt, frequency throttling), and a
    # one-percent-scale ratio measured in that hangover reads as pure
    # noise.  The claim's policy keeps the grid's cost-blind
    # configuration but with the default depth headroom — "zero
    # overload" means nothing is ever shed, and the per-call
    # admit/finished cost does not depend on how far away the cap is.
    claim = measure_overload_overhead(
        transport, claim_clients, calls_per_client,
        admission=AdmissionPolicy(latency_target=3.0 * service_s,
                                  cost_aware=False),
        trials=max(trials, 8),
    )
    results = []
    for shed in (True, False):
        for load in loads:
            admission = _overload_admission(service_s) if shed else None
            row = _run_overload_once(
                transport, base_clients * load, service_s, deadline_s,
                warmup_s, measure_s, admission,
            )
            row["load_x"] = load
            results.append(row)
            # Let the run's thread churn drain before the next cell so
            # each cell starts from comparable scheduler conditions.
            time.sleep(0.25)
    by_cell = {(row["shed"], row["load_x"]): row for row in results}
    base = by_cell[(True, min(loads))]
    peak = by_cell[(True, max(loads))]
    claim.update({
        "clients_base": base["clients"],
        "clients_overload": peak["clients"],
        "goodput_base_calls_per_sec": base["goodput_calls_per_sec"],
        "goodput_overload_calls_per_sec": peak["goodput_calls_per_sec"],
        "goodput_retention_pct": round(
            100.0 * peak["goodput_calls_per_sec"]
            / max(base["goodput_calls_per_sec"], 1e-9), 1
        ),
        "accepted_p99_base_ms": base["accepted_p99_ms"],
        "accepted_p99_overload_ms": peak["accepted_p99_ms"],
        "accepted_p99_blowup_x": round(
            peak["accepted_p99_ms"] / max(base["accepted_p99_ms"], 1e-9), 2
        ),
    })
    return {
        "benchmark": "rpc_overload",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "base_clients": base_clients,
            "loads": list(loads),
            "service_ms": service_ms,
            "deadline_ms": deadline_ms,
            "warmup_s": warmup_s,
            "measure_s": measure_s,
            "claim_clients": claim_clients,
            "claim_calls_per_client": calls_per_client,
            "claim_trials": max(trials, 8),
            "admission": {
                "max_queue_depth": 3,
                "latency_target_s": 3.0 * service_s,
                "cost_aware": False,
                "retry_after_min_s": 0.05,
            },
        },
        "results": results,
        "claim": claim,
    }


# ---------------------------------------------------------------------------
# Wire-cost suite: bytes/call and calls/s through the zero-copy emitter
# ---------------------------------------------------------------------------

#: (protocol, mode) pairs the wire-cost suite measures: each protocol
#: in the mode it is fastest in, so the numbers compare emission cost,
#: not connection policy.
WIRE_CONFIGURATIONS = (
    ("text", "exclusive"),
    ("text2", "multiplexed"),
    ("giop", "multiplexed"),
)


def _frame_cost_call(protocol_name):
    """The canonical bench call (echo of a short token) for one
    protocol, shaped like the throughput suite's traffic."""
    from repro.heidirmi.call import Call
    from repro.heidirmi.protocol import get_protocol

    protocol = get_protocol(protocol_name)
    call = Call("@tcp:127.0.0.1:9999#7#IDL:Bench/Echo:1.0", "echo",
                marshaller=protocol.new_marshaller(),
                request_id=7 if protocol_name != "text" else None)
    call.put_string("c0")
    return call


def _frame_cost_reply(protocol_name):
    from repro.heidirmi.call import Reply, STATUS_OK
    from repro.heidirmi.protocol import get_protocol

    protocol = get_protocol(protocol_name)
    reply = Reply(status=STATUS_OK, repo_id="",
                  marshaller=protocol.new_marshaller(), request_id=7)
    reply.put_string("c0")
    return reply


def measure_frame_costs():
    """Bytes on the wire — and bytes *copied* — per canonical call.

    Sans-I/O: frames are emitted straight from the wire machines.  Each
    protocol is emitted twice with fresh same-shape calls so the repeat
    column shows what the zero-copy emitter actually renders once the
    memoized tails / interned frames are warm
    (``BufferPlan.copied_bytes``).
    """
    from repro.wire import machine_for

    costs = []
    for protocol, _mode in WIRE_CONFIGURATIONS:
        client = machine_for(protocol, "client")
        server = machine_for(protocol, "server")
        first = client.emit_request(_frame_cost_call(protocol))
        first_copied = getattr(first, "copied_bytes", len(first))
        repeat = client.emit_request(_frame_cost_call(protocol))
        repeat_copied = getattr(repeat, "copied_bytes", len(repeat))
        reply = server.emit_reply(_frame_cost_reply(protocol))
        costs.append({
            "protocol": protocol,
            "request_bytes": len(repeat),
            "reply_bytes": len(reply),
            "round_trip_bytes": len(repeat) + len(reply),
            "first_request_copied_bytes": first_copied,
            "repeat_request_copied_bytes": repeat_copied,
        })
    return costs


def run_wire_cost(transport="inproc", client_counts=(1, 16, 256),
                  calls_total=3200, window=64, pipeline_workers=0,
                  trials=3, pre_refactor=None):
    """The wire-cost document: frame costs plus calls/s per protocol.

    *calls_total* is split across the callers of each cell so every
    client count moves the same number of messages.  *pre_refactor*
    optionally embeds the recorded bytes-concatenation throughput
    (GIOP multiplexed, 16 callers) that the zero-copy speedup claim is
    stated against; the compare gate re-checks it on fresh runs.
    """
    results = []
    for clients in client_counts:
        calls_per_client = max(1, calls_total // clients)
        for protocol, mode in WIRE_CONFIGURATIONS:
            results.append(measure(
                transport, protocol, mode, clients, calls_per_client,
                window=window, pipeline_workers=pipeline_workers,
                trials=trials,
            ))
    claim_clients = 16 if 16 in client_counts else max(client_counts)
    claim = {
        "clients": claim_clients,
        "rates": {
            f"{protocol}_{mode}_calls_per_sec": next(
                row["calls_per_sec"] for row in results
                if row["protocol"] == protocol and row["mode"] == mode
                and row["clients"] == claim_clients
            )
            for protocol, mode in WIRE_CONFIGURATIONS
        },
    }
    if pre_refactor is not None:
        giop_rate = claim["rates"]["giop_multiplexed_calls_per_sec"]
        claim["pre_refactor"] = dict(
            pre_refactor,
            zero_copy_speedup=round(
                giop_rate / pre_refactor["giop_multiplexed_calls_per_sec"],
                2,
            ),
        )
    return {
        "benchmark": "wire_cost",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "params": {
            "transport": transport,
            "client_counts": list(client_counts),
            "calls_total": calls_total,
            "window": window,
            "pipeline_workers": pipeline_workers,
            "trials": trials,
        },
        "frame_costs": measure_frame_costs(),
        "results": results,
        "claim": claim,
    }


def write_spans(spans, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
    return path


def write_document(document, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""F3 — Fig. 3: the paper's A.idl → generated HeidiRMI C++ header.

Regenerates the figure's right-hand side from its left-hand side through
the full template pipeline and times the complete compilation.
"""

from repro.compiler import Pipeline
from repro.idl import parse
from repro.mappings import get_pack

from benchmarks.conftest import PAPER_IDL, write_artifact

#: Lines of the paper's Fig. 3 generated header that must appear verbatim.
FIG3_LINES = [
    "enum HdStatus { Start, Stop };",
    "typedef HdList<HdS> HdSSequence;",
    "typedef HdListIterator<HdS> HdSSequenceIter;",
    "  virtual void f(HdA*) = 0;",
    "  virtual void g(HdS*) = 0;",
    "  virtual void p(long l = 0) = 0;",
    "  virtual void q(HdStatus s = Start) = 0;",
    "  virtual void s(XBool b = XTrue) = 0;",
    "  virtual void t(HdSSequence*) = 0;",
    "  virtual HdStatus GetButton() = 0;",
    "  virtual ~HdA() { }",
]


def generate_header():
    spec = parse(PAPER_IDL, filename="A.idl")
    return get_pack("heidi_cpp").generate(spec).files()["A.hh"]


def test_every_fig3_line_regenerated():
    header = generate_header()
    for line in FIG3_LINES:
        assert line in header, line


def test_repository_id_comments_present():
    header = generate_header()
    for repo_id in ("IDL:Heidi/Status:1.0", "IDL:Heidi/SSequence:1.0",
                    "IDL:Heidi/A:1.0"):
        assert f"// {repo_id}" in header


def test_method_order_groups_attribute_last():
    """The EST grouping puts GetButton after all six methods even though
    the IDL declares `button` between q and s."""
    header = generate_header()
    positions = [header.index(f" {name}(") for name in
                 ("f", "g", "p", "q", "s", "t")]
    assert positions == sorted(positions)
    assert header.index("GetButton") > max(positions)


def test_full_pipeline_bench(benchmark):
    """Time the complete IDL→header compilation (all stages)."""
    pipeline = Pipeline("heidi_cpp")

    def run():
        return pipeline.run(PAPER_IDL, filename="A.idl").files["A.hh"]

    header = benchmark(run)
    write_artifact("fig3_generated_header.hh", header)
    assert "class HdA : virtual public HdS" in header

"""T1 — Table 1: IDL→C++ type mappings, prescribed vs alternate.

Regenerates the paper's Table 1 rows (and the full primitive table) from
the live mapping packs, so the table is derived from the same code that
generates headers, not hand-copied.
"""

from repro.idl import parse
from repro.mappings import get_pack

from benchmarks.conftest import PAPER_IDL, write_artifact

#: The three rows the paper prints.
PAPER_ROWS = ["long", "boolean", "float"]


def regenerate_table1():
    corba = get_pack("corba_cpp").type_table
    heidi = get_pack("heidi_cpp").type_table
    lines = [
        f"{'IDL Type':22s} {'Prescribed C++ Type':24s} Alternate C++ Mapping",
    ]
    for idl_type in sorted(set(corba) | set(heidi)):
        lines.append(
            f"{idl_type:22s} {corba.get(idl_type, '-'):24s} "
            f"{heidi.get(idl_type, '-')}"
        )
    return "\n".join(lines) + "\n"


def test_table1_rows_match_paper():
    corba = get_pack("corba_cpp").type_table
    heidi = get_pack("heidi_cpp").type_table
    # The exact cells of the paper's Table 1.
    assert corba["long"] == "CORBA::Long" and heidi["long"] == "long"
    assert corba["boolean"] == "CORBA::Boolean" and heidi["boolean"] == "XBool"
    assert corba["float"] == "CORBA::Float" and heidi["float"] == "float"


def test_table1_types_appear_in_generated_code():
    """The table is not just configuration: the generated headers use
    exactly these spellings."""
    spec = parse(
        "interface T { void f(in long a, in boolean b, in float c); };"
    )
    corba_header = get_pack("corba_cpp").generate(spec).files()["generated.hh"]
    heidi_header = get_pack("heidi_cpp").generate(spec).files()["generated.hh"]
    assert "CORBA::Long a" in corba_header
    assert "CORBA::Boolean b" in corba_header
    assert "CORBA::Float c" in corba_header
    # The Heidi mapping omits parameter names when there is no default
    # (exactly as Fig. 3 does: `virtual void f(HdA*) = 0;`).
    assert "virtual void f(long, XBool, float) = 0;" in heidi_header


def test_regenerate_table1_artifact(benchmark):
    table = benchmark(regenerate_table1)
    write_artifact("table1_type_mappings.txt", table)
    assert "CORBA::Long" in table and "XBool" in table

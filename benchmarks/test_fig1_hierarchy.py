"""F1 — Fig. 1: the CORBA stub/skeleton inheritance hierarchy.

Regenerates the class graph of the prescribed mapping and checks the
figure's relations: stub and skeleton classes *inherit* from the
generated interface class; the implementation either inherits the
skeleton or bridges through the tie.
"""

from repro.idl import parse
from repro.mappings import get_pack
from repro.mappings.corba_cpp import class_hierarchy

from benchmarks.conftest import write_artifact

IDL = "interface A { void f(); };"


def generate_hierarchy():
    files = get_pack("corba_cpp").generate(parse(IDL, filename="A.idl")).files()
    edges = {}
    for text in files.values():
        edges.update(class_hierarchy(text))
    return edges


def render(edges):
    lines = ["Fig. 1 class graph (CORBA-prescribed mapping)"]
    for cls in sorted(edges):
        for base in edges[cls]:
            lines.append(f"  {cls} --inherits--> {base}")
    return "\n".join(lines) + "\n"


def test_interface_rooted_at_corba_object():
    edges = generate_hierarchy()
    assert "CORBA::Object" in edges["A"]


def test_stub_inherits_interface():
    edges = generate_hierarchy()
    assert "A" in edges["A_stub"]


def test_skeleton_inherits_interface_and_servant_base():
    edges = generate_hierarchy()
    bases = edges["POA_A"]
    assert "A" in bases
    assert any("ServantBase" in base for base in bases)


def test_tie_bridges_unrelated_implementation():
    edges = generate_hierarchy()
    assert "POA_A" in edges["POA_A_tie"]


def test_implementation_path_is_inheritance():
    """The key contrast with Fig. 2: in this mapping the implementation
    must join the generated hierarchy (POA_A) or use the tie."""
    files = get_pack("corba_cpp").generate(parse(IDL, filename="A.idl")).files()
    poa = files["A_poa.hh"]
    assert "class POA_A :" in poa
    assert "template<class T>" in poa  # the tie escape hatch


def test_regenerate_fig1_artifact(benchmark):
    edges = benchmark(generate_hierarchy)
    write_artifact("fig1_hierarchy.txt", render(edges))
    assert edges

"""C5 — §4.2 claim: "it is possible to write templates for stubs and
skeletons that only use portions of the ORB library to minimize the ORB
footprint as may be required for small embedded devices."

Measured as the static import closure of the runtime: the text-only ORB
versus the ORB plus the GIOP substrate, and the whole library versus the
minimal subset a generated text-protocol stub needs.
"""

from repro.footprint import count_package_lines, import_closure, subset_report

from benchmarks.conftest import write_artifact


def footprints():
    minimal = subset_report(["repro.heidirmi.orb"])
    full = subset_report(["repro.heidirmi.orb", "repro.giop.iiop"])
    return minimal, full


def test_minimal_orb_excludes_giop():
    closure = import_closure(["repro.heidirmi.orb"])
    assert not any(module.startswith("repro.giop") for module in closure)


def test_footprint_grows_with_giop():
    minimal, full = footprints()
    assert full["<total>"] > minimal["<total>"]
    # The GIOP substrate is a substantial fraction, as a real IIOP
    # engine is for a minimal ORB.
    assert full["<total>"] - minimal["<total>"] > 200


def test_client_only_subset_smaller_than_full_orb():
    """A pure client needs no acceptor/skeleton machinery — a template
    that only emits stubs pulls in less."""
    client_only = subset_report(
        ["repro.heidirmi.stub", "repro.heidirmi.connection",
         "repro.heidirmi.protocol"]
    )
    server_full = subset_report(["repro.heidirmi.orb"])
    assert client_only["<total>"] < server_full["<total>"]


def test_runtime_is_fraction_of_whole_library():
    import os

    import repro

    minimal, _ = footprints()
    whole, _per_file = count_package_lines(os.path.dirname(repro.__file__))
    assert minimal["<total>"] < whole.code / 2


def test_c5_artifact(benchmark):
    minimal, full = benchmark(footprints)
    lines = ["C5 — ORB footprint (code lines in static import closure)"]
    lines.append(f"  text-only ORB       : {minimal['<total>']:5d} LoC, "
                 f"{len(minimal) - 1} modules")
    lines.append(f"  ORB + GIOP substrate: {full['<total>']:5d} LoC, "
                 f"{len(full) - 1} modules")
    lines.append("  modules in the minimal closure:")
    for module in sorted(minimal):
        if module != "<total>":
            lines.append(f"    {module:40s} {minimal[module]:5d}")
    write_artifact("claim_c5_footprint.txt", "\n".join(lines) + "\n")

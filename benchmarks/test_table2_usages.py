"""T2 — Table 2: CORBA-prescribed vs legacy C++ usages.

The paper's Table 2 contrasts ``A_var a; A_ptr p; void f(A_ptr& r);``
with the legacy ``A a; A* p; void f(A& r);``.  Regenerated here from the
declarators both packs actually emit for the same interface.
"""

from repro.idl import parse
from repro.mappings import get_pack

from benchmarks.conftest import write_artifact

IDL = "interface A { void f(in A r); };"


def regenerate_table2():
    corba_header = get_pack("corba_cpp").generate(parse(IDL)).files()["generated.hh"]
    heidi_header = get_pack("heidi_cpp").generate(parse(IDL)).files()["generated.hh"]
    rows = [
        ("CORBA-prescribed", "Legacy (HeidiRMI mapping)"),
        ("A_var a;", "HdA* a;          // plain pointer"),
        ("A_ptr p;", "HdA* p;"),
        ("void f(A_ptr& r);", "void f(HdA* r);"),
    ]
    lines = [f"{left:24s} {right}" for left, right in rows]
    lines.append("")
    lines.append("--- corba_cpp declarators found in generated header ---")
    lines.extend(
        line for line in corba_header.splitlines()
        if "_ptr" in line or "_var" in line
    )
    lines.append("--- heidi_cpp usages found in generated header ---")
    lines.extend(
        line for line in heidi_header.splitlines() if "HdA*" in line
    )
    return "\n".join(lines) + "\n"


def test_prescribed_mapping_requires_corba_declarators():
    header = get_pack("corba_cpp").generate(parse(IDL)).files()["generated.hh"]
    assert "typedef A* A_ptr;" in header
    assert "A_var" in header
    assert "virtual void f(A_ptr r) = 0;" in header
    # The legacy usages are NOT expressible: no plain `A*` parameter.
    assert "f(A* r)" not in header


def test_custom_mapping_allows_legacy_usages():
    header = get_pack("heidi_cpp").generate(parse(IDL)).files()["generated.hh"]
    assert "virtual void f(HdA*) = 0;" in header
    assert "_ptr" not in header
    assert "_var" not in header


def test_regenerate_table2_artifact(benchmark):
    table = benchmark(regenerate_table2)
    write_artifact("table2_usages.txt", table)
    assert "A_ptr" in table and "HdA*" in table

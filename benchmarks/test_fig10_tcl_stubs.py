"""F10 — Fig. 10: sample Tcl stub and skeleton code.

Regenerates the Receiver stub/skeleton of the figure and (when tclsh is
available) proves it loads and runs against the Python ORB.
"""

import shutil
import subprocess

import pytest

from repro.idl import parse
from repro.mappings import get_pack

from benchmarks.conftest import write_artifact

RECEIVER_IDL = "interface Receiver { void print(in string text); };"

#: Fig. 10 fragments that must appear verbatim in the generated code.
FIG10_FRAGMENTS = [
    'BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"',
    "class ReceiverStub {",
    "inherit Stub",
    "Stub::constructor $ior $connector",
    'set c [$pb_connector_ getRequestCall $this "print" 0]',
    "$c insertString $text",
    "$c send",
    "# void return",
    "$c release",
    "class ReceiverSkel {",
    "inherit Skel",
    "Skel::constructor $implObj",
    "set text [$c extractString]",
    "$pb_obj_ print $text",
]


def generate_receiver():
    spec = parse(RECEIVER_IDL, filename="Receiver.idl")
    return get_pack("tcl_orb").generate(spec).files()


def test_every_fig10_fragment_regenerated():
    text = generate_receiver()["Receiver.tcl"]
    for fragment in FIG10_FRAGMENTS:
        assert fragment in text, fragment


def test_include_guard_shape():
    text = generate_receiver()["Receiver.tcl"]
    first, second = text.splitlines()[:2]
    assert first == 'if {[info vars {IDL:Receiver:1.0}] ne ""} return'
    assert second == "set {IDL:Receiver:1.0} 1"


def test_fig10_artifact():
    write_artifact("fig10_receiver.tcl", generate_receiver()["Receiver.tcl"])


@pytest.mark.skipif(shutil.which("tclsh") is None, reason="tclsh not installed")
def test_generated_code_runs_against_python_orb(tmp_path):
    from repro.heidirmi import HdSkel, Orb
    from repro.heidirmi.serialize import GLOBAL_TYPES

    class Receiver_skel(HdSkel):
        _hd_type_id_ = "IDL:Receiver:1.0"
        _hd_operations_ = (("print", "_op_print"),)

        def _op_print(self, call, reply):
            self.impl.lines.append(call.get_string())

    GLOBAL_TYPES.register_interface("IDL:Receiver:1.0",
                                    skeleton_class=Receiver_skel)

    class Impl:
        def __init__(self):
            self.lines = []

    files = generate_receiver()
    for name, text in files.items():
        (tmp_path / name).write_text(text)

    server = Orb(transport="tcp", protocol="text").start()
    impl = Impl()
    ref = server.register(impl, type_id="IDL:Receiver:1.0")
    script = (
        f'source "{tmp_path}/orb.tcl"\n'
        f'source "{tmp_path}/Receiver.tcl"\n'
        f'set stub [createStub "{ref.stringify()}"]\n'
        '$stub print "fig10 works"\n'
        "puts DONE\n"
    )
    result = subprocess.run(["tclsh"], input=script, capture_output=True,
                            text=True, timeout=30)
    server.stop()
    assert "DONE" in result.stdout, result.stderr
    assert impl.lines == ["fig10 works"]


def test_tcl_generation_bench(benchmark):
    files = benchmark(generate_receiver)
    assert "Receiver.tcl" in files

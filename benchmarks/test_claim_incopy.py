"""C8 — §3.1: pass-by-value (`incopy`) versus pass-by-reference cost.

A reference parameter is cheap to send but every subsequent method call
on it is a remote round-trip; an incopy parameter costs its state on the
wire once, then every access is local.  Expected shape: by-reference
wins when the receiver barely touches the object; incopy wins once the
receiver reads it more than a handful of times (the crossover the
extension exists for).
"""

import time

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

from benchmarks.conftest import write_artifact

IDL = """\
module Val {
  interface Bag {
    long size();
    string item(in long index);
  };
  interface Worker {
    long sum_sizes(in Bag bag, in long reads);
    long sum_sizes_copy(incopy Bag bag, in long reads);
  };
};
"""


class BagImpl:
    """Serializable bag: usable by reference and by value."""

    def __init__(self, items=()):
        self.items = list(items)

    _hd_type_id_ = "IDL:Val/Bag:1.0"

    def size(self):
        return len(self.items)

    def item(self, index):
        return self.items[index]

    def _hd_type_id(self):
        return "IDL:Val/BagValue:1.0"

    def _hd_marshal(self, call, orb):
        call.put_ulong(len(self.items))
        for item in self.items:
            call.put_string(item)

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        return cls(call.get_string() for _ in range(call.get_ulong()))


GLOBAL_TYPES.register_value("IDL:Val/BagValue:1.0", BagImpl)


class WorkerImpl:
    _hd_type_id_ = "IDL:Val/Worker:1.0"

    def sum_sizes(self, bag, reads):
        # By reference: every size() is a remote call back to the client.
        return sum(bag.size() for _ in range(reads))

    def sum_sizes_copy(self, bag, reads):
        # By value: the copy is local.
        return sum(bag.size() for _ in range(reads))


@pytest.fixture(scope="module")
def live():
    generate_module(parse(IDL, filename="Val.idl"))
    server = Orb(transport="tcp", protocol="text").start()
    client = Orb(transport="tcp", protocol="text").start()  # serves callbacks
    worker = client.resolve(server.register(WorkerImpl()).stringify())
    yield worker
    client.stop()
    server.stop()


def timed(func, rounds=5):
    start = time.perf_counter()
    for _ in range(rounds):
        func()
    return (time.perf_counter() - start) / rounds


class TestSemantics:
    def test_both_paths_compute_the_same_answer(self, live):
        bag = BagImpl(["a", "b", "c"])
        assert live.sum_sizes(bag, 4) == 12
        assert live.sum_sizes_copy(bag, 4) == 12

    def test_incopy_with_zero_reads(self, live):
        assert live.sum_sizes_copy(BagImpl([]), 0) == 0


class TestShape:
    def test_incopy_wins_when_receiver_reads_repeatedly(self, live):
        """Each by-reference read is a remote round-trip; the copy is
        read locally — with 30 reads the copy must win clearly."""
        bag = BagImpl([f"item{i}" for i in range(10)])
        by_ref = timed(lambda: live.sum_sizes(bag, 30))
        by_value = timed(lambda: live.sum_sizes_copy(bag, 30))
        assert by_ref > by_value * 2, (by_ref, by_value)

    def test_reference_cheaper_to_transmit_for_large_untouched_objects(self, live):
        """With zero reads, sending a reference to a big object beats
        copying all of its state across."""
        big = BagImpl(["x" * 200 for _ in range(500)])
        by_ref = timed(lambda: live.sum_sizes(big, 0), rounds=10)
        by_value = timed(lambda: live.sum_sizes_copy(big, 0), rounds=10)
        assert by_value > by_ref, (by_value, by_ref)


def test_by_reference_bench(benchmark, live):
    bag = BagImpl(["a", "b"])
    benchmark(lambda: live.sum_sizes(bag, 10))


def test_incopy_bench(benchmark, live):
    bag = BagImpl(["a", "b"])
    benchmark(lambda: live.sum_sizes_copy(bag, 10))


def test_c8_artifact(live):
    lines = ["C8 — incopy (pass-by-value) vs by-reference (seconds/call)"]
    lines.append(f"  {'reads':>6s} {'by-ref':>12s} {'incopy':>12s}")
    bag = BagImpl([f"item{i}" for i in range(10)])
    for reads in (0, 5, 30):
        by_ref = timed(lambda: live.sum_sizes(bag, reads))
        by_value = timed(lambda: live.sum_sizes_copy(bag, reads))
        lines.append(f"  {reads:>6d} {by_ref:>12.3e} {by_value:>12.3e}")
    lines.append("  expected shape: by-ref wins at 0 reads for big state;")
    lines.append("  incopy wins as the receiver's read count grows.")
    write_artifact("claim_c8_incopy.txt", "\n".join(lines) + "\n")

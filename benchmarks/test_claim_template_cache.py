"""C7 — §4.1 claim: "the first step of the code-generation stage need
only be performed once for a particular code-generation template."

Measured as: generation with the compiled-template cache (step 1
amortized) versus recompiling the template on every run.  Expected
shape: cached generation strictly faster; the cache hit itself is
orders of magnitude cheaper than compilation.
"""

import time

from repro.compiler.cache import TemplateCache
from repro.est import build_est
from repro.idl import parse
from repro.templates.compiler import compile_template
from repro.templates.runtime import Runtime

from benchmarks.conftest import PAPER_IDL, write_artifact
from repro.mappings import get_pack


def template_source():
    return get_pack("heidi_cpp").load_template_source("interface_header.tmpl")


def paper_est():
    return build_est(parse(PAPER_IDL, filename="A.idl"))


def generate_with(compiled, est):
    runtime = Runtime(est, maps=get_pack("heidi_cpp").maps.child(),
                      variables={"basename": "A", "idlFile": "A.idl"})
    compiled.run(runtime)
    return runtime.sink.files()


def test_cache_amortizes_step1():
    source = template_source()
    cache = TemplateCache()
    cache.get(source, name="t")
    start = time.perf_counter()
    for _ in range(50):
        cache.get(source, name="t")
    hit_time = (time.perf_counter() - start) / 50
    start = time.perf_counter()
    for _ in range(5):
        compile_template(source, name="t")
    compile_time = (time.perf_counter() - start) / 5
    assert hit_time * 10 < compile_time, (hit_time, compile_time)


def test_cached_generation_output_identical():
    source = template_source()
    est = paper_est()
    cache = TemplateCache()
    first = generate_with(cache.get(source, name="t"), est)
    second = generate_with(cache.get(source, name="t"), est)
    assert first == second
    assert cache.stats["hits"] == 1


def test_generation_with_cache_bench(benchmark):
    source = template_source()
    est = paper_est()
    cache = TemplateCache()
    cache.get(source, name="t")  # prime

    def run():
        return generate_with(cache.get(source, name="t"), est)

    files = benchmark(run)
    assert "A.hh" in files


def test_generation_without_cache_bench(benchmark):
    source = template_source()
    est = paper_est()

    def run():
        return generate_with(compile_template(source, name="t"), est)

    files = benchmark(run)
    assert "A.hh" in files


def test_c7_artifact():
    source = template_source()
    est = paper_est()
    cache = TemplateCache()
    cache.get(source, name="t")

    def timed(func, rounds=20):
        start = time.perf_counter()
        for _ in range(rounds):
            func()
        return (time.perf_counter() - start) / rounds

    with_cache = timed(lambda: generate_with(cache.get(source, name="t"), est))
    without = timed(
        lambda: generate_with(compile_template(source, name="t"), est)
    )
    lines = [
        "C7 — step-1 amortization (seconds per generation)",
        f"  compiled-template cache: {with_cache:.3e}",
        f"  recompile every run    : {without:.3e}",
        f"  speedup                : {without / with_cache:.1f}x",
        "  expected shape: step 1 runs once; cached generation wins",
    ]
    write_artifact("claim_c7_template_cache.txt", "\n".join(lines) + "\n")

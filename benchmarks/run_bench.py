"""Command-line entry point for the RPC throughput benchmark.

Runs the full protocol × connection-mode matrix and writes the
deterministic JSON document (``BENCH_rpc.json`` at the repo root by
default)::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --clients 1 16 \
        --calls 200 --trials 3 --out BENCH_rpc.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from rpc_bench import run_matrix, write_document  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", default="inproc",
                        choices=("inproc", "tcp"))
    parser.add_argument("--clients", type=int, nargs="+", default=[1, 16],
                        help="concurrent caller counts to measure")
    parser.add_argument("--calls", type=int, default=200,
                        help="calls per client per configuration")
    parser.add_argument("--window", type=int, default=64,
                        help="burst size for pipelined (multiplexed) rows")
    parser.add_argument("--workers", type=int, default=0,
                        help="server pipeline workers (0 = serial loop)")
    parser.add_argument("--trials", type=int, default=3,
                        help="timed runs per configuration (best is kept)")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT, "BENCH_rpc.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    document = run_matrix(
        transport=args.transport,
        client_counts=tuple(args.clients),
        calls_per_client=args.calls,
        window=args.window,
        pipeline_workers=args.workers,
        trials=args.trials,
    )
    path = write_document(document, args.out)
    claim = document["claim"]
    print(f"wrote {path}")
    for result in document["results"]:
        print(
            f"  {result['protocol']:6s} {result['mode']:11s} "
            f"clients={result['clients']:<3d} "
            f"{result['calls_per_sec']:>10,.1f} calls/s "
            f"({result['call_style']})"
        )
    if claim.get("speedup") is not None:
        print(
            f"claim: multiplexed text2 vs exclusive text at "
            f"{claim['clients']} clients: {claim['speedup']}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point for the RPC throughput benchmark.

Runs the full protocol × connection-mode matrix and writes the
deterministic JSON document (``BENCH_rpc.json`` at the repo root by
default)::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --clients 1 16 \
        --calls 200 --trials 3 --out BENCH_rpc.json

With ``--trace`` it instead runs the traced suite — observers on both
ends, per-stage p50/p99 attribution — writing ``BENCH_obs.json`` plus
the raw spans to ``benchmarks/out/spans.jsonl``::

    PYTHONPATH=src python benchmarks/run_bench.py --trace --calls 100

With ``--faults`` it runs the resilience suite — p50/p99 latency and
success rate for idempotent retry traffic under seeded chaos plans at
0%/1%/5% fault rates, plus the zero-fault policy overhead check —
writing ``BENCH_resilience.json``::

    PYTHONPATH=src python benchmarks/run_bench.py --faults

With ``--compare BASELINE.json`` the fresh numbers are checked against
a previously recorded document: if any multiplexed text2 row lost more
than ``--tolerance`` (default 5%) throughput, the exit status is 3.
CI runs this as a regression gate for the sans-I/O refactor::

    PYTHONPATH=src python benchmarks/run_bench.py --compare BENCH_rpc.json

Combining ``--faults --compare`` turns the resilience run into a gate
instead: exit 3 if the zero-fault policy overhead exceeds
``--overhead-tolerance`` (default 10%) or any 5%-fault-rate row's
success rate drops below ``--success-floor`` (default 99%).  CI runs
this so the fused policy fast path cannot silently regress::

    PYTHONPATH=src python benchmarks/run_bench.py --faults \
        --compare BENCH_resilience.json

With ``--overload`` it runs the overload suite — goodput, accepted-call
p99 and shed rates of a CPU-bound closed-loop workload at 1x/4x/16x
offered load, with admission-controlled shedding on and off, plus the
idle-admission fast-path overhead check — writing
``BENCH_overload.json``::

    PYTHONPATH=src python benchmarks/run_bench.py --overload

Combining ``--overload --compare`` gates graceful degradation: exit 3
if 16x-load shed-on goodput falls below ``--goodput-floor`` (default
70%) of the 1x baseline, if the accepted p99 at 16x blows past
``--p99-budget`` (default 5.0) times the 1x p99, or if the idle
admission controller costs more than ``--overhead-tolerance`` (default
10%) on the fast path.  CI runs this so overload control cannot
silently stop degrading gracefully::

    PYTHONPATH=src python benchmarks/run_bench.py --overload \
        --compare BENCH_overload.json

With ``--wire-cost`` it runs the emission-cost suite — bytes per call
(and bytes *copied* per call, the zero-copy figure of merit) for each
protocol, plus calls/s for text vs text2 vs GIOP at 1/16/256
concurrent callers — writing ``BENCH_wire.json``::

    PYTHONPATH=src python benchmarks/run_bench.py --wire-cost \
        --pre-refactor-rate 18516.9

Combining ``--wire-cost --compare`` gates the zero-copy refactor: exit
3 if any multiplexed GIOP row lost more than ``--tolerance`` against
the recorded baseline, or if the claim row falls below
``--speedup-floor`` (default 1.3) times the pre-refactor rate embedded
in the baseline.  CI runs this so emission cannot quietly grow a copy::

    PYTHONPATH=src python benchmarks/run_bench.py --wire-cost \
        --compare BENCH_wire.json

Combining ``--trace --compare`` gates the flight recorder instead:
exit 3 if recorder-on throughput on the multiplexed text2 axis falls
more than ``--tolerance`` (default 5%) behind recorder-off.  CI runs
this so the wire-event tap cannot silently grow a hot-path cost::

    PYTHONPATH=src python benchmarks/run_bench.py --trace \
        --compare BENCH_obs.json
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from rpc_bench import (  # noqa: E402
    run_faults,
    run_matrix,
    run_overload,
    run_traced,
    run_wire_cost,
    write_document,
    write_spans,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", default="inproc",
                        choices=("inproc", "tcp"))
    parser.add_argument("--clients", type=int, nargs="+", default=[1, 16],
                        help="concurrent caller counts to measure")
    parser.add_argument("--calls", type=int, default=200,
                        help="calls per client per configuration")
    parser.add_argument("--window", type=int, default=64,
                        help="burst size for pipelined (multiplexed) rows")
    parser.add_argument("--workers", type=int, default=0,
                        help="server pipeline workers (0 = serial loop)")
    parser.add_argument("--trials", type=int, default=3,
                        help="timed runs per configuration (best is kept)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_rpc.json, "
                             "or BENCH_obs.json with --trace)")
    parser.add_argument("--trace", action="store_true",
                        help="run the traced suite instead: per-stage "
                             "p50/p99 to BENCH_obs.json + spans.jsonl")
    parser.add_argument("--faults", action="store_true",
                        help="run the resilience suite instead: latency "
                             "and success rate under seeded chaos plans "
                             "to BENCH_resilience.json")
    parser.add_argument("--overload", action="store_true",
                        help="run the overload suite instead: goodput "
                             "and accepted p99 at 1x/4x/16x load with "
                             "shedding on/off to BENCH_overload.json")
    parser.add_argument("--wire-cost", action="store_true",
                        help="run the wire-cost suite instead: bytes "
                             "and copied-bytes per call plus calls/s "
                             "for text/text2/giop at 1/16/256 callers "
                             "to BENCH_wire.json")
    parser.add_argument("--wire-calls", type=int, default=3200,
                        help="total calls per wire-cost cell, split "
                             "across its callers (default 3200)")
    parser.add_argument("--pre-refactor-rate", type=float, default=None,
                        help="recorded pre-zero-copy GIOP multiplexed "
                             "calls/s at 16 callers; embedded into the "
                             "wire-cost document as the speedup claim "
                             "reference")
    parser.add_argument("--speedup-floor", type=float, default=1.3,
                        help="min fresh-GIOP-vs-pre-refactor speedup "
                             "the --wire-cost --compare gate requires "
                             "when the baseline embeds a pre-refactor "
                             "rate (default 1.3, noise-discounted by "
                             "--wire-tolerance)")
    parser.add_argument("--wire-tolerance", type=float, default=0.12,
                        help="allowed fractional throughput loss for "
                             "--wire-cost --compare (default 0.12: raw "
                             "calls/s swings ~15%% between runs on one "
                             "box, while losing the zero-copy path "
                             "costs 25%%+)")
    parser.add_argument("--goodput-floor", type=float, default=70.0,
                        help="min percent of baseline goodput the 16x "
                             "shed-on cell must retain for --overload "
                             "--compare (default 70)")
    parser.add_argument("--p99-budget", type=float, default=5.0,
                        help="max accepted-p99 growth factor (16x vs 1x, "
                             "shed on) the --overload --compare gate "
                             "allows (default 5.0)")
    parser.add_argument("--fault-calls", type=int, default=300,
                        help="calls per fault-rate configuration")
    parser.add_argument("--seed", type=int, default=42,
                        help="chaos plan seed for --faults")
    parser.add_argument("--baseline", default=None,
                        help="extracted pre-resilience checkout to "
                             "measure the no-policy regression against "
                             "(git archive <rev> | tar -x -C <dir>)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="previously recorded BENCH_rpc.json; exit 3 "
                             "if multiplexed text2 throughput regressed "
                             "beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional throughput loss for "
                             "--compare (default 0.05 = 5%%)")
    parser.add_argument("--overhead-tolerance", type=float, default=10.0,
                        help="max zero-fault policy overhead percent the "
                             "--faults --compare gate allows (default 10)")
    parser.add_argument("--success-floor", type=float, default=0.99,
                        help="min success rate the --faults --compare gate "
                             "requires of 5%%-fault rows (default 0.99)")
    parser.add_argument("--spans-out",
                        default=os.path.join(REPO_ROOT, "benchmarks",
                                             "out", "spans.jsonl"),
                        help="span export path for --trace")
    args = parser.parse_args(argv)

    if args.trace:
        return _main_traced(args)
    if args.faults:
        return _main_faults(args)
    if args.overload:
        return _main_overload(args)
    if args.wire_cost:
        return _main_wire(args)

    baseline = None
    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    if args.out is None:
        if baseline is not None:
            # A gate run must not clobber the recorded baseline it is
            # gating against; park the fresh numbers next to the other
            # benchmark scratch output instead.
            args.out = os.path.join(REPO_ROOT, "benchmarks", "out",
                                    "BENCH_rpc.fresh.json")
        else:
            args.out = os.path.join(REPO_ROOT, "BENCH_rpc.json")
    document = run_matrix(
        transport=args.transport,
        client_counts=tuple(args.clients),
        calls_per_client=args.calls,
        window=args.window,
        pipeline_workers=args.workers,
        trials=args.trials,
    )
    path = write_document(document, args.out)
    claim = document["claim"]
    print(f"wrote {path}")
    for result in document["results"]:
        print(
            f"  {result['protocol']:6s} {result['mode']:11s} "
            f"clients={result['clients']:<3d} "
            f"{result['calls_per_sec']:>10,.1f} calls/s "
            f"({result['call_style']})"
        )
    if claim.get("speedup") is not None:
        print(
            f"claim: multiplexed text2 vs exclusive text at "
            f"{claim['clients']} clients: {claim['speedup']}x"
        )
    if baseline is not None:
        regressions = compare_documents(
            baseline, document, args.tolerance,
            remeasure=lambda clients: run_matrix_row(args, clients),
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 3
        print(f"compare: within {args.tolerance:.0%} of {args.compare}")
    return 0


def run_matrix_row(args, clients):
    """Re-measure one guarded (multiplexed text2) row."""
    from rpc_bench import measure

    return measure(
        args.transport, "text2", "multiplexed", clients, args.calls,
        window=args.window, pipeline_workers=args.workers,
        # Extra trials: the retry exists to separate noise from a real
        # regression, and best-of-more discriminates better.
        trials=args.trials + 2,
    )


#: Extra best-of-trials rounds a failing guarded row gets before the
#: gate declares a regression.  Throughput on a loaded 1-CPU box swings
#: well past the tolerance between back-to-back runs of identical code;
#: a true regression fails every retry, noise does not.
COMPARE_RETRIES = 2


def compare_documents(baseline, document, tolerance, remeasure=None):
    """Regression report for the guarded rows (multiplexed text2).

    The multiplexed text2 path is the headline claim of the pipelining
    work; every (clients,) row of it is held to *tolerance*.  A row
    under the floor is re-measured up to :data:`COMPARE_RETRIES` times
    via *remeasure(clients)* and passes if any round clears it.
    Returns a list of human-readable regression lines, empty when the
    gate passes.
    """

    def guarded_rows(doc):
        return {
            row["clients"]: row["calls_per_sec"]
            for row in doc.get("results", ())
            if row["protocol"] == "text2" and row["mode"] == "multiplexed"
        }

    old_rows = guarded_rows(baseline)
    new_rows = guarded_rows(document)
    regressions = []
    for clients, old_rate in sorted(old_rows.items()):
        new_rate = new_rows.get(clients)
        if new_rate is None:
            regressions.append(
                f"multiplexed text2 @{clients} clients: row missing "
                f"from the fresh run (baseline {old_rate:,.1f} calls/s)"
            )
            continue
        floor = old_rate * (1.0 - tolerance)
        retries = COMPARE_RETRIES if remeasure is not None else 0
        for attempt in range(retries):
            if new_rate >= floor:
                break
            print(
                f"compare: multiplexed text2 @{clients} clients below "
                f"floor ({new_rate:,.1f} < {floor:,.1f} calls/s), "
                f"re-measuring ({attempt + 1}/{retries})"
            )
            new_rate = max(new_rate, remeasure(clients)["calls_per_sec"])
        if new_rate < floor:
            loss = (old_rate - new_rate) / old_rate
            regressions.append(
                f"multiplexed text2 @{clients} clients: "
                f"{new_rate:,.1f} calls/s vs baseline {old_rate:,.1f} "
                f"(-{loss:.1%}, tolerance {tolerance:.0%})"
            )
    if not old_rows:
        regressions.append(
            "baseline document has no multiplexed text2 rows to guard"
        )
    return regressions


def _main_traced(args):
    # The recorder-cost claim runs its own fixed axis (8 multiplexed
    # text2 clients, best-of-N interleaved pairs): per-frame recording
    # costs a microsecond or two against ~40us calls, so the gate needs
    # enough trials that scheduler noise (2x swings on a loaded 1-CPU
    # box) cannot masquerade as a regression.
    claim_trials = max(args.trials, 6)
    document, spans = run_traced(
        transport=args.transport,
        calls=args.calls,
        pipeline_workers=args.workers,
        trials=claim_trials,
    )
    out = args.out
    if out is None:
        if args.compare is not None:
            # The gate must not clobber the recorded document it gates
            # against; park the fresh numbers with the bench scratch.
            out = os.path.join(REPO_ROOT, "benchmarks", "out",
                               "BENCH_obs.fresh.json")
        else:
            out = os.path.join(REPO_ROOT, "BENCH_obs.json")
    path = write_document(document, out)
    spans_path = write_spans(spans, args.spans_out)
    print(f"wrote {path}")
    print(f"wrote {spans_path} ({len(spans)} spans)")
    for result in document["results"]:
        client = result["client"]
        stage_bits = " ".join(
            f"{name}={quantiles['p50_us']:.0f}us"
            for name, quantiles in client["stages"].items()
        )
        print(
            f"  {result['protocol']:6s} {result['mode']:11s} "
            f"linked={result['linked_spans']}/{result['calls']} "
            f"client p50={client['p50_us']:.0f}us "
            f"p99={client['p99_us']:.0f}us [{stage_bits}]"
        )
    claim = document["claim"]
    print(
        f"claim: flight recorder costs "
        f"{claim['recorder_overhead_pct']:+.2f}% on multiplexed text2 "
        f"({claim['recorder_on_calls_per_sec']:,.1f} vs "
        f"{claim['recorder_off_calls_per_sec']:,.1f} calls/s, "
        f"{claim['clients']} clients)"
    )
    if args.compare is not None:
        from rpc_bench import measure_flight_claim

        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                recorded = json.load(handle)
        except FileNotFoundError:
            recorded = None
        budget_pct = args.tolerance * 100.0
        regressions = compare_traced(
            claim, budget_pct,
            remeasure=lambda: measure_flight_claim(
                args.transport, claim["clients"],
                claim["calls_per_client"],
                pipeline_workers=args.workers,
                # Extra trials: best-of-more separates scheduler noise
                # from a real recorder hot-path regression.
                trials=claim_trials + 2,
            ),
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 3
        recorded_claim = (recorded or {}).get("claim", {})
        recorded_overhead = recorded_claim.get("recorder_overhead_pct")
        if recorded_overhead is not None:
            print(
                f"compare: recorder overhead "
                f"{claim['recorder_overhead_pct']:+.2f}% "
                f"(recorded {recorded_overhead:+.2f}%), "
                f"budget {budget_pct:.0f}%"
            )
        else:
            print(
                f"compare: recorder overhead "
                f"{claim['recorder_overhead_pct']:+.2f}% within the "
                f"{budget_pct:.0f}% budget"
            )
    return 0


#: Extra claim-only rounds a failing traced gate gets.  The recorder
#: overhead is a ratio of interleaved pairs, so steadier than raw
#: throughput, but one skewed side on a loaded box still swings it; a
#: true hot-path regression fails every retry.
TRACED_COMPARE_RETRIES = 2


def compare_traced(claim, budget_pct, remeasure=None):
    """Regression report for the flight-recorder overhead claim.

    One invariant is gated: recorder-on throughput on the multiplexed
    text2 axis must stay within *budget_pct* percent of recorder-off.
    A failing claim is re-measured (claim only — the per-stage results
    are descriptive, not gated) up to :data:`TRACED_COMPARE_RETRIES`
    times via *remeasure()* and passes if any round clears the budget.
    Returns human-readable regression lines, empty when the gate holds.
    """

    def violations(fresh):
        overhead = fresh["recorder_overhead_pct"]
        if overhead > budget_pct:
            return [
                f"flight recorder overhead {overhead:+.2f}% exceeds "
                f"the {budget_pct:.0f}% budget "
                f"({fresh['recorder_on_calls_per_sec']:,.1f} vs "
                f"{fresh['recorder_off_calls_per_sec']:,.1f} calls/s)"
            ]
        return []

    regressions = violations(claim)
    retries = TRACED_COMPARE_RETRIES if remeasure is not None else 0
    for attempt in range(retries):
        if not regressions:
            break
        print(
            f"compare: traced gate failing ({'; '.join(regressions)}), "
            f"re-measuring ({attempt + 1}/{retries})"
        )
        regressions = violations(remeasure())
    return regressions


def _main_faults(args):
    document = run_faults(
        transport=args.transport,
        calls=args.fault_calls,
        seed=args.seed,
        trials=args.trials,
        baseline_root=args.baseline,
    )
    out = args.out
    if out is None:
        if args.compare is not None:
            # The gate must not clobber the recorded document it gates
            # against; park the fresh numbers with the bench scratch.
            out = os.path.join(REPO_ROOT, "benchmarks", "out",
                               "BENCH_resilience.fresh.json")
        else:
            out = os.path.join(REPO_ROOT, "BENCH_resilience.json")
    path = write_document(document, out)
    print(f"wrote {path}")
    for result in document["results"]:
        print(
            f"  rate={result['fault_rate']:<5g} {result['mode']:11s} "
            f"success={result['success_rate']:7.2%} "
            f"p50={result['p50_us']:>8,.1f}us "
            f"p99={result['p99_us']:>10,.1f}us "
            f"(injected {result['faults_injected']})"
        )
    claim = document["claim"]
    print(
        f"claim: policy at zero faults costs "
        f"{claim['policy_overhead_pct']:+.2f}% vs no policy "
        f"({claim['policy_zero_faults_calls_per_sec']:,.1f} vs "
        f"{claim['no_policy_calls_per_sec']:,.1f} calls/s, "
        f"{claim['clients']} clients)"
    )
    baseline = claim.get("no_policy_vs_baseline")
    if baseline is not None:
        print(
            f"claim: no-policy vs pre-resilience baseline: "
            f"{baseline['regression_pct']:+.2f}% "
            f"({baseline['current_no_policy_calls_per_sec']:,.1f} vs "
            f"{baseline['baseline_calls_per_sec']:,.1f} calls/s)"
        )
    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                recorded = json.load(handle)
        except FileNotFoundError:
            recorded = None
        regressions = compare_faults(
            document, args.overhead_tolerance, args.success_floor,
            remeasure=lambda: run_faults(
                transport=args.transport,
                calls=args.fault_calls,
                seed=args.seed,
                # Extra trials: best-of-more separates scheduler noise
                # from a true fast-path regression.
                trials=args.trials + 2,
            ),
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 3
        recorded_claim = (recorded or {}).get("claim", {})
        recorded_overhead = recorded_claim.get("policy_overhead_pct")
        if recorded_overhead is not None:
            print(
                f"compare: overhead {claim['policy_overhead_pct']:+.2f}% "
                f"(recorded {recorded_overhead:+.2f}%), "
                f"budget {args.overhead_tolerance:.0f}%"
            )
        else:
            print(
                f"compare: overhead {claim['policy_overhead_pct']:+.2f}% "
                f"within the {args.overhead_tolerance:.0f}% budget"
            )
    return 0


#: Extra full-suite rounds a failing resilience gate gets.  The
#: zero-fault overhead is a ratio of two interleaved measurements, so
#: it is steadier than raw throughput, but a loaded CI box can still
#: skew one side of a pair; a true regression fails every retry.
FAULT_COMPARE_RETRIES = 2


def compare_faults(document, overhead_tolerance, success_floor,
                   remeasure=None):
    """Regression report for the resilience claims.

    Two invariants are gated: the zero-fault policy overhead (the
    fused fast path must stay within *overhead_tolerance* percent of
    bare calls) and the 5%-fault success rate (retries must keep
    delivering at least *success_floor* of idempotent traffic).  A
    failing document is re-measured up to :data:`FAULT_COMPARE_RETRIES`
    times via *remeasure()* and passes if any round clears both bars.
    Returns human-readable regression lines, empty when the gate holds.
    """

    def violations(doc):
        lines = []
        overhead = doc["claim"]["policy_overhead_pct"]
        if overhead > overhead_tolerance:
            lines.append(
                f"zero-fault policy overhead {overhead:+.2f}% exceeds "
                f"the {overhead_tolerance:.0f}% budget"
            )
        for row in doc.get("results", ()):
            if row["fault_rate"] >= 0.05 and row["success_rate"] < success_floor:
                lines.append(
                    f"success rate {row['success_rate']:.2%} at "
                    f"fault rate {row['fault_rate']:g} ({row['mode']}) "
                    f"below the {success_floor:.0%} floor"
                )
        return lines

    regressions = violations(document)
    retries = FAULT_COMPARE_RETRIES if remeasure is not None else 0
    for attempt in range(retries):
        if not regressions:
            break
        print(
            f"compare: resilience gate failing "
            f"({'; '.join(regressions)}), "
            f"re-measuring ({attempt + 1}/{retries})"
        )
        regressions = violations(remeasure())
    return regressions


def _main_wire(args):
    pre_refactor = None
    if args.pre_refactor_rate is not None:
        pre_refactor = {
            "giop_multiplexed_calls_per_sec": args.pre_refactor_rate,
            "clients": 16,
            "method": "recorded before the BufferPlan refactor "
                      "(bytes-concatenation emission)",
        }
    document = run_wire_cost(
        transport=args.transport,
        calls_total=args.wire_calls,
        window=args.window,
        pipeline_workers=args.workers,
        trials=args.trials,
        pre_refactor=pre_refactor,
    )
    out = args.out
    if out is None:
        if args.compare is not None:
            # The gate must not clobber the recorded document it gates
            # against; park the fresh numbers with the bench scratch.
            out = os.path.join(REPO_ROOT, "benchmarks", "out",
                               "BENCH_wire.fresh.json")
        else:
            out = os.path.join(REPO_ROOT, "BENCH_wire.json")
    path = write_document(document, out)
    print(f"wrote {path}")
    for cost in document["frame_costs"]:
        print(
            f"  {cost['protocol']:6s} request={cost['request_bytes']:>4d}B "
            f"reply={cost['reply_bytes']:>3d}B "
            f"copied on repeat={cost['repeat_request_copied_bytes']:>3d}B "
            f"(first {cost['first_request_copied_bytes']}B)"
        )
    for result in document["results"]:
        print(
            f"  {result['protocol']:6s} {result['mode']:11s} "
            f"clients={result['clients']:<4d} "
            f"{result['calls_per_sec']:>10,.1f} calls/s"
        )
    claim = document["claim"]
    pre = claim.get("pre_refactor")
    if pre is not None:
        print(
            f"claim: zero-copy GIOP at {claim['clients']} callers is "
            f"{pre['zero_copy_speedup']}x the pre-refactor emitter "
            f"({claim['rates']['giop_multiplexed_calls_per_sec']:,.1f} "
            f"vs {pre['giop_multiplexed_calls_per_sec']:,.1f} calls/s)"
        )
    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = compare_wire(
            baseline, document, args.wire_tolerance, args.speedup_floor,
            remeasure=lambda clients, calls_per_client: run_wire_row(
                args, clients, calls_per_client),
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 3
        print(f"compare: within {args.wire_tolerance:.0%} of "
              f"{args.compare}")
    return 0


def run_wire_row(args, clients, calls_per_client):
    """Re-measure one guarded (multiplexed GIOP) wire-cost row."""
    from rpc_bench import measure

    return measure(
        args.transport, "giop", "multiplexed", clients, calls_per_client,
        window=args.window, pipeline_workers=args.workers,
        # Extra trials: the retry exists to separate noise from a real
        # regression, and best-of-more discriminates better.
        trials=args.trials + 2,
    )


#: Extra best-of-trials rounds a failing guarded wire row gets before
#: the gate declares a regression; same rationale as COMPARE_RETRIES.
WIRE_COMPARE_RETRIES = 2


def compare_wire(baseline, document, tolerance, speedup_floor,
                 remeasure=None):
    """Regression report for the zero-copy emission gate.

    Two checks, both on the multiplexed GIOP axis (the path the
    BufferPlan refactor exists to speed up): every (clients,) row is
    held to *tolerance* against the recorded baseline, and — when the
    baseline embeds the pre-refactor rate — the fresh claim-row rate
    must stay at least *speedup_floor* times it, discounted by the
    same *tolerance* (raw calls/s on a single box swings between runs
    far more than a real regression needs to; the discount keeps the
    absolute floor meaningful without flapping).  Failing rows are
    re-measured up to :data:`WIRE_COMPARE_RETRIES` times via
    *remeasure(clients, calls_per_client)*.  Returns human-readable
    regression lines, empty when the gate holds.
    """

    def guarded_rows(doc):
        return {
            row["clients"]: row
            for row in doc.get("results", ())
            if row["protocol"] == "giop" and row["mode"] == "multiplexed"
        }

    pre = (baseline.get("claim", {}) or {}).get("pre_refactor")
    claim_clients = baseline.get("claim", {}).get("clients")
    calls_total = document["params"]["calls_total"]
    old_rows = guarded_rows(baseline)
    new_rows = guarded_rows(document)
    regressions = []
    for clients, old_row in sorted(old_rows.items()):
        new_row = new_rows.get(clients)
        if new_row is None:
            regressions.append(
                f"multiplexed giop @{clients} callers: row missing from "
                f"the fresh run (baseline "
                f"{old_row['calls_per_sec']:,.1f} calls/s)"
            )
            continue
        new_rate = new_row["calls_per_sec"]
        floor = old_row["calls_per_sec"] * (1.0 - tolerance)
        if pre is not None and clients == claim_clients:
            # The absolute zero-copy claim: never fall back to the
            # bytes-concatenation emitter's throughput.  Noise-discount
            # it by the same tolerance as the relative check — losing
            # the zero-copy path costs far more than the discount.
            floor = max(
                floor,
                pre["giop_multiplexed_calls_per_sec"]
                * speedup_floor * (1.0 - tolerance),
            )
        retries = WIRE_COMPARE_RETRIES if remeasure is not None else 0
        for attempt in range(retries):
            if new_rate >= floor:
                break
            print(
                f"compare: multiplexed giop @{clients} callers below "
                f"floor ({new_rate:,.1f} < {floor:,.1f} calls/s), "
                f"re-measuring ({attempt + 1}/{retries})"
            )
            fresh = remeasure(clients, max(1, calls_total // clients))
            new_rate = max(new_rate, fresh["calls_per_sec"])
        if new_rate < floor:
            regressions.append(
                f"multiplexed giop @{clients} callers: "
                f"{new_rate:,.1f} calls/s below the gate floor "
                f"{floor:,.1f} (baseline {old_row['calls_per_sec']:,.1f}, "
                f"tolerance {tolerance:.0%})"
            )
    if not old_rows:
        regressions.append(
            "baseline document has no multiplexed giop rows to guard"
        )
    return regressions


def _main_overload(args):
    document = run_overload(trials=args.trials)
    out = args.out
    if out is None:
        if args.compare is not None:
            # The gate must not clobber the recorded document it gates
            # against; park the fresh numbers with the bench scratch.
            out = os.path.join(REPO_ROOT, "benchmarks", "out",
                               "BENCH_overload.fresh.json")
        else:
            out = os.path.join(REPO_ROOT, "BENCH_overload.json")
    path = write_document(document, out)
    print(f"wrote {path}")
    for result in document["results"]:
        print(
            f"  load={result['load_x']:>2d}x "
            f"shed={'on ' if result['shed'] else 'off'} "
            f"clients={result['clients']:<3d} "
            f"goodput={result['goodput_calls_per_sec']:>7,.1f}/s "
            f"shed={result['shed_calls_per_sec']:>7,.1f}/s "
            f"failed={result['failed_calls_per_sec']:>6,.1f}/s "
            f"p99={result['accepted_p99_ms']:>7,.2f}ms"
        )
    claim = document["claim"]
    print(
        f"claim: at {claim['clients_overload']} clients "
        f"(16x offered load) shedding retains "
        f"{claim['goodput_retention_pct']:.1f}% of baseline goodput "
        f"({claim['goodput_overload_calls_per_sec']:,.1f} vs "
        f"{claim['goodput_base_calls_per_sec']:,.1f} calls/s), "
        f"accepted p99 {claim['accepted_p99_blowup_x']:.2f}x baseline"
    )
    print(
        f"claim: idle admission costs "
        f"{claim['admission_overhead_pct']:+.2f}% on the fast path "
        f"({claim['admission_idle_calls_per_sec']:,.1f} vs "
        f"{claim['bare_calls_per_sec']:,.1f} calls/s, "
        f"{claim['clients']} clients)"
    )
    if args.compare is not None:
        regressions, decided = compare_overload(
            document, args.goodput_floor, args.p99_budget,
            args.overhead_tolerance,
            # Extra trials and a longer window: best-of-more separates
            # scheduler noise from a real degradation regression.
            remeasure=lambda: run_overload(measure_s=2.5,
                                           trials=args.trials + 2),
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 3
        claim = decided["claim"]
        print(
            f"compare: goodput retention "
            f"{claim['goodput_retention_pct']:.1f}% "
            f"(floor {args.goodput_floor:.0f}%), accepted p99 "
            f"{claim['accepted_p99_blowup_x']:.2f}x "
            f"(budget {args.p99_budget:g}x), idle admission "
            f"{claim['admission_overhead_pct']:+.2f}% "
            f"(budget {args.overhead_tolerance:.0f}%)"
        )
    return 0


#: Extra full-suite rounds a failing overload gate gets.  Goodput and
#: p99 under contention swing with scheduler load; a true graceful-
#: degradation regression fails every retry, noise does not.
OVERLOAD_COMPARE_RETRIES = 2


def compare_overload(document, goodput_floor, p99_budget,
                     overhead_tolerance, remeasure=None):
    """Regression report for the graceful-degradation claims.

    Three invariants are gated, all on the shed-on axis: goodput at the
    highest load multiple must retain *goodput_floor* percent of the
    baseline cell's, the accepted p99 must stay within *p99_budget*
    times the baseline's, and an idle admission controller must cost at
    most *overhead_tolerance* percent.  A failing document is
    re-measured up to :data:`OVERLOAD_COMPARE_RETRIES` times via
    *remeasure()* and passes if any round clears every bar.  Returns
    ``(regressions, document)`` — the regression lines (empty when the
    gate holds) and the document of the round that decided the outcome,
    so callers report the numbers that actually passed or failed.
    """

    def violations(doc):
        lines = []
        claim = doc["claim"]
        retention = claim["goodput_retention_pct"]
        if retention < goodput_floor:
            lines.append(
                f"16x-load goodput retained only {retention:.1f}% of "
                f"baseline ({claim['goodput_overload_calls_per_sec']:,.1f}"
                f" vs {claim['goodput_base_calls_per_sec']:,.1f} calls/s,"
                f" floor {goodput_floor:.0f}%)"
            )
        blowup = claim["accepted_p99_blowup_x"]
        if blowup > p99_budget:
            lines.append(
                f"accepted p99 grew {blowup:.2f}x under 16x load "
                f"({claim['accepted_p99_overload_ms']:,.2f}ms vs "
                f"{claim['accepted_p99_base_ms']:,.2f}ms, budget "
                f"{p99_budget:g}x)"
            )
        overhead = claim["admission_overhead_pct"]
        if overhead > overhead_tolerance:
            lines.append(
                f"idle admission overhead {overhead:+.2f}% exceeds the "
                f"{overhead_tolerance:.0f}% budget"
            )
        return lines

    regressions = violations(document)
    retries = OVERLOAD_COMPARE_RETRIES if remeasure is not None else 0
    for attempt in range(retries):
        if not regressions:
            break
        print(
            f"compare: overload gate failing ({'; '.join(regressions)}), "
            f"re-measuring ({attempt + 1}/{retries})"
        )
        document = remeasure()
        regressions = violations(document)
    return regressions, document


if __name__ == "__main__":
    sys.exit(main())

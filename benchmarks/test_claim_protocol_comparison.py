"""C3 — the configurable-protocol claim: the same stubs run over the
text protocol (§3.1) and over GIOP/IIOP (§4.2), with measurable
trade-offs.

Expected shape: the text protocol is human-readable and fine for
control messaging; CDR is more compact for binary-heavy payloads (the
"such protocols are often expensive ... a simple protocol or messaging
format may suffice" discussion cuts both ways, and both are measured).
"""

import pytest

from repro.heidirmi import Orb
from repro.heidirmi.call import Call
from repro.idl import parse
from repro.mappings.python_rmi import generate_module
from repro.heidirmi.protocol import get_protocol

from benchmarks.conftest import write_artifact

IDL = """\
interface Mixer {
  double blend(in double a, in double b);
  string tag(in string text);
  long checksum(in sequence<double> samples);
};
"""


class MixerImpl:
    _hd_type_id_ = "IDL:Mixer:1.0"

    def blend(self, a, b):
        return (a + b) / 2.0

    def tag(self, text):
        return "#" + text

    def checksum(self, samples):
        return int(sum(samples)) % 2**31


@pytest.fixture(scope="module", autouse=True)
def generated():
    return generate_module(parse(IDL, filename="Mixer.idl"))


def live_stub(protocol):
    server = Orb(transport="inproc", protocol=protocol).start()
    client = Orb(transport="inproc", protocol=protocol)
    stub = client.resolve(server.register(MixerImpl()).stringify())
    return server, client, stub


@pytest.mark.parametrize("protocol", ["text", "giop"])
def test_call_latency_bench(benchmark, protocol):
    server, client, stub = live_stub(protocol)
    try:
        result = benchmark(lambda: stub.blend(1.0, 3.0))
        assert result == 2.0
    finally:
        client.stop()
        server.stop()


@pytest.mark.parametrize("protocol", ["text", "giop"])
def test_bulk_payload_bench(benchmark, protocol):
    server, client, stub = live_stub(protocol)
    samples = [float(i) for i in range(256)]
    try:
        benchmark(lambda: stub.checksum(samples))
    finally:
        client.stop()
        server.stop()


def payload_size(protocol_name, n_doubles):
    protocol = get_protocol(protocol_name)
    call = Call("@tcp:h:1#1#IDL:Mixer:1.0", "checksum",
                marshaller=protocol.new_marshaller())
    call.begin("sequence")
    call.put_ulong(n_doubles)
    for index in range(n_doubles):
        call.put_double(float(index) + 0.12345)
    call.end()
    return len(call.payload())


def test_shape_cdr_more_compact_for_binary_payloads():
    """Doubles cost 8 bytes in CDR but ~17 ASCII characters as text."""
    text_size = payload_size("text", 128)
    cdr_size = payload_size("giop", 128)
    assert cdr_size < text_size, (cdr_size, text_size)


def test_shape_both_protocols_agree_on_results():
    results = {}
    for protocol in ("text", "giop"):
        server, client, stub = live_stub(protocol)
        try:
            results[protocol] = (
                stub.blend(2.0, 4.0),
                stub.tag("x"),
                stub.checksum([1.0, 2.0, 3.5]),
            )
        finally:
            client.stop()
            server.stop()
    assert results["text"] == results["giop"]


def test_text_protocol_payload_is_readable():
    assert payload_size("text", 1) > 0
    protocol = get_protocol("text")
    call = Call("@tcp:h:1#1#IDL:Mixer:1.0", "tag",
                marshaller=protocol.new_marshaller())
    call.put_string("movie")
    assert call.payload() == b"movie"


def test_c3_artifact():
    lines = ["C3 — wire payload bytes for sequence<double> of size N"]
    lines.append(f"  {'N':>6s} {'text':>10s} {'giop/CDR':>10s}")
    for n_doubles in (8, 32, 128, 512):
        lines.append(
            f"  {n_doubles:>6d} {payload_size('text', n_doubles):>10d} "
            f"{payload_size('giop', n_doubles):>10d}"
        )
    lines.append("  expected shape: CDR smaller for binary-heavy payloads;")
    lines.append("  text remains telnet-readable (the paper's debug story).")
    write_artifact("claim_c3_protocols.txt", "\n".join(lines) + "\n")

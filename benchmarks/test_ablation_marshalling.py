"""Ablation — specialized (generated) versus interpretive marshalling.

§2 of the paper cites the Universal Stub Compiler: "a user-level
specification of the byte-level representations of data types can be
effectively utilized to optimize ... marshaling and unmarshaling code.
It is clearly beneficial to introduce such optimizations in generated
stubs and skeletons."

The two ends of that trade-off both exist here: the ``python_rmi``
mapping generates *specialized* marshal statements inline in each stub,
while the IR-driven :class:`~repro.heidirmi.dii.DynamicCaller`
*interprets* the EST type metadata on every call.  Expected shape: the
generated stub beats dynamic invocation, and the gap widens with
payload complexity (more interpretation per call).
"""

import time

import pytest

from repro.est import InterfaceRepository
from repro.heidirmi import Orb
from repro.heidirmi.dii import DynamicCaller
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

from benchmarks.conftest import write_artifact

IDL = """\
module Mars {
  struct Sample { long id; double weight; string tag; };
  interface Lab {
    long ping(in long x);
    long bulk(in sequence<double> xs);
    Sample relabel(in Sample s, in string tag);
  };
};
"""


class LabImpl:
    _hd_type_id_ = "IDL:Mars/Lab:1.0"

    def __init__(self, ns):
        self.ns = ns

    def ping(self, x):
        return x

    def bulk(self, xs):
        return len(xs)

    def relabel(self, s, tag):
        return self.ns["Mars_Sample"](id=s.id, weight=s.weight, tag=tag)


@pytest.fixture(scope="module")
def world():
    spec = parse(IDL, filename="Mars.idl")
    ns = generate_module(spec)
    repository = InterfaceRepository()
    repository.add(parse(IDL, filename="Mars.idl"))
    server = Orb(transport="inproc", protocol="text").start()
    client = Orb(transport="inproc", protocol="text")
    ref = server.register(LabImpl(ns))
    stub = client.resolve(ref.stringify())
    caller = DynamicCaller(client, repository)
    yield ns, ref, stub, caller
    client.stop()
    server.stop()


def timed(func, rounds=300):
    func()  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        func()
    return (time.perf_counter() - start) / rounds


class TestEquivalence:
    def test_same_answers_scalar(self, world):
        _, ref, stub, caller = world
        assert stub.ping(9) == caller.invoke(ref, "ping", 9)

    def test_same_answers_sequence(self, world):
        _, ref, stub, caller = world
        xs = [1.5] * 20
        assert stub.bulk(xs) == caller.invoke(ref, "bulk", xs)

    def test_same_answers_struct(self, world):
        ns, ref, stub, caller = world
        Sample = ns["Mars_Sample"]
        via_stub = stub.relabel(Sample(id=1, weight=2.5, tag="x"), "y")
        via_dii = caller.invoke(ref, "relabel",
                                {"id": 1, "weight": 2.5, "tag": "x"}, "y")
        assert via_dii == {"id": via_stub.id, "weight": via_stub.weight,
                           "tag": via_stub.tag}


class TestShape:
    def test_generated_beats_interpretive_on_scalars(self, world):
        _, ref, stub, caller = world
        generated = timed(lambda: stub.ping(1))
        dynamic = timed(lambda: caller.invoke(ref, "ping", 1))
        assert dynamic > generated, (dynamic, generated)

    def test_gap_widens_with_payload_complexity(self, world):
        _, ref, stub, caller = world
        xs = [1.0] * 64
        scalar_ratio = (
            timed(lambda: caller.invoke(ref, "ping", 1))
            / timed(lambda: stub.ping(1))
        )
        bulk_ratio = (
            timed(lambda: caller.invoke(ref, "bulk", xs), rounds=100)
            / timed(lambda: stub.bulk(xs), rounds=100)
        )
        assert bulk_ratio > scalar_ratio * 0.9, (scalar_ratio, bulk_ratio)


def test_generated_stub_bench(benchmark, world):
    _, _, stub, _ = world
    assert benchmark(lambda: stub.ping(1)) == 1


def test_dynamic_invocation_bench(benchmark, world):
    _, ref, _, caller = world
    assert benchmark(lambda: caller.invoke(ref, "ping", 1)) == 1


def test_marshalling_ablation_artifact(world):
    ns, ref, stub, caller = world
    Sample = ns["Mars_Sample"]
    xs = [1.0] * 64
    sample = Sample(id=1, weight=2.5, tag="t")
    sample_dict = {"id": 1, "weight": 2.5, "tag": "t"}
    rows = [
        ("ping(long)",
         timed(lambda: stub.ping(1)),
         timed(lambda: caller.invoke(ref, "ping", 1))),
        ("bulk(seq<double>[64])",
         timed(lambda: stub.bulk(xs), rounds=100),
         timed(lambda: caller.invoke(ref, "bulk", xs), rounds=100)),
        ("relabel(struct)",
         timed(lambda: stub.relabel(sample, "y"), rounds=100),
         timed(lambda: caller.invoke(ref, "relabel", sample_dict, "y"),
               rounds=100)),
    ]
    lines = ["Ablation — generated (specialized) vs dynamic (interpretive) "
             "marshalling, seconds/call"]
    lines.append(f"  {'operation':24s} {'generated':>12s} {'dynamic':>12s} "
                 f"{'ratio':>7s}")
    for label, generated, dynamic in rows:
        lines.append(
            f"  {label:24s} {generated:>12.3e} {dynamic:>12.3e} "
            f"{dynamic / generated:>6.2f}x"
        )
    lines.append("  expected shape: generated wins (the USC-style argument")
    lines.append("  for specializing marshal code in stubs, paper §2).")
    write_artifact("ablation_marshalling.txt", "\n".join(lines) + "\n")

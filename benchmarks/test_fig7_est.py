"""F7 — Fig. 7: the Enhanced Syntax Tree for A.idl.

Regenerates the figure's tree (with the button attribute in its own
sub-tree, separate from the methods) and times EST construction.
"""

from repro.est import build_est, find, render_tree
from repro.idl import parse

from benchmarks.conftest import PAPER_IDL, write_artifact


def test_fig7_grouping_property():
    est = build_est(parse(PAPER_IDL, filename="A.idl"))
    interface = find(est, kind="Interface", name="A")
    assert [n.name for n in interface.children("Operation")] == [
        "f", "g", "p", "q", "s", "t",
    ]
    assert [n.name for n in interface.children("Attribute")] == ["button"]


def test_fig7_top_level_nodes():
    """Fig. 7 shows Status, SSequence and A under the Heidi module."""
    est = build_est(parse(PAPER_IDL, filename="A.idl"))
    module = find(est, kind="Module", name="Heidi")
    assert [n.name for n in module.children("Enum")] == ["Status"]
    assert [n.name for n in module.children("Alias")] == ["SSequence"]
    assert [n.name for n in module.children("Interface")] == ["A", "S"]


def test_fig7_rendering_artifact():
    est = build_est(parse(PAPER_IDL, filename="A.idl"))
    text = render_tree(est)
    write_artifact("fig7_est.txt", text)
    # Rendering shows grouped sub-trees, in method-then-attribute order.
    assert text.index("[methodList]") < text.index("[attributeList]")
    assert "Attribute: button" in text


def test_est_construction_bench(benchmark):
    spec = parse(PAPER_IDL, filename="A.idl")
    est = benchmark(lambda: build_est(spec))
    assert find(est, kind="Interface", name="A") is not None

"""F8 — Fig. 8: the generated program that rebuilds the EST.

The paper's prototype emitted Perl; this reproduction emits Python
(documented substitution in DESIGN.md).  The figure's structure is
pinned: depth-indexed node variables, repository-ID comments, AddProp
property calls, and the exact property vocabulary.
"""

from repro.est import build_est, emit_program, load_program
from repro.idl import parse

from benchmarks.conftest import PAPER_IDL, write_artifact

#: Fig. 8 statements, transliterated Perl→Python.
FIG8_STATEMENTS = [
    "n0 = Ast('Root', 'Root')",
    "# IDL:Heidi:1.0",
    "n1 = Ast('Heidi', 'Module', n0)",
    "# IDL:Heidi/Status:1.0",
    "n2 = Ast('Status', 'Enum', n1)",
    "n2.add_prop('members', ['Start', 'Stop'])",
    "# IDL:Heidi/SSequence:1.0",
    "n2 = Ast('SSequence', 'Alias', n1)",
    "n2.add_prop('type', 'sequence')",
    "n3.add_prop('typeName', 'Heidi_S')",
    "n3.add_prop('IsVariable', True)",
    "# IDL:Heidi/A:1.0",
    "n2 = Ast('A', 'Interface', n1)",
    "n2.add_prop('Parent', 'Heidi_S')",
    "# IDL:Heidi/A/f:1.0",
    "n3 = Ast('f', 'Operation', n2)",
    "n3.add_prop('type', 'void')",
    "n4 = Ast('a', 'Param', n3)",
    "n4.add_prop('type', 'objref')",
    "n4.add_prop('typeName', 'Heidi_A')",
    "n4.add_prop('getType', 'in')",
]


def emit_paper_program():
    est = build_est(parse(PAPER_IDL, filename="A.idl"))
    return est, emit_program(est)


def test_every_fig8_statement_regenerated():
    _, program = emit_paper_program()
    for statement in FIG8_STATEMENTS:
        assert statement in program, statement


def test_program_is_executable_and_faithful():
    est, program = emit_paper_program()
    assert load_program(program).structurally_equal(est)


def test_fig8_artifact():
    _, program = emit_paper_program()
    write_artifact("fig8_est_program.py", program)


def test_emit_and_reload_bench(benchmark):
    est = build_est(parse(PAPER_IDL, filename="A.idl"))

    def roundtrip():
        return load_program(emit_program(est))

    rebuilt = benchmark(roundtrip)
    assert rebuilt.structurally_equal(est)

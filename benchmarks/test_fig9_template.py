"""F9 — Fig. 9: the template for the C++ interface-class header.

The shipped heidi_cpp pack's interface_header.tmpl is this repository's
Fig. 9.  The figure's constructs are all present and the two-step
compilation (template → generator program → output) is timed.
"""

from repro.mappings import get_pack
from repro.templates.compiler import compile_template, compile_to_source
from repro.templates.parser import parse_template

from benchmarks.conftest import write_artifact


def template_source():
    return get_pack("heidi_cpp").load_template_source("interface_header.tmpl")


class TestFig9Constructs:
    def test_foreach_with_map_modifier(self):
        source = template_source()
        assert "@foreach allInterfaceList -map interfaceName CPP::MapClassName" in source

    def test_openfile_directive(self):
        assert "@openfile ${basename}.hh" in template_source()

    def test_if_on_default_param(self):
        source = template_source()
        assert '@if ${defaultParam} == ""' in source
        assert "@else" in source and "@fi" in source

    def test_if_more_separator(self):
        assert "-ifMore ', '" in template_source()

    def test_readonly_attribute_conditional(self):
        assert '@if ${attributeQualifier} != "readonly"' in template_source()

    def test_destructor_line(self):
        assert "virtual ~${interfaceName}() { }" in template_source()


def test_template_parses_and_compiles():
    template = parse_template(template_source(), name="fig9")
    program = compile_to_source(template)
    compile(program, "<fig9>", "exec")
    assert "def generate(rt):" in program


def test_fig9_artifacts():
    source = template_source()
    write_artifact("fig9_template.tmpl", source)
    program = compile_to_source(parse_template(source, name="fig9"))
    write_artifact("fig9_generator_program.py", program)


def test_step1_compilation_bench(benchmark):
    """Time step 1 alone: template text → generator program."""
    source = template_source()
    compiled = benchmark(lambda: compile_template(source, name="fig9"))
    assert compiled.source

"""F5 — Fig. 5: server-side method call dispatching.

Traces the server ORB through a live call and checks the figure's
sequence: client connects to the bootstrap port (1) → ObjectCommunicator
reads the request (2) → the call header's object id and type select the
skeleton → dispatch → the implementation method runs → reply sent.
"""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

from benchmarks.conftest import write_artifact

IDL = "interface Sink { string consume(in string item); };"


class SinkImpl:
    _hd_type_id_ = "IDL:Sink:1.0"

    def __init__(self):
        self.items = []

    def consume(self, item):
        self.items.append(item)
        return f"got {item}"


@pytest.fixture(scope="module")
def traced_server():
    generate_module(parse(IDL, filename="Sink.idl"))
    events = []
    server = Orb(transport="inproc", protocol="text",
                 trace=lambda name, detail: events.append((name, detail))).start()
    client = Orb(transport="inproc", protocol="text")
    impl = SinkImpl()
    stub = client.resolve(server.register(impl).stringify())
    result = stub.consume("x")
    client.stop()
    server.stop()
    return result, impl, events


def test_call_result(traced_server):
    result, impl, _ = traced_server
    assert result == "got x"
    assert impl.items == ["x"]


def test_fig5_event_sequence(traced_server):
    _, _, events = traced_server
    names = [name for name, _ in events]
    # (1) bootstrap accept → (2) request demarcated → skeleton selected
    # → dispatch → (reply is implicit in the client getting a result).
    for earlier, later in [
        ("orb:accept", "orb:request"),
        ("orb:request", "orb:skeleton"),
        ("orb:skeleton", "orb:dispatch"),
    ]:
        assert names.index(earlier) < names.index(later), (earlier, later)


def test_skeleton_selected_by_type_information(traced_server):
    """'The Call header contains the stringified object reference, whose
    type information and object identifier permit the selection of the
    appropriate Skeleton.'"""
    _, _, events = traced_server
    skeleton_event = dict(events)["orb:skeleton"]
    assert skeleton_event["type_id"] == "IDL:Sink:1.0"
    assert skeleton_event["cls"] == "Sink_skel"


def test_fig5_artifact(traced_server):
    _, _, events = traced_server
    lines = ["Fig. 5 server-side interaction trace"]
    for index, (name, detail) in enumerate(events, 1):
        lines.append(f"  {index}. {name} {detail}")
    write_artifact("fig5_server_interaction.txt", "\n".join(lines) + "\n")


def test_server_dispatch_bench(benchmark):
    """Time the pure server-side dispatch path (no sockets): request
    parsing through skeleton dispatch to reply."""
    ns = generate_module(parse(IDL, filename="Sink.idl"))
    from repro.heidirmi.call import Call
    from repro.heidirmi.textwire import TextMarshaller, TextUnmarshaller

    server = Orb(transport="inproc", protocol="text").start()
    ref = server.register(SinkImpl())
    target = ref.stringify()

    marshaller = TextMarshaller()
    marshaller.put_string("x")
    tokens = marshaller.tokens()

    def dispatch_once():
        call = Call(target, "consume", unmarshaller=TextUnmarshaller(tokens))
        return server._handle_request(call)

    reply = benchmark(dispatch_once)
    server.stop()
    assert reply.status == "OK"

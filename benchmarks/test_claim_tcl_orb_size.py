"""C1 — §4.2 claim: "about two weeks and 700 lines of tcl code" for an
interoperable Tcl ORB.

Measures the regenerated Tcl ORB library plus the generated stubs and
skeletons for a management-GUI-sized interface set against the paper's
ballpark (same order of magnitude; absolute equality is not expected —
the substrate differs, see DESIGN.md).
"""

from repro.footprint import count_lines
from repro.idl import parse
from repro.mappings import get_pack

from benchmarks.conftest import write_artifact

#: A plausible management-GUI surface: what a Tcl console would script.
GUI_IDL = """\
module Mgmt {
  interface Node {
    string status();
    void restart();
    readonly attribute string hostname;
  };
  interface Channel {
    void open(in string source, in string sink);
    void close();
    long bitrate();
  };
  interface Console : Node {
    void log(in string line);
    long session_count();
  };
};
"""


def measure():
    pack = get_pack("tcl_orb")
    orb_counts = count_lines(pack.orb_library_source(), "tcl")
    files = pack.generate(parse(GUI_IDL, filename="Mgmt.idl")).files()
    generated_counts = sum(
        (count_lines(text, "tcl") for name, text in files.items()
         if name != "orb.tcl"),
        start=count_lines("", "tcl"),
    )
    return orb_counts, generated_counts


def test_orb_library_in_700_line_ballpark():
    orb_counts, _ = measure()
    # "about 700 lines": same order of magnitude, not a padded monster.
    assert 300 <= orb_counts.total <= 1100
    assert orb_counts.code >= 250


def test_whole_deliverable_comparable_to_paper():
    orb_counts, generated_counts = measure()
    total = orb_counts.total + generated_counts.total
    assert 400 <= total <= 1400


def test_generated_code_is_small_relative_to_orb():
    """Per-interface stubs are thin; the ORB library dominates — which
    is why writing the ORB was the two-week part."""
    orb_counts, generated_counts = measure()
    assert generated_counts.code < orb_counts.code


def test_c1_artifact(benchmark):
    orb_counts, generated_counts = benchmark(measure)
    lines = [
        "C1 — Tcl ORB size versus the paper's '700 lines of tcl'",
        f"  paper reports       : ~700 total lines, two weeks",
        f"  orb.tcl             : {orb_counts.total} total, "
        f"{orb_counts.code} code, {orb_counts.comment} comment",
        f"  generated stubs/skels (3-interface GUI): "
        f"{generated_counts.total} total, {generated_counts.code} code",
        f"  combined            : {orb_counts.total + generated_counts.total} total",
    ]
    write_artifact("claim_c1_tcl_orb_size.txt", "\n".join(lines) + "\n")

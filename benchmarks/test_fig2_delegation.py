"""F2 — Fig. 2: the HeidiRMI delegation mapping.

The skeleton holds a pointer to the implementation instead of being
inherited by it, "so that no restructuring of the existing Heidi class
hierarchy is necessary" — checked both in the generated C++ and in the
live Python runtime.
"""

from repro.idl import parse
from repro.mappings import get_pack
from repro.mappings.corba_cpp import class_hierarchy

from benchmarks.conftest import write_artifact

IDL = "interface A { void f(); };"


def generate_hierarchy():
    files = get_pack("heidi_cpp").generate(parse(IDL, filename="A.idl")).files()
    edges = {}
    for text in files.values():
        edges.update(class_hierarchy(text))
    skeleton_source = files["A_skels.hh"]
    return edges, skeleton_source


def render(edges, skeleton_source):
    lines = ["Fig. 2 class graph (HeidiRMI delegation mapping)"]
    for cls in sorted(edges):
        for base in edges[cls]:
            lines.append(f"  {cls} --inherits--> {base}")
    lines.append("  HdA_skel --delegates-to--> HdA (impl_ pointer):")
    lines.extend(
        "    " + line.strip()
        for line in skeleton_source.splitlines()
        if "impl_" in line
    )
    return "\n".join(lines) + "\n"


def test_skeleton_does_not_inherit_interface_class():
    """'skeletons do not share any inheritance relation with the
    abstract interface class' (paper §3.1)."""
    edges, _ = generate_hierarchy()
    assert "HdA" not in edges.get("HdA_skel", [])


def test_skeleton_holds_impl_pointer():
    _, skeleton_source = generate_hierarchy()
    assert "HdA* impl_;" in skeleton_source


def test_stub_implements_interface_class():
    edges, _ = generate_hierarchy()
    assert "HdA" in edges["HdA_stub"]


def test_live_runtime_uses_delegation():
    """The Python runtime realizes Fig. 2: any object serves as the
    implementation, no generated base class required."""
    from repro.heidirmi.skeleton import HdSkel

    class Legacy:  # completely unrelated to any generated class
        def f(self):
            return "ok"

    class A_skel(HdSkel):
        _hd_operations_ = (("f", "_op_f"),)

        def _op_f(self, call, reply):
            reply.put_string(self.impl.f())

    skeleton = A_skel(Legacy(), None, dispatch_strategy="hash")
    assert skeleton.impl.f() == "ok"
    assert not isinstance(skeleton.impl, A_skel)


def test_regenerate_fig2_artifact(benchmark):
    edges, skeleton_source = benchmark(generate_hierarchy)
    write_artifact("fig2_delegation.txt", render(edges, skeleton_source))
    assert "HdA_skel" in edges

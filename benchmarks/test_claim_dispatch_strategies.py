"""C2 — §2 claim: string-comparison dispatch "can be very expensive for
interfaces with a large number of methods with long names.  Alternate
schemes that utilize nested comparisons, or a hash-table can result in
faster dispatching."

Workload: interfaces of 4..64 operations with 32-character names; probe
operations uniformly.  Expected shape: hash ≤ nested < linear for the
large interfaces, and the linear/hash gap grows with interface width.
"""

import time

import pytest

from repro.heidirmi.dispatch import make_dispatcher

from benchmarks.conftest import write_artifact

NAME_LENGTH = 32
WIDTHS = [4, 16, 64]
STRATEGIES = ["linear", "nested", "hash"]


def entries_for(width):
    stem = "operation_with_a_long_name_"
    return [
        ((stem + f"{index:04d}").ljust(NAME_LENGTH, "x"), index)
        for index in range(width)
    ]


def time_strategy(strategy, width, rounds=200, trials=3):
    """Best-of-*trials* per-lookup time (minimum damps scheduler noise)."""
    entries = entries_for(width)
    dispatcher = make_dispatcher(strategy, entries)
    names = [name for name, _ in entries]
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(rounds):
            for name in names:
                dispatcher.lookup(name)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / (rounds * len(names)))
    return best


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("width", WIDTHS)
def test_dispatch_bench(benchmark, strategy, width):
    entries = entries_for(width)
    dispatcher = make_dispatcher(strategy, entries)
    names = [name for name, _ in entries]

    def probe_all():
        for name in names:
            dispatcher.lookup(name)

    benchmark(probe_all)


def test_shape_hash_beats_linear_on_wide_interfaces():
    """The paper's claim, measured: for the 64-method interface the
    string-compare chain loses clearly to the hash table."""
    linear = time_strategy("linear", 64)
    hashed = time_strategy("hash", 64)
    assert linear > hashed * 2, (linear, hashed)


def test_shape_nested_beats_linear_on_wide_interfaces():
    # 128 methods: ~64 string comparisons per linear lookup versus 7
    # for the nested scheme — wide enough that interpreter noise cannot
    # flip the ordering.
    linear = time_strategy("linear", 128)
    nested = time_strategy("nested", 128)
    assert linear > nested, (linear, nested)


def test_shape_gap_grows_with_interface_width():
    """Linear degrades with width; hash stays flat — so the ratio grows."""
    ratio_small = time_strategy("linear", 4) / time_strategy("hash", 4)
    ratio_large = time_strategy("linear", 64) / time_strategy("hash", 64)
    assert ratio_large > ratio_small, (ratio_small, ratio_large)


def test_c2_artifact():
    lines = ["C2 — dispatch cost per lookup (seconds), methods x strategy"]
    header = f"  {'width':>6s} " + " ".join(f"{s:>12s}" for s in STRATEGIES)
    lines.append(header)
    for width in WIDTHS:
        row = [f"  {width:>6d} "]
        for strategy in STRATEGIES:
            row.append(f"{time_strategy(strategy, width):12.3e}")
        lines.append(" ".join(row))
    lines.append("  expected shape: hash <= nested < linear at width 64")
    write_artifact("claim_c2_dispatch.txt", "\n".join(lines) + "\n")

"""Shared machinery for the benchmark/reproduction harness.

Every module in this directory regenerates one artifact of the paper
(a table, a figure, or a Section 4.2 claim), asserts its *shape* — who
wins, by roughly what factor, what the generated code looks like — and
times the relevant operation with pytest-benchmark.  Each regenerated
artifact is also written to ``benchmarks/out/`` so EXPERIMENTS.md can
quote it.
"""

import os

import pytest

#: The paper's Fig. 3 input (same as tests/conftest.py, duplicated so the
#: benchmark tree is runnable standalone).
PAPER_IDL = """\
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
  interface S { };
};
"""

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_artifact(name, text):
    """Persist a regenerated table/figure under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def make_interface_idl(n_methods, name_length=24, interface="Wide",
                       module="Bench"):
    """A synthetic interface with *n_methods* long-named operations.

    This is the workload for the dispatch-cost claim: "interfaces with a
    large number of methods with long names" (paper §2).
    """
    stem = "operation_with_a_long_name_"
    methods = []
    for index in range(n_methods):
        name = (stem + f"{index:04d}").ljust(name_length, "x")
        methods.append(f"    void {name}(in long value);")
    body = "\n".join(methods)
    return (
        f"module {module} {{\n  interface {interface} {{\n{body}\n  }};\n}};\n"
    )


@pytest.fixture(scope="session")
def paper_idl():
    return PAPER_IDL


@pytest.fixture(scope="session")
def paper_spec():
    from repro.idl import parse

    return parse(PAPER_IDL, filename="A.idl")

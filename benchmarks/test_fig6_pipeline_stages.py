"""F6 — Fig. 6: the template-driven compiler architecture.

Shows the stage hand-offs of the figure live: IDL source → (generic
parser) → EST → (emitted program) → (template-driven code generator) →
generated code, with each stage's artifact and timing captured.
"""

from repro.compiler import Pipeline

from benchmarks.conftest import PAPER_IDL, write_artifact


def test_stage_artifacts_exist_and_feed_each_other():
    pipeline = Pipeline("heidi_cpp", use_est_program=True)
    result = pipeline.run(PAPER_IDL, filename="A.idl")
    # Stage 1: the generic parser understands IDL.
    assert result.spec.find("Heidi::A") is not None
    # Hand-off: the EST, and the program that rebuilds it (Fig. 8 path).
    assert result.est_program.count("Ast(") >= 10
    rebuilt = pipeline.load_est_program(result.est_program)
    assert rebuilt.structurally_equal(result.est)
    # Stage 2: the template-driven generator produced the mapping.
    assert "class HdA" in result.files["A.hh"]


def test_generated_code_is_template_determined():
    """'The generated code now depends only on the template that is
    provided to the code-generator': same EST, different pack → entirely
    different code, no compiler change."""
    heidi = Pipeline("heidi_cpp").run(PAPER_IDL, filename="A.idl")
    corba = Pipeline("corba_cpp").run(PAPER_IDL, filename="A.idl")
    assert heidi.est.structurally_equal(corba.est)
    assert "XBool" in heidi.files["A.hh"]
    assert "CORBA::Boolean" in corba.files["A.hh"]


def test_parser_is_mapping_agnostic():
    pipeline_a = Pipeline("heidi_cpp")
    pipeline_b = Pipeline("tcl_orb")
    spec_a = pipeline_a.parse(PAPER_IDL, filename="A.idl")
    spec_b = pipeline_b.parse(PAPER_IDL, filename="A.idl")
    assert pipeline_a.build_est(spec_a).structurally_equal(
        pipeline_b.build_est(spec_b)
    )


def test_stage_timings_artifact():
    pipeline = Pipeline("heidi_cpp", use_est_program=True)
    result = pipeline.run(PAPER_IDL, filename="A.idl")
    lines = ["Fig. 6 pipeline stage timings (seconds, one cold run)"]
    for stage, seconds in result.timings.items():
        lines.append(f"  {stage:20s} {seconds:.6f}")
    write_artifact("fig6_pipeline_stages.txt", "\n".join(lines) + "\n")
    assert set(result.timings) >= {
        "parse", "build_est", "emit_est_program", "load_est_program",
        "compile_template", "generate",
    }


def test_pipeline_end_to_end_bench(benchmark):
    pipeline = Pipeline("heidi_cpp")

    def run():
        return pipeline.run(PAPER_IDL, filename="A.idl")

    result = benchmark(run)
    assert result.files

"""C4 — §3.1 claims: connections "are cached and reused", and "both
stubs and skeletons are cached in each address-space in order to
minimize the overhead of their creation".

Measured by running the same call series with each cache enabled and
disabled.  Expected shape: cached ≪ uncached for connections (a TCP
connect per call is the dominant cost), and the stub/skeleton caches
eliminate per-call allocation.
"""

import time

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

from benchmarks.conftest import write_artifact

IDL = "interface Counter { long next(); };"


class CounterImpl:
    _hd_type_id_ = "IDL:Counter:1.0"

    def __init__(self):
        self.value = 0

    def next(self):
        self.value += 1
        return self.value


@pytest.fixture(scope="module", autouse=True)
def generated():
    return generate_module(parse(IDL, filename="Counter.idl"))


def run_calls(cache_connections, calls=50, transport="tcp"):
    server = Orb(transport=transport, protocol="text").start()
    client = Orb(transport=transport, protocol="text",
                 cache_connections=cache_connections)
    try:
        stub = client.resolve(server.register(CounterImpl()).stringify())
        stub.next()  # warm up
        start = time.perf_counter()
        for _ in range(calls):
            stub.next()
        elapsed = time.perf_counter() - start
        opened = client.connections.stats["opened"]
        return elapsed / calls, opened
    finally:
        client.stop()
        server.stop()


class TestConnectionCache:
    def test_cached_calls_open_one_connection(self):
        _, opened = run_calls(cache_connections=True)
        assert opened == 1

    def test_uncached_calls_open_one_per_call(self):
        _, opened = run_calls(cache_connections=False, calls=10)
        assert opened == 11  # warm-up + 10

    def test_shape_cached_faster_than_uncached(self):
        cached, _ = run_calls(cache_connections=True)
        uncached, _ = run_calls(cache_connections=False)
        assert uncached > cached, (uncached, cached)

    def test_cached_call_bench(self, benchmark):
        server = Orb(transport="tcp", protocol="text").start()
        client = Orb(transport="tcp", protocol="text")
        stub = client.resolve(server.register(CounterImpl()).stringify())
        try:
            benchmark(stub.next)
        finally:
            client.stop()
            server.stop()

    def test_uncached_call_bench(self, benchmark):
        server = Orb(transport="tcp", protocol="text").start()
        client = Orb(transport="tcp", protocol="text",
                     cache_connections=False)
        stub = client.resolve(server.register(CounterImpl()).stringify())
        try:
            benchmark(stub.next)
        finally:
            client.stop()
            server.stop()


class TestStubAndSkeletonCaches:
    def test_stub_cache_returns_same_object(self):
        server = Orb(transport="inproc", protocol="text").start()
        client = Orb(transport="inproc", protocol="text")
        try:
            ref = server.register(CounterImpl())
            resolved = [client.resolve(ref) for _ in range(100)]
            assert all(stub is resolved[0] for stub in resolved)
            assert client.stats["stub_created"] == 1
            assert client.stats["stub_hits"] == 99
        finally:
            client.stop()
            server.stop()

    def test_skeleton_created_once_across_calls(self):
        server = Orb(transport="inproc", protocol="text").start()
        client = Orb(transport="inproc", protocol="text")
        try:
            stub = client.resolve(server.register(CounterImpl()).stringify())
            for _ in range(25):
                stub.next()
            assert server.stats["skeleton_created"] == 1
            assert server.stats["skeleton_hits"] == 24
        finally:
            client.stop()
            server.stop()

    def test_disabled_skeleton_cache_recreates(self):
        server = Orb(transport="inproc", protocol="text",
                     cache_skeletons=False).start()
        client = Orb(transport="inproc", protocol="text")
        try:
            stub = client.resolve(server.register(CounterImpl()).stringify())
            for _ in range(5):
                stub.next()
            assert server.stats["skeleton_created"] == 5
        finally:
            client.stop()
            server.stop()


def test_c4_artifact():
    cached, cached_opened = run_calls(cache_connections=True)
    uncached, uncached_opened = run_calls(cache_connections=False)
    lines = [
        "C4 — caching effect on a TCP text-protocol call",
        f"  connection cache ON : {cached:.3e} s/call, "
        f"{cached_opened} connection(s) opened",
        f"  connection cache OFF: {uncached:.3e} s/call, "
        f"{uncached_opened} connection(s) opened",
        f"  speedup             : {uncached / cached:.1f}x",
        "  expected shape: cached well below uncached (connect per call)",
    ]
    write_artifact("claim_c4_caching.txt", "\n".join(lines) + "\n")

"""Ablation — the configurable-ORB knobs, one at a time.

DESIGN.md calls out four configuration axes the paper makes tunable:
transport, wire protocol, dispatch strategy, and the caches.  This
bench ablates each against a fixed workload (a 24-method interface,
round-robin calls) and records the end-to-end cost, showing how much
each knob matters *in a whole call*, not in isolation.

Expected shape: protocol and connection caching dominate; the dispatch
strategy is measurable but secondary at this interface size (consistent
with the paper presenting it as a generated-code optimization rather
than the headline).
"""

import time

import pytest

from repro.heidirmi import HdSkel, HdStub, Orb
from repro.heidirmi.serialize import TypeRegistry

from benchmarks.conftest import write_artifact

N_METHODS = 24
TYPE_ID = "IDL:Ablate/Wide:1.0"


def _method_name(index):
    return f"operation_with_a_long_name_{index:04d}"


def _build_classes():
    """Hand-build a wide stub/skeleton pair (no codegen dependency)."""

    def make_stub_method(name):
        def method(self, value):
            call = self._new_call(name)
            call.put_long(value)
            return self._invoke(call).get_long()

        return method

    def make_skel_method(name):
        def method(self, call, reply):
            reply.put_long(getattr(self.impl, name)(call.get_long()))

        return method

    stub_dict = {"_hd_type_id_": TYPE_ID}
    skel_dict = {"_hd_type_id_": TYPE_ID}
    operations = []
    impl_dict = {}
    for index in range(N_METHODS):
        name = _method_name(index)
        stub_dict[name] = make_stub_method(name)
        skel_dict[f"_op_{index}"] = make_skel_method(name)
        operations.append((name, f"_op_{index}"))
        impl_dict[name] = (lambda self, value, _i=index: value + _i)
    skel_dict["_hd_operations_"] = tuple(operations)
    stub_class = type("Wide_stub", (HdStub,), stub_dict)
    skel_class = type("Wide_skel", (HdSkel,), skel_dict)
    impl_class = type("WideImpl", (object,), impl_dict)
    return stub_class, skel_class, impl_class


STUB_CLASS, SKEL_CLASS, IMPL_CLASS = _build_classes()


def run_workload(transport="inproc", protocol="text", dispatch="hash",
                 cache_connections=True, calls=120):
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=STUB_CLASS,
                             skeleton_class=SKEL_CLASS)
    server = Orb(transport=transport, protocol=protocol,
                 dispatch_strategy=dispatch, types=types).start()
    client = Orb(transport=transport, protocol=protocol, types=types,
                 cache_connections=cache_connections)
    try:
        stub = client.resolve(server.register(IMPL_CLASS(),
                                              type_id=TYPE_ID).stringify())
        names = [_method_name(i) for i in range(N_METHODS)]
        getattr(stub, names[0])(0)  # warm up
        start = time.perf_counter()
        for index in range(calls):
            method = names[index % N_METHODS]
            assert getattr(stub, method)(1) == 1 + (index % N_METHODS)
        return (time.perf_counter() - start) / calls
    finally:
        client.stop()
        server.stop()


BASELINE = dict(transport="inproc", protocol="text", dispatch="hash",
                cache_connections=True)

ABLATIONS = [
    ("baseline (inproc/text/hash/cached)", {}),
    ("transport: tcp", {"transport": "tcp"}),
    ("protocol: giop", {"protocol": "giop"}),
    ("dispatch: linear", {"dispatch": "linear"}),
    ("dispatch: nested", {"dispatch": "nested"}),
    ("connections: uncached (tcp)", {"transport": "tcp",
                                     "cache_connections": False}),
]


@pytest.mark.parametrize("label,overrides", ABLATIONS,
                         ids=[a[0] for a in ABLATIONS])
def test_ablation_bench(benchmark, label, overrides):
    config = dict(BASELINE)
    config.update(overrides)
    types = TypeRegistry()
    types.register_interface(TYPE_ID, stub_class=STUB_CLASS,
                             skeleton_class=SKEL_CLASS)
    server = Orb(transport=config["transport"], protocol=config["protocol"],
                 dispatch_strategy=config["dispatch"], types=types).start()
    client = Orb(transport=config["transport"], protocol=config["protocol"],
                 types=types,
                 cache_connections=config["cache_connections"])
    try:
        stub = client.resolve(server.register(IMPL_CLASS(),
                                              type_id=TYPE_ID).stringify())
        method = getattr(stub, _method_name(3))
        assert benchmark(lambda: method(1)) == 4
    finally:
        client.stop()
        server.stop()


class TestShapes:
    def test_uncached_connections_dominate(self):
        cached = run_workload(transport="tcp")
        uncached = run_workload(transport="tcp", cache_connections=False)
        assert uncached > cached * 1.5, (uncached, cached)

    def test_all_configurations_compute_identically(self):
        """Every knob combination is observationally equivalent."""
        for _, overrides in ABLATIONS:
            config = dict(BASELINE)
            config.update(overrides)
            per_call = run_workload(calls=24, **config)
            assert per_call > 0


def test_ablation_artifact():
    lines = ["Ablation — per-call seconds by ORB configuration "
             f"({N_METHODS}-method interface)"]
    for label, overrides in ABLATIONS:
        config = dict(BASELINE)
        config.update(overrides)
        per_call = run_workload(**config)
        lines.append(f"  {label:36s} {per_call:.3e}")
    lines.append("  expected shape: connection caching and transport choice")
    lines.append("  dominate; dispatch strategy is secondary per whole call.")
    write_artifact("ablation_orb_config.txt", "\n".join(lines) + "\n")

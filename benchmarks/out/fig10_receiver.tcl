if {[info vars {IDL:Receiver:1.0}] ne ""} return
set {IDL:Receiver:1.0} 1
BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"
class ReceiverStub {
    inherit Stub
    constructor {ior connector} {
        Stub::constructor $ior $connector
    } {}
    public method print {text} {
        set c [$pb_connector_ getRequestCall $this "print" 0]
        $c insertString $text
        $c send
        # void return
        $c release
    }
}

class ReceiverSkel {
    inherit Skel
    constructor {implObj} {
        Skel::constructor $implObj
    } {}
    public method print {c} {
        set text [$c extractString]
        $pb_obj_ print $text
        # void return
    }
}

/* File A.hh */
class HdA;
class HdS;
// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };
// IDL:Heidi/SSequence:1.0
typedef HdList<HdS> HdSSequence;
typedef HdListIterator<HdS> HdSSequenceIter;
// IDL:Heidi/S:1.0
class HdS
{
public:
  virtual ~HdS() { }
};
// IDL:Heidi/A:1.0
class HdA : virtual public HdS
{
public:
  virtual void f(HdA*) = 0;
  virtual void g(HdS*) = 0;
  virtual void p(long l = 0) = 0;
  virtual void q(HdStatus s = Start) = 0;
  virtual void s(XBool b = XTrue) = 0;
  virtual void t(HdSSequence*) = 0;
  virtual HdStatus GetButton() = 0;
  virtual ~HdA() { }
};

# Code generator produced by repro.templates.compiler (step 1 of the
# paper's two-step code-generation process) from template 'fig9'.
# Execute step 2 by calling generate(rt) with a repro.templates.runtime
# Runtime bound to an EST.

def generate(rt):

    rt.open_file(rt.var('basename') + '.hh')
    rt.line('/* File ', rt.var('basename'), '.hh */', newline=True)
    for _iter1 in rt.foreach('allInterfaceList', maps={'interfaceName': 'CPP::MapClassName'}, line=4):
        rt.line('class ', rt.var('interfaceName'), ';', newline=True)
    for _iter2 in rt.foreach('allEnumList', maps={'enumName': 'CPP::MapClassName'}, line=7):
        rt.line('// ', rt.var('repoId'), newline=True)
        rt.line('enum ', rt.var('enumName'), ' { ', newline=False)
        for _iter3 in rt.foreach('members', if_more=', ', line=10):
            rt.line(rt.var('member'), rt.var('ifMore'), newline=False)
        rt.line(' };', newline=True)
    for _iter4 in rt.foreach('allAliasList', maps={'aliasName': 'CPP::MapClassName'}, line=15):
        rt.line('// ', rt.var('repoId'), newline=True)
        if (rt.var('type')) == ('sequence'):
            for _iter5 in rt.foreach('sequenceList', maps={'elementType': 'CPP::MapClassName'}, line=18):
                rt.line('typedef HdList<', rt.var('elementType'), '> ', rt.var('aliasName'), ';', newline=True)
                rt.line('typedef HdListIterator<', rt.var('elementType'), '> ', rt.var('aliasName'), 'Iter;', newline=True)
        else:
            rt.line('typedef ', rt.var('aliasedType'), ' ', rt.var('aliasName'), ';', newline=True)
    for _iter6 in rt.foreach('allStructList', maps={'structName': 'CPP::MapClassName'}, line=26):
        rt.line('// ', rt.var('repoId'), newline=True)
        rt.line('struct ', rt.var('structName'), ' {', newline=True)
        for _iter7 in rt.foreach('memberList', maps={'memberType': 'CPP::MapType'}, line=29):
            rt.line('  ', rt.var('memberType'), ' ', rt.var('memberName'), ';', newline=True)
        rt.line('};', newline=True)
    for _iter8 in rt.foreach('topoInterfaceList', maps={'interfaceName': 'CPP::MapClassName'}, line=34):
        rt.line('// ', rt.var('repoId'), newline=True)
        rt.line('class ', rt.var('interfaceName'), newline=False)
        for _iter9 in rt.foreach('inheritedList', maps={'inheritedName': 'CPP::MapClassName'}, line=37):
            if rt.truth(rt.var('first')):
                rt.line(' : virtual public ', rt.var('inheritedName'), newline=False)
            else:
                rt.line(', virtual public ', rt.var('inheritedName'), newline=False)
        rt.line(newline=True)
        rt.line('{', newline=True)
        rt.line('public:', newline=True)
        for _iter10 in rt.foreach('methodList', maps={'returnType': 'CPP::MapReturnType'}, line=47):
            rt.line('  virtual ', rt.var('returnType'), ' ', rt.var('methodName'), '(', newline=False)
            for _iter11 in rt.foreach('paramList', maps={'paramType': 'CPP::MapType', 'defaultParam': 'CPP::MapDefault'}, if_more=', ', line=49):
                if (rt.var('defaultParam')) == (''):
                    rt.line(rt.var('paramType'), rt.var('ifMore'), newline=False)
                else:
                    rt.line(rt.var('paramType'), ' ', rt.var('paramName'), ' = ', rt.var('defaultParam'), rt.var('ifMore'), newline=False)
            rt.line(') = 0;', newline=True)
        for _iter12 in rt.foreach('attributeList', maps={'attributeType': 'CPP::MapType', 'attributeName': 'CapFirst'}, line=58):
            rt.line('  virtual ', rt.var('attributeType'), ' Get', rt.var('attributeName'), '() = 0;', newline=True)
            if (rt.var('attributeQualifier')) != ('readonly'):
                rt.line('  virtual void Set', rt.var('attributeName'), '(', rt.var('attributeType'), ') = 0;', newline=True)
        rt.line('  virtual ~', rt.var('interfaceName'), '() { }', newline=True)
        rt.line('};', newline=True)
    rt.close_file()

"""The pipelining claim, as a test.

Sharing one multiplexed, pipelined connection among 16 concurrent
callers must beat the paper-era exclusive-checkout pattern by at least
2x on the in-process transport.  Runs the same matrix as
``run_bench.py`` and leaves the measurement document at the repo root
(``BENCH_rpc.json``) plus a copy under ``benchmarks/out/``.

Run explicitly (not part of the fast tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/test_claim_pipelining.py -v
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from rpc_bench import run_matrix, write_document  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def test_multiplexed_pipeline_beats_exclusive_2x():
    document = run_matrix(
        transport="inproc",
        client_counts=(1, 16),
        calls_per_client=200,
        window=64,
        pipeline_workers=0,
        trials=3,
    )
    write_document(document, os.path.join(REPO_ROOT, "BENCH_rpc.json"))
    os.makedirs(OUT_DIR, exist_ok=True)
    write_document(document, os.path.join(OUT_DIR, "BENCH_rpc.json"))

    claim = document["claim"]
    assert claim["clients"] == 16
    assert claim["multiplexed_text2_calls_per_sec"] is not None
    assert claim["exclusive_text_calls_per_sec"] is not None
    assert claim["speedup"] >= 2.0, (
        f"multiplexed text2 at 16 clients is only {claim['speedup']}x "
        f"exclusive text ({claim['multiplexed_text2_calls_per_sec']} vs "
        f"{claim['exclusive_text_calls_per_sec']} calls/s)"
    )

    # Every configuration must have produced a sane, verified rate.
    for result in document["results"]:
        assert result["calls_per_sec"] > 0
        assert result["calls"] == result["clients"] * 200

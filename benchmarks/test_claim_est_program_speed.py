"""C6 — §4.1 claim: "evaluating a perl program that directly rebuilds
the EST, as we do in the second code-generation step, is certainly more
efficient than parsing an external representation of the EST."

Measured with three hand-off alternatives for the same EST:

- evaluating the emitted EST program (the paper's chosen design),
- parsing a neutral external text representation of the EST,
- re-running the whole IDL front-end (for context).

Expected shape: program evaluation beats parsing the external
representation at every size.
"""

import time

import pytest

from repro.est import build_est, emit_program, load_program
from repro.est.emit import dump_external, parse_external
from repro.idl import parse

from benchmarks.conftest import make_interface_idl, write_artifact

SIZES = [4, 16, 64]


def prepared(n_methods):
    source = make_interface_idl(n_methods)
    spec = parse(source, filename="bench.idl")
    est = build_est(spec)
    return source, est, emit_program(est), dump_external(est)


def time_of(func, rounds=20, trials=3):
    """Best-of-*trials* per-call time (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(rounds):
            func()
        best = min(best, (time.perf_counter() - start) / rounds)
    return best


@pytest.mark.parametrize("n_methods", SIZES)
def test_load_program_bench(benchmark, n_methods):
    _, est, program, _ = prepared(n_methods)
    rebuilt = benchmark(lambda: load_program(program))
    assert rebuilt.structurally_equal(est)


@pytest.mark.parametrize("n_methods", SIZES)
def test_parse_external_bench(benchmark, n_methods):
    _, est, _, external = prepared(n_methods)
    rebuilt = benchmark(lambda: parse_external(external))
    assert rebuilt.structurally_equal(est)


@pytest.mark.parametrize("n_methods", SIZES)
def test_reparse_idl_bench(benchmark, n_methods):
    source, _, _, _ = prepared(n_methods)
    benchmark(lambda: build_est(parse(source, filename="bench.idl")))


@pytest.mark.parametrize("n_methods", SIZES)
def test_shape_program_eval_beats_external_parse(n_methods):
    _, _, program, external = prepared(n_methods)
    program_time = time_of(lambda: load_program(program))
    external_time = time_of(lambda: parse_external(external))
    assert program_time < external_time, (n_methods, program_time, external_time)


def test_all_three_hand_offs_agree():
    _, est, program, external = prepared(16)
    assert load_program(program).structurally_equal(est)
    assert parse_external(external).structurally_equal(est)


def test_c6_artifact():
    lines = ["C6 — EST hand-off cost (seconds): three alternatives"]
    lines.append(
        f"  {'methods':>8s} {'eval program':>14s} {'parse external':>15s} "
        f"{'re-parse IDL':>14s}"
    )
    for n_methods in SIZES:
        source, _, program, external = prepared(n_methods)
        lines.append(
            f"  {n_methods:>8d} {time_of(lambda: load_program(program)):>14.3e} "
            f"{time_of(lambda: parse_external(external)):>15.3e} "
            f"{time_of(lambda: build_est(parse(source))):>14.3e}"
        )
    lines.append("  expected shape: evaluating the emitted program beats")
    lines.append("  parsing the external EST representation (paper §4.1).")
    write_artifact("claim_c6_est_program.txt", "\n".join(lines) + "\n")

"""F4 — Fig. 4: the client side of a remote method invocation.

Drives a live call through the generated Python stubs with ORB tracing
on, and checks the event sequence matches the figure: stub invoked → new
Call created (header = stringified reference) → parameters marshalled →
Call invoked through the ObjectCommunicator → reply returned.
"""

import pytest

from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

from benchmarks.conftest import write_artifact

IDL = "interface Target { long f(in long x); };"


class TargetImpl:
    _hd_type_id_ = "IDL:Target:1.0"

    def f(self, x):
        return x + 1


@pytest.fixture(scope="module")
def traced_call():
    generate_module(parse(IDL, filename="Target.idl"))
    client_events = []
    server = Orb(transport="inproc", protocol="text").start()
    client = Orb(transport="inproc", protocol="text",
                 trace=lambda name, detail: client_events.append((name, detail)))
    ref = server.register(TargetImpl())
    stub = client.resolve(ref.stringify())
    client_events.clear()  # keep only the invocation itself
    result = stub.f(41)
    client.stop()
    server.stop()
    return result, client_events, ref


def test_call_returns_result(traced_call):
    result, _, _ = traced_call
    assert result == 42


def test_fig4_event_sequence(traced_call):
    _, events, _ = traced_call
    names = [name for name, _ in events]
    # Fig. 4: create Call → invoke (send via communicator) → reply.
    assert names.index("call:new") < names.index("call:invoke")
    assert names.index("call:invoke") < names.index("call:reply")


def test_call_header_is_stringified_reference(traced_call):
    """'The stringified object reference of the target remote object
    forms the header of the Call.'"""
    _, events, ref = traced_call
    invoke = dict(events)["call:invoke"]
    assert invoke["target"] == ref.stringify()
    assert invoke["operation"] == "f"


def test_fig4_artifact(traced_call):
    _, events, _ = traced_call
    lines = ["Fig. 4 client-side interaction trace"]
    for index, (name, detail) in enumerate(events, 1):
        lines.append(f"  {index}. {name} {detail}")
    write_artifact("fig4_client_interaction.txt", "\n".join(lines) + "\n")


def test_remote_call_latency_text_inproc(benchmark):
    """The headline latency of one two-way call (text protocol)."""
    generate_module(parse(IDL, filename="Target.idl"))
    server = Orb(transport="inproc", protocol="text").start()
    client = Orb(transport="inproc", protocol="text")
    stub = client.resolve(server.register(TargetImpl()).stringify())
    try:
        assert benchmark(lambda: stub.f(1)) == 2
    finally:
        client.stop()
        server.stop()
